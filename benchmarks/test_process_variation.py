"""Sec. V: statistical RC with nominal L.

Paper: "Since inductance is not sensitive to process variation as shown
in [5], we can combine the nominal inductance with the statistically
generated RC [4] in the formulation of RLC netlist in the study of
process variation impact to clock skew."

Shape asserted: under the same geometry perturbations, the loop
inductance spread is several times smaller than the R and C spreads.
"""

from conftest import report, run_once

from repro.constants import to_fF, to_nH, to_ps
from repro.experiments import run_process_variation, run_variation_skew


def test_statistical_rc_nominal_l(benchmark):
    result = run_once(benchmark, run_process_variation)
    stats = result.statistical_rc

    report(
        "Sec. V: Monte-Carlo spreads under process variation (2 mm CPW)",
        header=("quantity", "mean", "sigma/mean"),
        rows=[
            ("R [ohm]", f"{stats.resistance_mean:.3f}",
             f"{result.r_spread * 100:.2f} %"),
            ("C [fF]", f"{to_fF(stats.capacitance_mean):.1f}",
             f"{result.c_spread * 100:.2f} %"),
            ("loop L [nH]", f"{to_nH(result.loop_inductances.mean()):.4f}",
             f"{result.l_spread * 100:.2f} %"),
        ],
    )
    print(f"  L is {result.l_insensitivity_factor:.1f}x steadier than R/C")

    # the premise: L is far less sensitive than R and C
    assert result.l_spread < 0.5 * result.r_spread
    assert result.l_spread < 0.5 * result.c_spread
    assert result.l_insensitivity_factor > 2.0
    # R and C genuinely vary (the statistical model is not degenerate)
    assert result.r_spread > 0.02
    assert result.c_spread > 0.02


def test_skew_distribution_with_nominal_l(benchmark):
    """The paper's actual proposal: statistical RC + nominal L in the
    clocktree netlist, propagated to a skew distribution."""
    result = run_once(benchmark, lambda: run_variation_skew(n_samples=12))

    report(
        "Skew under process variation (asymmetric H-tree, nominal L)",
        header=("quantity", "value"),
        rows=[
            ("nominal skew", f"{to_ps(result.nominal_skew):.2f} ps"),
            ("MC mean skew", f"{to_ps(result.skews.mean()):.2f} ps"),
            ("MC worst skew", f"{to_ps(result.worst_skew):.2f} ps"),
            ("skew sigma/mean", f"{result.skew_spread * 100:.1f} %"),
            ("max-delay sigma/mean", f"{result.delay_spread * 100:.1f} %"),
        ],
    )

    # the population brackets the nominal and genuinely varies
    assert result.skews.min() <= result.nominal_skew * 1.05
    assert result.worst_skew >= result.skews.mean()
    assert 0.0 < result.skew_spread < 0.25
