"""Sec. III: table-based extraction accuracy and efficiency.

The paper's methodology claim: precompute self/mutual (and loop)
inductance tables with the field solver, interpolate with bicubic
splines, and lose no accuracy while answering queries orders of
magnitude faster than fresh field solves.

Shape asserted: off-grid interpolation error below 2 % and lookups at
least an order of magnitude faster than direct solves.
"""

from conftest import report, run_once

from repro.constants import to_nH
from repro.experiments import run_table_accuracy


def test_table_lookup_accuracy_and_speedup(benchmark):
    result = run_once(benchmark, run_table_accuracy)

    report(
        "Sec. III: bicubic-spline table lookup vs direct field solve",
        header=("width [um]", "length [um]", "table [nH]", "direct [nH]",
                "error", "speedup"),
        rows=[
            (f"{p.width * 1e6:.0f}", f"{p.length * 1e6:.0f}",
             f"{to_nH(p.table_inductance):.4f}",
             f"{to_nH(p.direct_inductance):.4f}",
             f"{p.relative_error * 100:.2f} %",
             f"{p.speedup:.0f}x")
            for p in result.probes
        ],
    )
    print(f"  characterization: {result.characterization_time:.2f} s "
          f"for the 4x4 (width, length) grid")

    # "no loss of accuracy": interpolation well under the solver's own
    # discretization error
    assert result.max_error < 0.02
    assert result.mean_error < 0.01
    # "efficient": far faster than re-running the field solver
    assert result.mean_speedup > 10
