"""Table I: linear cascading of guarded-segment loop inductances.

Paper values:

    structure   Loop L from RI3   Eff. L from S/P comb.   error
    Fig. 6(a)   (garbled in txt)  --                      3.57 %
    Fig. 6(b)   --                --                      1.55 %

Shape asserted: the series/parallel combination of independently
extracted segments reproduces the full-structure extraction within a few
percent, and the error grows as the guard spacing loosens (the basis of
the 'at least equal width' guard rule).
"""

from conftest import report, run_once

from repro.cascade import cascading_comparison
from repro.cascade.tree import figure6a_tree
from repro.constants import GHz, to_nH, um
from repro.experiments import run_table1

PAPER_ERRORS = {"fig6a": 3.57, "fig6b": 1.55}


def test_table1_linear_cascading(benchmark):
    result = run_once(benchmark, run_table1)

    report(
        "Table I: full-structure loop L vs series/parallel combination",
        header=("structure", "full L [nH]", "S/P comb [nH]",
                "error", "paper error"),
        rows=[
            (row.name,
             f"{to_nH(row.comparison.full_inductance):.4f}",
             f"{to_nH(row.comparison.combined_inductance):.4f}",
             f"{row.error_percent:.2f} %",
             f"{PAPER_ERRORS[row.name]:.2f} %")
            for row in result.rows
        ],
    )

    # cascading is valid: errors within the paper's few-percent envelope
    for row in result.rows:
        assert row.error_percent < PAPER_ERRORS[row.name] + 1.0
    assert result.max_error_percent < 4.0


def test_cascading_error_vs_guard_spacing(benchmark):
    """Ablation: how the guard spacing controls cascadability."""
    spacings = (um(1.2), um(3), um(6), um(12), um(24))

    def sweep():
        return [
            cascading_comparison(figure6a_tree(spacing=s), GHz(3))
            for s in spacings
        ]

    comparisons = run_once(benchmark, sweep)
    report(
        "Cascading error vs guard spacing (Fig. 6(a) tree)",
        header=("spacing [um]", "full L [nH]", "error [%]"),
        rows=[
            (f"{s * 1e6:.1f}",
             f"{to_nH(c.full_inductance):.4f}",
             f"{c.inductance_error * 100:.2f}")
            for s, c in zip(spacings, comparisons)
        ],
    )

    errors = [c.inductance_error for c in comparisons]
    # error grows monotonically with guard spacing
    assert all(a <= b + 1e-6 for a, b in zip(errors, errors[1:]))
    # but tightly guarded wires cascade essentially exactly
    assert errors[0] < 0.01
