"""Fig. 5: loop-L matrix over a ground plane + Foundations 1 and 2.

Paper: a 5-trace array in layer N over a ground plane in layer N-2.
(b) the self loop L of T1 solved alone matches its in-array value
(Foundation 1); (c) the (T1, T5) 2-trace subproblem reproduces the
in-array mutual loop L (Foundation 2).

Shape asserted: both reductions hold to a few percent, the matrix is
symmetric with distance-decaying mutuals -- exactly what licenses
2-dimensional loop tables for microstrip structures.
"""

import numpy as np
from conftest import report, run_once

from repro.constants import to_nH
from repro.experiments import run_fig5


def test_fig5_loop_matrix_and_foundations(benchmark):
    result = run_once(benchmark, run_fig5)

    matrix_rows = [
        (name,) + tuple(f"{to_nH(v):.4f}" for v in row)
        for name, row in zip(result.trace_names, result.loop_matrix)
    ]
    report(
        "Fig. 5(a): loop inductance matrix [nH], 5 traces over a plane",
        header=("", *result.trace_names),
        rows=matrix_rows,
    )
    report(
        "Fig. 5(b,c): Foundation checks",
        header=("check", "in-array [nH]", "subproblem [nH]", "error"),
        rows=[
            ("F1: self L(T1)",
             f"{to_nH(result.foundation1.full_value):.4f}",
             f"{to_nH(result.foundation1.reduced_value):.4f}",
             f"{result.foundation1.relative_error * 100:.2f} %"),
            ("F2: mutual L(T1,T5)",
             f"{to_nH(result.foundation2.full_value):.4f}",
             f"{to_nH(result.foundation2.reduced_value):.4f}",
             f"{result.foundation2.relative_error * 100:.2f} %"),
        ],
    )

    matrix = result.loop_matrix
    assert np.allclose(matrix, matrix.T)
    # distance decay of the mutual terms (paper's Fig. 5 pattern)
    assert matrix[0, 1] > matrix[0, 2] > matrix[0, 3] > matrix[0, 4] > 0
    # the reductions hold: paper shows agreement, we require < 2 % / 5 %
    assert result.foundation1.relative_error < 0.02
    assert result.foundation2.relative_error < 0.05
