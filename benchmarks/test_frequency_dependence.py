"""Sec. III: why tables are characterized at the significant frequency.

"In addition, the inductance depends on the skin depth, which is a
function of frequency.  We run RI3 under the significant frequency ...
defined as 0.32/t_r."

Shape asserted: loop R rises and loop L falls with frequency (skin and
proximity effects); characterizing at DC instead of the significant
frequency of a fast edge costs several percent of loop L, while
characterizing at the *right* significant frequency is self-consistent.
"""

import numpy as np
from conftest import report, run_once

from repro.constants import GHz, to_nH, um
from repro.core.frequency import significant_frequency
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.sweep import loop_frequency_sweep

FREQUENCIES = (1e7, 1e8, 1e9, 3.2e9, 6.4e9, 2e10, 5e10)


def run_sweep():
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )
    problem = LoopProblem(block, n_width=8, n_thickness=4, grading=1.5)
    return loop_frequency_sweep(problem, FREQUENCIES)


def test_rl_frequency_dependence(benchmark):
    sweep = run_once(benchmark, run_sweep)

    report(
        "Loop R(f) and L(f) of the Fig. 1 CPW (2 mm)",
        header=("f [GHz]", "R [ohm]", "L [nH]"),
        rows=[
            (f"{f / 1e9:.2f}", f"{r:.3f}", f"{to_nH(l):.4f}")
            for f, r, l in zip(sweep.frequencies, sweep.resistance,
                               sweep.inductance)
        ],
    )
    f_sig_100ps = significant_frequency(100e-12)
    f_sig_30ps = significant_frequency(30e-12)
    err_dc = sweep.characterization_error(used=1e7, actual=f_sig_30ps)
    err_sig = sweep.characterization_error(used=f_sig_100ps,
                                           actual=f_sig_30ps)
    print(f"  L error using a DC table for a 30 ps edge:        "
          f"{err_dc * 100:.1f} %")
    print(f"  L error using a 100 ps-edge table for a 30 ps edge: "
          f"{err_sig * 100:.1f} %")

    # skin effect: R at 50 GHz well above the low-frequency value
    assert sweep.resistance_ratio > 1.5
    # proximity crowding: L decreases monotonically
    assert np.all(np.diff(sweep.inductance) <= 1e-18)
    # characterizing at DC for a fast edge is materially wrong ...
    assert err_dc > 0.05
    # ... and a nearby significant frequency is far better
    assert err_sig < err_dc
