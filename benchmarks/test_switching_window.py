"""Bus switching-pattern delay window: capacitive vs full-RLC prediction.

The motivation section's message applied to buses: RC-only analysis
predicts the classic Miller window (in-phase neighbours speed the
victim up, anti-phase slow it down).  The mutual inductances act with
the *opposite* sign -- in-phase currents share return paths (L + M),
anti-phase tighten the loops (L - M) -- and on a tightly coupled bus
they largely cancel the capacitive window.  An RC-only timing sign-off
would double-count margin that the real (RLC) bus does not exhibit.
"""

from conftest import report, run_once

from repro.bus import BusRLCExtractor, switching_delay_analysis
from repro.constants import GHz, to_ps, um
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import CapacitanceModel


def test_switching_window_rc_vs_rlc(benchmark):
    def run():
        block = TraceBlock.from_widths_and_spacings(
            widths=[um(2)] * 5, spacings=[um(1)] * 4, length=um(1500),
            thickness=um(1),
        )
        extractor = BusRLCExtractor(
            frequency=GHz(6.4),
            capacitance_model=CapacitanceModel(height_below=um(2)),
        )
        bus = extractor.extract(block)
        results = {}
        for label, kwargs in (
            ("RC only", {"include_inductance": False}),
            ("RLC, no mutual K", {"include_mutual": False}),
            ("full RLC", {}),
        ):
            results[label] = switching_delay_analysis(
                extractor, bus, victim="T3", sections=2, **kwargs
            )
        return results

    results = run_once(benchmark, run)
    report(
        "Victim delay vs neighbour switching pattern (5-trace bus)",
        header=("model", "quiet [ps]", "in-phase [ps]", "anti-phase [ps]",
                "window [ps]"),
        rows=[
            (label,
             f"{to_ps(r.quiet_delay):.2f}",
             f"{to_ps(r.in_phase_delay):.2f}",
             f"{to_ps(r.anti_phase_delay):.2f}",
             f"{to_ps(r.delay_window):.2f}")
            for label, r in results.items()
        ],
    )

    rc = results["RC only"]
    no_k = results["RLC, no mutual K"]
    full = results["full RLC"]
    # the capacitive picture: a material Miller window, classic signs
    assert rc.delay_window > 0
    assert rc.in_phase_delay < rc.quiet_delay < rc.anti_phase_delay
    assert no_k.delay_window > 0
    # mutual inductance opposes and largely cancels it
    assert abs(full.delay_window) < 0.5 * rc.delay_window
