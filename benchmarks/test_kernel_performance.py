"""Fast-path PEEC kernel economics: dedup assembly + factor-once sweeps.

Three claims the kernel layer makes, measured on reference meshes and
recorded into ``BENCH_kernel.json`` at the repo root (the README's
kernel table is regenerated from that file):

1. **Dedup assembly wins.**  On a characterization-grade mesh (400
   filaments) canonical-signature deduplication evaluates a fraction of
   the Hoer-Love pair integrals and beats the naive full-broadcast
   assembly severalfold -- while agreeing *bit for bit* (the recorded
   ``max_rel_diff`` is exactly 0.0, not a tolerance).
2. **Factor-once sweeps win.**  Diagonalizing ``diag(R) + j*w*Lp`` once
   turns an m-point frequency sweep from m LU factorizations into one
   eigendecomposition plus m diagonal rescalings.
3. **The memo cache works across grid points.**  Neighboring points of
   a table-characterization grid share congruent filament pairs; during
   a real ``LoopTableJob`` build the process-wide cache serves a
   nonzero fraction of lookups.

A fourth test is the CI smoke guard: on a *small* reference mesh (where
there is little to deduplicate) the dedup machinery must not cost more
than 20% over naive -- the fast path is never a slow path.
"""

import time
from pathlib import Path

import numpy as np
import pytest
from conftest import record_bench, report

from repro import instrumentation
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.library import LoopTableJob, build_library
from repro.peec.kernel import (
    assemble_partial_inductance_matrix,
    lp_memo_cache,
    lp_memo_disabled,
    signature_stats,
)
from repro.peec.loop import LoopProblem
from repro.peec.mesh import mesh_bar

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
TELEMETRY_PATH = RESULTS_PATH.with_name("BENCH_kernel_telemetry.json")


@pytest.fixture(scope="session", autouse=True)
def _telemetry_artifact():
    """Trace the whole benchmark session into BENCH_kernel_telemetry.json.

    The report (span tree + counter/histogram totals) is uploaded by CI
    next to ``BENCH_kernel.json`` so a regression in the numbers comes
    with the trace that explains it.  Registry and tracer are cleared up
    front so the artifact is a clean delta; note that the memo test's
    own mid-run ``reset_solver_calls()`` means counter totals cover the
    tail of the session, while spans always cover all of it.
    """
    from repro.telemetry import get_registry, get_tracer, telemetry_session

    get_registry().reset()
    get_tracer().reset()
    with telemetry_session("bench kernel") as session:
        yield
    session.report.save(TELEMETRY_PATH)


def _record(update: dict) -> dict:
    """Merge *update* into BENCH_kernel.json, stamping run provenance."""
    return record_bench(RESULTS_PATH, update)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over *repeats* runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _max_rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    scale = np.maximum(np.abs(a), np.abs(b))
    diff = np.abs(a - b)
    mask = scale > 0
    return float(diff[mask].max() / 1.0) if not mask.any() else float(
        (diff[mask] / scale[mask]).max()
    )


def _reference_mesh(n_width: int, n_thickness: int, grading: float = 1.0):
    parent = RectBar(Point3D(0, 0, 0), um(300), um(8), um(4), "x")
    return list(
        mesh_bar(parent, n_width=n_width, n_thickness=n_thickness,
                 grading=grading).filaments
    )


def test_assembly_dedup_vs_naive():
    """Signature-dedup assembly vs the full n x n Hoer-Love broadcast."""
    bars = _reference_mesh(20, 20)  # 400 filaments, 80200 same-axis pairs
    stats = signature_stats(bars)

    with lp_memo_disabled():
        t_naive = _best_of(
            lambda: assemble_partial_inductance_matrix(bars, method="naive"),
            2,
        )
        t_dedup = _best_of(
            lambda: assemble_partial_inductance_matrix(bars, method="dedup"),
            2,
        )
        lp_naive = assemble_partial_inductance_matrix(bars, method="naive")
        lp_dedup = assemble_partial_inductance_matrix(bars, method="dedup")

    max_rel = _max_rel_diff(lp_dedup, lp_naive)
    speedup = t_naive / t_dedup if t_dedup > 0 else float("inf")
    report(
        f"Lp assembly on a {len(bars)}-filament mesh "
        f"(dedup factor {stats['dedup_factor']:.2f})",
        [
            ["naive broadcast", f"{t_naive:.3f} s", "1.00x"],
            ["signature dedup", f"{t_dedup:.3f} s", f"{speedup:.2f}x"],
        ],
        header=["assembly", "wall time", "speedup"],
    )
    _record({"assembly": {
        "filaments": len(bars),
        "pairs": int(stats["pairs"]),
        "unique_signatures": int(stats["unique_signatures"]),
        "dedup_factor": round(stats["dedup_factor"], 2),
        "naive_seconds": round(t_naive, 4),
        "dedup_seconds": round(t_dedup, 4),
        "speedup": round(speedup, 2),
        "filaments_per_second": round(len(bars) / t_dedup, 1)
        if t_dedup > 0 else float("inf"),
        "max_rel_diff": max_rel,
    }})

    np.testing.assert_array_equal(lp_dedup, lp_naive)
    assert max_rel == 0.0, "dedup assembly must be bit-identical to naive"
    assert speedup > 3.0, (
        f"dedup assembly only {speedup:.2f}x faster than naive on the "
        f"{len(bars)}-filament reference mesh"
    )


def test_frequency_sweep_factored_vs_lu():
    """8-point loop R/L sweep: cached eigendecomposition vs LU per point."""
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )
    problem = LoopProblem(block, n_width=10, n_thickness=4, grading=1.5)
    freqs = list(np.logspace(7, 10.5, 8))
    # Warm the shared frequency-independent state (Lp assembly + the
    # one-off factorization) so both modes time pure per-point cost.
    problem.solve(freqs[0], factored=True)
    problem.solve(freqs[0], factored=False)

    t_direct = _best_of(
        lambda: problem.solve_sweep(freqs, factored=False), 2)
    t_factored = _best_of(
        lambda: problem.solve_sweep(freqs, factored=True), 2)
    fast = problem.solve_sweep(freqs, factored=True)
    slow = problem.solve_sweep(freqs, factored=False)
    max_rel = max(
        abs(a.loop_impedance - b.loop_impedance) / abs(b.loop_impedance)
        for a, b in zip(fast, slow)
    )

    n_fil = problem.network._assembled().n_fil
    speedup = t_direct / t_factored if t_factored > 0 else float("inf")
    report(
        f"{len(freqs)}-point R/L sweep, {n_fil} filaments",
        [
            ["LU per frequency", f"{t_direct:.3f} s", "1.00x"],
            ["factor-once modal", f"{t_factored:.3f} s", f"{speedup:.2f}x"],
        ],
        header=["sweep", "wall time", "speedup"],
    )
    _record({"sweep": {
        "filaments": int(n_fil),
        "frequencies": len(freqs),
        "lu_seconds": round(t_direct, 4),
        "factored_seconds": round(t_factored, 4),
        "speedup": round(speedup, 2),
        "max_rel_diff": float(max_rel),
    }})

    assert max_rel < 1e-9, "factored sweep diverged from the LU reference"
    assert speedup > 2.0, (
        f"factored sweep only {speedup:.2f}x faster than per-point LU"
    )


def test_memo_cache_hits_during_table_build(tmp_path):
    """A real characterization build reuses pair values across grid points."""
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    job = LoopTableJob(
        config=config, frequency=GHz(6.4),
        widths=(um(8), um(10), um(12)),
        lengths=(um(500), um(1000), um(2000)),
        n_width=4, n_thickness=2,
    )
    cache = lp_memo_cache()
    cache.clear()
    cache.reset_stats()
    instrumentation.reset_solver_calls()

    build_library(tmp_path / "kit", [job], parallel=False)

    hits = instrumentation.solver_call_count(instrumentation.LP_MEMO_HIT)
    misses = instrumentation.solver_call_count(instrumentation.LP_MEMO_MISS)
    evals = instrumentation.solver_call_count(instrumentation.LP_PAIR_EVAL)
    hit_rate = instrumentation.memo_hit_rate()
    report(
        f"memo cache during a {job.num_points()}-point LoopTableJob build",
        [
            ["lookups", str(hits + misses)],
            ["hits", str(hits)],
            ["hit rate", f"{hit_rate:.1%}"],
            ["kernel evaluations", str(evals)],
        ],
    )
    _record({"memo": {
        "grid_points": job.num_points(),
        "lookups": int(hits + misses),
        "hits": int(hits),
        "hit_rate": round(hit_rate, 4),
        "pair_evaluations": int(evals),
    }})

    assert hits > 0, "a table build must reuse cached pair values"
    assert hit_rate > 0.0


def test_smoke_dedup_never_slower_on_small_mesh():
    """CI guard: the fast path must stay fast where there is little to dedup.

    A small graded mesh is the worst case for the dedup machinery (few
    congruent pairs, fixed canonicalization/unique/scatter overhead);
    even there it must not cost more than 20% over the naive broadcast.
    """
    bars = _reference_mesh(6, 3, grading=1.5)  # 18 filaments
    with lp_memo_disabled():
        t_naive = _best_of(
            lambda: assemble_partial_inductance_matrix(bars, method="naive"),
            7,
        )
        t_dedup = _best_of(
            lambda: assemble_partial_inductance_matrix(bars, method="dedup"),
            7,
        )
    ratio = t_dedup / t_naive if t_naive > 0 else float("inf")
    report(
        f"dedup overhead guard ({len(bars)}-filament graded mesh)",
        [
            ["naive", f"{t_naive * 1e3:.2f} ms"],
            ["dedup", f"{t_dedup * 1e3:.2f} ms ({ratio:.2f}x naive)"],
        ],
    )
    _record({"smoke": {
        "filaments": len(bars),
        "naive_ms": round(t_naive * 1e3, 3),
        "dedup_ms": round(t_dedup * 1e3, 3),
        "ratio_vs_naive": round(ratio, 3),
    }})
    assert ratio < 1.2, (
        f"dedup assembly is {ratio:.2f}x naive on a small mesh "
        "(must stay under 1.2x)"
    )


def test_signature_key_batching_not_slower_than_per_row():
    """The batched key path (one tobytes + slicing) vs n per-row calls.

    ``signature_keys`` is on the memo hot path of every dedup assembly;
    this guards the vectorized encoding against regressing below the
    naive per-row loop it replaced (recorded, and asserted with a 10%
    noise allowance).
    """
    from repro.peec.kernel import signature_keys

    rows = np.random.default_rng(0).random((20_000, 9))
    per_row = _best_of(
        lambda: [rows[i].tobytes() for i in range(rows.shape[0])], 7)
    batched = _best_of(lambda: signature_keys(rows), 7)
    assert signature_keys(rows) == [
        rows[i].tobytes() for i in range(rows.shape[0])
    ]
    ratio = batched / per_row if per_row > 0 else float("inf")
    report(
        f"signature key encoding, {rows.shape[0]} signatures",
        [
            ["per-row tobytes", f"{per_row * 1e3:.2f} ms"],
            ["batched", f"{batched * 1e3:.2f} ms ({ratio:.2f}x per-row)"],
        ],
    )
    _record({"signature_keys": {
        "signatures": rows.shape[0],
        "per_row_ms": round(per_row * 1e3, 3),
        "batched_ms": round(batched * 1e3, 3),
        "ratio_vs_per_row": round(ratio, 3),
    }})
    assert ratio < 1.1, (
        f"batched signature keys {ratio:.2f}x the per-row loop"
    )


def test_disk_warmed_assembly_faster_than_cold(tmp_path):
    """A shard-warmed memo replays every pair value of a prior assembly.

    Cold: clear memo, assemble the 400-filament reference mesh, flush
    to a disk shard.  Warm: clear the memo (a fresh process), load the
    shard back, assemble again -- every lookup must hit and the
    assembly must be measurably faster.
    """
    from repro.peec.diskmemo import DiskMemoShard

    bars = _reference_mesh(20, 20)
    shard = DiskMemoShard(tmp_path / "memo.json")
    cache = lp_memo_cache()

    cache.clear()
    cache.reset_stats()
    t0 = time.perf_counter()
    lp_cold = assemble_partial_inductance_matrix(bars)
    t_cold = time.perf_counter() - t0
    entries = shard.flush(cache)

    cache.clear()
    cache.reset_stats()
    shard.warm(cache)
    t0 = time.perf_counter()
    lp_warm = assemble_partial_inductance_matrix(bars)
    t_warm = time.perf_counter() - t0

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    report(
        f"disk-warmed assembly, {len(bars)}-filament mesh "
        f"({entries} shard entries)",
        [
            ["cold (empty memo)", f"{t_cold * 1e3:.1f} ms", "1.00x"],
            ["disk-warmed", f"{t_warm * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
        header=["assembly", "wall time", "speedup"],
    )
    _record({"disk_memo": {
        "filaments": len(bars),
        "shard_entries": int(entries),
        "cold_ms": round(t_cold * 1e3, 2),
        "warm_ms": round(t_warm * 1e3, 2),
        "speedup": round(speedup, 2),
        "hit_rate": round(cache.hit_rate, 4),
    }})

    np.testing.assert_array_equal(lp_warm, lp_cold)
    assert cache.hit_rate >= 0.9, (
        f"disk-warmed assembly hit rate {cache.hit_rate:.1%}"
    )
    assert speedup > 1.2, (
        f"disk-warmed assembly only {speedup:.2f}x the cold one"
    )
