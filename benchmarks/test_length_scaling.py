"""Sec. V: inductance is super-linear in length.

Paper: "if a segment length changes from 1000 um to 2000 um, the self-
and mutual-inductances increase by about [2.2] times" -- the reason the
tables carry a length axis and segments are extracted at full length.

Shape asserted: doubling 1000 um multiplies self and mutual L by
2.1-2.4, and the per-length inductance keeps growing with length.
"""

from conftest import report, run_once

from repro.constants import to_nH
from repro.experiments import run_length_scaling


def test_superlinear_length_scaling(benchmark):
    result = run_once(benchmark, run_length_scaling)

    report(
        "Sec. V: self/mutual partial inductance vs length (w=5um t=2um)",
        header=("length [um]", "self L [nH]", "L/len [nH/mm]",
                "mutual L [nH]"),
        rows=[
            (f"{l * 1e6:.0f}",
             f"{to_nH(ls):.4f}",
             f"{to_nH(ls) / (l * 1e3):.3f}",
             f"{to_nH(lm):.4f}")
            for l, ls, lm in zip(result.lengths, result.self_inductance,
                                 result.mutual_inductance)
        ],
    )
    ratio_self = result.doubling_ratio(1e-3)
    ratio_mutual = result.mutual_doubling_ratio(1e-3)
    print(f"  L(2000)/L(1000) self = {ratio_self:.3f}, "
          f"mutual = {ratio_mutual:.3f}  (paper: about 2.2)")

    assert 2.1 < ratio_self < 2.4
    assert 2.1 < ratio_mutual < 2.5
    # per-length slope keeps growing: linear scaling would underestimate
    assert result.per_length_slope_growth > 1.3
