"""Ablation (Sec. II-B): how the local ground plane is modeled.

The paper's extension folds the plane return into precomputed *loop*
inductance tables instead of carrying an explicit plane model in the
final netlist.  Two questions quantified here:

1. how finely must the plane be meshed during characterization (strip
   count convergence), and
2. how wrong is ignoring the plane return entirely (the difference the
   loop-table extension exists to capture).
"""

from conftest import report, run_once

from repro.constants import GHz, to_nH, um
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import plane_under_block
from repro.peec.loop import LoopProblem


def cpw(length=um(2000)):
    return TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=length, thickness=um(2), z_bottom=um(5),
    )


def test_plane_strip_convergence(benchmark):
    strip_counts = (1, 3, 5, 9, 15, 25)

    def sweep():
        values = []
        for n in strip_counts:
            block = cpw()
            plane = plane_under_block(block, gap=um(3), n_strips=n)
            problem = LoopProblem(block, plane=plane, n_width=1, n_thickness=1)
            values.append(problem.loop_rl(GHz(3.2))[1])
        return values

    values = run_once(benchmark, sweep)
    reference = values[-1]
    report(
        "Plane mesh convergence (CPW over plane, loop L)",
        header=("strips", "loop L [nH]", "vs finest"),
        rows=[
            (f"{n}", f"{to_nH(v):.4f}",
             f"{abs(v - reference) / reference * 100:.2f} %")
            for n, v in zip(strip_counts, values)
        ],
    )

    # convergent: each refinement moves the answer less
    deltas = [abs(a - b) for a, b in zip(values, values[1:])]
    assert deltas[-1] < deltas[0]
    # ~10 strips is already within 2 % of the finest model
    idx_9 = strip_counts.index(9)
    assert abs(values[idx_9] - reference) / reference < 0.02


def test_ignoring_plane_overestimates_inductance(benchmark):
    def compare():
        block = cpw()
        no_plane = LoopProblem(block, n_width=1, n_thickness=1)
        plane = plane_under_block(block, gap=um(3), n_strips=15)
        with_plane = LoopProblem(block, plane=plane, n_width=1, n_thickness=1)
        return no_plane.loop_rl(GHz(3.2))[1], with_plane.loop_rl(GHz(3.2))[1]

    l_no_plane, l_with_plane = run_once(benchmark, compare)
    report(
        "Effect of the local plane return on loop L",
        header=("model", "loop L [nH]"),
        rows=[
            ("coplanar returns only", f"{to_nH(l_no_plane):.4f}"),
            ("+ plane return (loop table)", f"{to_nH(l_with_plane):.4f}"),
        ],
    )
    print(f"  ignoring the plane overestimates loop L by "
          f"{(l_no_plane / l_with_plane - 1) * 100:.1f} %")

    # the plane provides a lower-inductance return: tables built without
    # it would be pessimistic, which is why the loop-table extension
    # exists
    assert l_with_plane < l_no_plane
    assert l_no_plane / l_with_plane > 1.05
