"""Characterization-library economics: build parallelism + warm lookups.

Two claims the library subsystem makes, measured on a small CPW grid:

1. **Parallel builds help.**  Grid-point solves are independent, so a
   process pool should cut build wall-time roughly by the worker count
   (modulo pool startup and per-point cost granularity).  On a
   single-core host the pool can only expose its overhead; the test
   then just bounds that overhead.
2. **Warm lookups are the paper's speedup.**  A cold extraction pays
   seconds of field-solver time; a warm library answers the same query
   by spline lookup in microseconds, and a *whole* repeated experiment
   performs zero solver calls.

The measured numbers are recorded into ``BENCH_library.json`` at the
repo root so the README's warm-vs-cold table stays reproducible.
"""

import os
import time
from pathlib import Path

from conftest import record_bench, report

from repro import instrumentation
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import GHz, um
from repro.library import LoopTableJob, TableLibrary, build_library

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_library.json"

CONFIG = CoplanarWaveguideConfig(
    signal_width=um(10), ground_width=um(5), spacing=um(1),
    thickness=um(2), height_below=um(2),
)
FREQUENCY = GHz(6.4)
WIDTHS = [um(6), um(8), um(10), um(12), um(14)]
LENGTHS = [um(500), um(1000), um(2000), um(4000), um(6000)]
WORKERS = 4


def _jobs():
    # A finer filament discretization than the extraction default, so a
    # grid point costs real solver time (a few hundred ms) and the pool
    # comparison measures solve throughput rather than fork startup.
    return [LoopTableJob(
        config=CONFIG, frequency=FREQUENCY,
        widths=tuple(WIDTHS), lengths=tuple(LENGTHS),
        n_width=6, n_thickness=3,
    )]


def _record(update: dict) -> dict:
    """Merge *update* into BENCH_library.json, stamping run provenance."""
    return record_bench(RESULTS_PATH, update)


def test_serial_vs_parallel_build(tmp_path):
    """Process-pool fan-out vs the in-process loop on the same grid."""
    t0 = time.perf_counter()
    serial_stats = build_library(tmp_path / "serial", _jobs(), parallel=False)
    serial_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_stats = build_library(tmp_path / "parallel", _jobs(),
                                   workers=WORKERS, parallel=True)
    parallel_time = time.perf_counter() - t0

    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    report(
        "library build: serial vs process-pool "
        f"({serial_stats.points_total} grid points, {WORKERS} workers)",
        [
            ["serial", f"{serial_time:.2f} s", "1.00x"],
            ["parallel", f"{parallel_time:.2f} s", f"{speedup:.2f}x"],
        ],
        header=["mode", "wall time", "speedup"],
    )
    cpus = os.cpu_count() or 1
    _record({"build": {
        "grid_points": serial_stats.points_total,
        "workers": WORKERS,
        "cpu_count": cpus,
        "serial_seconds": round(serial_time, 4),
        "parallel_seconds": round(parallel_time, 4),
        "parallel_speedup": round(speedup, 2),
    }})

    # same numbers either way
    serial_lib = TableLibrary(tmp_path / "serial", create=False)
    parallel_lib = TableLibrary(tmp_path / "parallel", create=False)
    key = _jobs()[0].table_key("loop_inductance")
    assert serial_lib.get(key).values == __import__("pytest").approx(
        parallel_lib.get(key).values)
    # Shape assertion.  On a multi-core host the pool must not lose to
    # serial; on a single-core host it can only show its overhead, which
    # must stay modest (fork + pickling, not re-solving).
    if cpus >= 2:
        assert parallel_time < serial_time * 1.2
    else:
        assert parallel_time < serial_time * 1.6


def test_cold_vs_warm_lookup_latency(tmp_path):
    """One segment extraction: direct field solve vs warm library lookup."""
    build_library(tmp_path / "kit", _jobs(), parallel=False)

    cold = ClocktreeRLCExtractor(CONFIG, frequency=FREQUENCY)
    t0 = time.perf_counter()
    cold_rlc = cold.segment_rlc(um(2200))
    cold_time = time.perf_counter() - t0

    warm = ClocktreeRLCExtractor(CONFIG, frequency=FREQUENCY,
                                 library=tmp_path / "kit")
    warm.segment_rlc(um(2200))  # touch once: spline setup is already done
    n_queries = 200
    instrumentation.reset_solver_calls()
    t0 = time.perf_counter()
    for k in range(n_queries):
        warm.segment_rlc(um(2200) + k * um(1))
    warm_time = (time.perf_counter() - t0) / n_queries
    solver_calls = instrumentation.solver_call_count()
    warm_rlc = warm.segment_rlc(um(2200))  # same point as the cold solve

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    report(
        "extraction latency: cold field solve vs warm library lookup",
        [
            ["cold (direct solve)", f"{cold_time * 1e3:9.2f} ms", "1x"],
            ["warm (library)", f"{warm_time * 1e3:9.4f} ms",
             f"{speedup:.0f}x"],
        ],
        header=["path", "per segment", "speedup"],
    )
    _record({"lookup": {
        "cold_ms": round(cold_time * 1e3, 3),
        "warm_ms": round(warm_time * 1e3, 5),
        "speedup": round(speedup, 1),
        "warm_solver_calls": solver_calls,
    }})

    assert solver_calls == 0, "warm lookups must not invoke the field solver"
    assert warm_time < cold_time, "a table lookup must beat a field solve"
    assert warm_rlc.inductance == __import__("pytest").approx(
        cold_rlc.inductance, rel=0.08)
