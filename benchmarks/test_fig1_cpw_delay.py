"""Figs. 1-3: CPW clock-net delay with and without inductance.

Paper: 6000 um co-planar waveguide clock net, 40-ohm-class driver.
Delay buffer-to-sink = 28.01 ps (RC netlist) vs 47.6 ps (RLC netlist),
with overshoot/undershoot visible only in the RLC waveform.

Shape asserted here: including L increases the delay by well over 1.5x,
the RLC delay lands in the paper's few-tens-of-ps range, and ringing
appears only with inductance.
"""

from conftest import report, run_once

from repro.constants import to_nH, to_pF, to_ps
from repro.experiments import run_fig1


def test_fig1_delay_comparison(benchmark):
    result = run_once(benchmark, run_fig1)

    report(
        "Figs. 1-3: CPW clock net, delay without/with inductance",
        header=("quantity", "paper", "measured"),
        rows=[
            ("delay RC [ps]", "28.01", f"{to_ps(result.delay_rc):.2f}"),
            ("delay RLC [ps]", "47.60", f"{to_ps(result.delay_rlc):.2f}"),
            ("delay ratio", "1.70", f"{result.delay_ratio:.2f}"),
            ("overshoot RLC", "visible", f"{result.overshoot_rlc * 100:.1f} %"),
            ("undershoot RLC", "visible", f"{result.undershoot_rlc * 100:.1f} %"),
            ("overshoot RC", "none", f"{result.overshoot_rc * 100:.1f} %"),
            ("extracted R [ohm]", "-", f"{result.rlc.resistance:.2f}"),
            ("extracted L [nH]", "-", f"{to_nH(result.rlc.inductance):.3f}"),
            ("extracted C [pF]", "-", f"{to_pF(result.rlc.capacitance):.3f}"),
        ],
    )

    # inductance slows the net down substantially
    assert result.delay_rlc > 1.5 * result.delay_rc
    # and lands in the paper's range of tens of ps for a 6 mm net
    assert 20e-12 < result.delay_rlc < 100e-12
    # ringing only with L
    assert result.overshoot_rlc > 0.05
    assert result.undershoot_rlc > 0.0
    assert result.overshoot_rc < 0.01


def test_fig1_driver_impedance_crossover(benchmark):
    """Where the inductance effect switches on: Rs vs Z0 crossover.

    The paper motivates the effect with 'large driver and therefore
    smaller source impedance'.  Sweeping the drive resistance shows the
    overshoot and the delay penalty appearing as Rs drops below the
    line's characteristic impedance (~27 ohm for this geometry).
    """
    resistances = (5.0, 15.0, 25.0, 35.0, 60.0)

    def sweep():
        return [run_fig1(drive_resistance=rs) for rs in resistances]

    results = run_once(benchmark, sweep)
    z0 = (results[0].rlc.inductance / results[0].rlc.capacitance) ** 0.5

    report(
        f"Driver-impedance crossover (line Z0 ~ {z0:.0f} ohm)",
        header=("Rs [ohm]", "delay ratio", "overshoot [%]"),
        rows=[
            (f"{rs:.0f}", f"{r.delay_ratio:.2f}", f"{r.overshoot_rlc * 100:.1f}")
            for rs, r in zip(resistances, results)
        ],
    )

    overshoots = [r.overshoot_rlc for r in results]
    # overshoot decays monotonically as the driver weakens ...
    assert all(a >= b - 1e-9 for a, b in zip(overshoots, overshoots[1:]))
    # ... and is effectively gone once Rs is well above Z0
    assert overshoots[0] > 0.2
    assert overshoots[-1] < 0.01
