"""Shared reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison.  Absolute numbers differ (our
substrate is a Python field solver + MNA simulator, not the authors'
Raphael/HSPICE testbed); the asserted quantities are the *shapes*: who
wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union


def record_bench(path: Union[str, Path], update: dict) -> dict:
    """Read-merge-write one ``BENCH_*.json`` record with provenance.

    Thin delegate to :func:`repro.quality.regress.record_bench` -- one
    implementation shared with ``repro bench serve`` -- kept here so
    every benchmark module keeps importing from ``conftest``.
    """
    from repro.quality.regress import record_bench as _record_bench

    return _record_bench(path, update)


def report(title: str, rows: Sequence[Sequence[str]],
           header: Optional[Sequence[str]] = None) -> None:
    """Print an aligned paper-vs-measured table under a title."""
    print()
    print(f"=== {title} ===")
    all_rows = ([list(header)] if header else []) + [list(r) for r in rows]
    widths = [
        max(len(str(row[i])) for row in all_rows)
        for i in range(len(all_rows[0]))
    ]
    for k, row in enumerate(all_rows):
        line = "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        print("  " + line)
        if header and k == 0:
            print("  " + "  ".join("-" * w for w in widths))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
