"""Shared reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison.  Absolute numbers differ (our
substrate is a Python field solver + MNA simulator, not the authors'
Raphael/HSPICE testbed); the asserted quantities are the *shapes*: who
wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union


def record_bench(path: Union[str, Path], update: dict) -> dict:
    """Read-merge-write one ``BENCH_*.json`` record with provenance.

    Every write refreshes the record's ``meta`` block (schema version,
    git sha, ISO timestamp, host, python version) via
    :func:`repro.quality.regress.run_metadata`, so committed benchmark
    numbers are comparable artifacts for ``repro bench diff`` rather
    than loose floats.
    """
    from repro.quality.regress import run_metadata

    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    data["meta"] = run_metadata()
    path.write_text(json.dumps(data, indent=1) + "\n")
    return data


def report(title: str, rows: Sequence[Sequence[str]],
           header: Optional[Sequence[str]] = None) -> None:
    """Print an aligned paper-vs-measured table under a title."""
    print()
    print(f"=== {title} ===")
    all_rows = ([list(header)] if header else []) + [list(r) for r in rows]
    widths = [
        max(len(str(row[i])) for row in all_rows)
        for i in range(len(all_rows[0]))
    ]
    for k, row in enumerate(all_rows):
        line = "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        print("  " + line)
        if header and k == 0:
            print("  " + "  ".join("-" * w for w in widths))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
