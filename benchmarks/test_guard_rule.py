"""Sec. IV: the "at least equal width" guard-wire rule.

"Since the width of each ground wire is the same as that of the signal
wire and the shielding will improve if wider ground wires are used, we
have the at least equal width conclusion."

Shape asserted: at every guard-to-signal width ratio the cascading
error stays negligible (the segments are inductively self-contained),
and widening the guards tightens the return loop (lower loop L) --
the two facts behind the rule.
"""

from conftest import report, run_once

from repro.cascade.guard_rule import guard_width_study
from repro.cascade.tree import figure6a_tree
from repro.constants import GHz, to_nH, um

RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_guard_width_rule(benchmark):
    def run():
        return guard_width_study(
            figure6a_tree(spacing=um(6)),
            width_ratios=RATIOS,
            frequency=GHz(3),
        )

    study = run_once(benchmark, run)
    report(
        "Guard width vs cascading fidelity (Fig. 6(a) tree, 6 um spacing)",
        header=("guard/signal", "cascading error", "loop L [nH]"),
        rows=[
            (f"{p.width_ratio:.2f}",
             f"{p.cascading_error * 100:.3f} %",
             f"{to_nH(p.loop_inductance):.4f}")
            for p in study.points
        ],
    )

    # guarded segments cascade essentially exactly at every ratio
    assert all(p.cascading_error < 0.01 for p in study.points)
    assert study.rule_holds(tolerance=0.05)
    # wider guards shield better: the loop inductance falls monotonically
    inductances = [p.loop_inductance for p in study.points]
    assert all(a >= b for a, b in zip(inductances, inductances[1:]))
