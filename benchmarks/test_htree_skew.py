"""Sec. V: clock-skew error from omitting inductance.

Paper: "without consideration of inductance in the clock skew
calculation, the difference can be more than 10%.  If there is ringing
due to inductance effect on the clock signal, the result can be even
devastating."

Shape asserted: on an asymmetric buffered H-tree in the strong-driver
regime, the RC-only netlist mispredicts both the maximum insertion delay
and the skew by more than 10 %.
"""

from conftest import report, run_once

from repro.constants import to_ps
from repro.experiments import run_htree_skew


def test_htree_skew_rc_vs_rlc(benchmark):
    result = run_once(benchmark, run_htree_skew)
    comparison = result.comparison

    rc_delays = comparison.rc.delays
    rlc_delays = comparison.rlc.delays
    report(
        "Sec. V: H-tree sink delays, RC-only vs RLC netlist",
        header=("sink", "RC delay [ps]", "RLC delay [ps]", "error"),
        rows=[
            (sink,
             f"{to_ps(rc_delays[sink]):.2f}",
             f"{to_ps(rlc):.2f}",
             f"{abs(rlc - rc_delays[sink]) / rlc * 100:.1f} %")
            for sink, rlc in sorted(rlc_delays.items())
        ],
    )
    report(
        "Skew summary",
        header=("quantity", "paper", "measured"),
        rows=[
            ("skew RC [ps]", "-", f"{to_ps(result.rc_skew):.2f}"),
            ("skew RLC [ps]", "-", f"{to_ps(result.rlc_skew):.2f}"),
            ("skew error w/o L", "> 10 %",
             f"{result.skew_discrepancy_percent:.1f} %"),
            ("max-delay error w/o L", "-",
             f"{result.delay_discrepancy_percent:.1f} %"),
        ],
    )

    # the paper's headline claim
    assert result.skew_discrepancy_percent > 10.0
    # RC underestimates the true (RLC) delays: flight time is missing
    assert comparison.rlc.max_delay > comparison.rc.max_delay
    # skew itself is worse than the RC netlist suggests
    assert result.rlc_skew > result.rc_skew
