"""Extraction-service economics: steady-state load against a live daemon.

The serving layer's claim mirrors the paper's: after the first request
for a geometry, everything is cache -- so a daemon should sustain
hundreds of requests per second with millisecond-scale tails, doing
zero solver work.  Measured here with the same closed-loop driver
``repro bench serve`` uses: N threads x M requests against an
in-process daemon over a freshly built kit.

Results land in ``BENCH_serve.json`` at the repo root: latency
p50/p95/p99 (lower-is-better under the regression watchdog's
``seconds`` marker), requests/second (higher-is-better via
``per_second``), and the cache hit rate.  ``repro bench diff`` gates
them like every other committed bench record.
"""

import time
from pathlib import Path

from conftest import record_bench, report

from repro import instrumentation
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.library import build_library, standard_clocktree_jobs
from repro.serve import ExtractionService, start_server
from repro.serve.loadgen import run_load

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

CONFIG = CoplanarWaveguideConfig(
    signal_width=um(10), ground_width=um(5), spacing=um(1),
    thickness=um(2), height_below=um(2),
)
FREQUENCY = GHz(3.2)
THREADS = 4
REQUESTS_PER_THREAD = 50
REQUEST = {"root_length_um": 3000.0, "levels": 2}


def _build_kit(root):
    jobs = standard_clocktree_jobs(
        CONFIG, frequency=FREQUENCY,
        widths=[um(6), um(10), um(14)],
        lengths=[um(400), um(1500), um(3000), um(6000)],
    )
    build_library(root, jobs, parallel=False)
    return root


def test_steady_state_load(tmp_path):
    """Warm-cache throughput and tail latency, solver-free."""
    kit = _build_kit(tmp_path / "kit")
    service = ExtractionService(kit, max_inflight=THREADS * 2)
    server = start_server(service)
    try:
        # one warmup request so the measured window is the steady state
        warmup = run_load(server.url, "extract", REQUEST,
                          threads=1, requests_per_thread=1)
        assert warmup.errors == 0

        instrumentation.reset_solver_calls()
        load = run_load(
            server.url, "extract", REQUEST,
            threads=THREADS, requests_per_thread=REQUESTS_PER_THREAD,
        )
        solver_calls = instrumentation.solver_call_count()
    finally:
        server.shutdown()
        server.server_close()

    assert load.errors == 0, load.to_dict()["status_counts"]
    assert solver_calls == 0, "steady-state serving must be solver-free"
    # every measured request after warmup is answerable from the cache
    assert load.cache_hits == load.requests

    summary = load.to_dict()
    report(
        f"serve steady-state: {THREADS} threads x "
        f"{REQUESTS_PER_THREAD} requests (warm cache)",
        [
            ["p50 latency", f"{summary['latency_p50_seconds'] * 1e3:.2f} ms"],
            ["p95 latency", f"{summary['latency_p95_seconds'] * 1e3:.2f} ms"],
            ["p99 latency", f"{summary['latency_p99_seconds'] * 1e3:.2f} ms"],
            ["throughput", f"{summary['requests_per_second']:.0f} req/s"],
            ["cache hit rate", f"{summary['cache_hit_rate']:.0%}"],
        ],
        header=["metric", "value"],
    )
    record_bench(RESULTS_PATH, {"serve_load": summary})

    # sanity floors, deliberately loose: a warm daemon on any host
    # should beat these by an order of magnitude
    assert summary["requests_per_second"] > 20.0
    assert summary["latency_p95_seconds"] < 1.0


def test_cold_vs_warm_request_cost(tmp_path):
    """The first request pays the extraction; repeats pay a dict hit."""
    kit = _build_kit(tmp_path / "kit")
    service = ExtractionService(kit)

    t0 = time.perf_counter()
    cold = service.handle("extract", REQUEST)
    cold_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = service.handle("extract", REQUEST)
    warm_time = time.perf_counter() - t0

    assert not cold["cache"]["hit"]
    assert warm["cache"]["hit"]
    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    report(
        "serve request cost: cold (extract) vs warm (result cache)",
        [
            ["cold", f"{cold_time * 1e3:.2f} ms", "1.0x"],
            ["warm", f"{warm_time * 1e3:.2f} ms", f"{speedup:.0f}x"],
        ],
        header=["path", "wall time", "speedup"],
    )
    record_bench(RESULTS_PATH, {"request_cost": {
        "cold_seconds": cold_time,
        "warm_seconds": warm_time,
        "cache_speedup": speedup,
    }})
    assert warm_time < cold_time
