"""The paper's Discussions section, quantified.

Two modeling choices the paper defends qualitatively:

1. "we assume each coupling capacitor to ground wire as a perfect
   grounded capacitor ... This assumption is optimistic.  Therefore, we
   think the over-estimate on the inductance can be compensated ..."
   -- here A/B-tested: the production single-signal model (loop R/L,
   all capacitance to ideal ground) against an explicit-shield netlist
   where the shields are real conductors with their own partial R/L and
   the coupling capacitors land on them.

2. "If there are parallel array of traces ... in layer N+2 or N-2, we
   currently ignore their inductive coupling to layer N traces assuming
   that they are statistically quiet."  -- here quantified: the loop L
   of the Fig. 1 CPW with and without a quiet parallel array two layers
   up.
"""

import numpy as np
from conftest import report, run_once

from repro.bus.extractor import BusRLCExtractor
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.constants import GHz, to_nH, to_ps, um
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.network import FilamentNetwork
from repro.rc.capacitance import CapacitanceModel

LENGTH = um(2000)
RS = 15.0
SUPPLY = 1.8
RISE = 50e-12
CL = 20e-15


def cpw_config():
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


def _drive_and_measure(circuit, in_node, out_node):
    circuit.add_voltage_source(
        "Vdrv", "src", "0", PulseSource(0, SUPPLY, rise=RISE, width=1.0)
    )
    circuit.add_resistor("Rdrv", "src", in_node, RS)
    circuit.add_capacitor("CL", out_node, "0", CL)
    result = transient_analysis(circuit, t_stop=1.5e-9, dt=0.5e-12)
    wave = result.voltage(out_node)
    return (
        wave.threshold_crossing(SUPPLY / 2.0),
        wave.overshoot(reference=SUPPLY),
    )


def test_ideal_ground_vs_explicit_shield_netlist(benchmark):
    def run():
        config = cpw_config()
        # A: the production model -- loop R/L, every capacitor to node 0
        extractor = ClocktreeRLCExtractor(config, frequency=GHz(6.4))
        rlc = extractor.segment_rlc(LENGTH)
        circuit_a = Circuit("ideal_ground")
        sections = 4
        node = "in"
        for k in range(sections):
            end = f"n{k + 1}"
            circuit_a.add_capacitor(f"Ca{k}", node, "0",
                                    rlc.capacitance / sections / 2)
            circuit_a.add_resistor(f"R{k}", node, f"m{k}",
                                   rlc.resistance / sections)
            circuit_a.add_inductor(f"L{k}", f"m{k}", end,
                                   rlc.inductance / sections)
            circuit_a.add_capacitor(f"Cb{k}", end, "0",
                                    rlc.capacitance / sections / 2)
            node = end
        delay_a, overshoot_a = _drive_and_measure(circuit_a, "in", node)

        # B: explicit shields -- the CPW as a 3-trace coupled bus where
        # the ground wires carry their own partial R/L and the coupling
        # capacitors terminate on them
        block = config.trace_block(LENGTH)
        bus_extractor = BusRLCExtractor(
            frequency=GHz(6.4),
            capacitance_model=config.capacitance_model(),
        )
        bus = bus_extractor.extract(block)
        netlist = bus_extractor.build_netlist(bus, sections=4)
        delay_b, overshoot_b = _drive_and_measure(
            netlist.circuit,
            netlist.input_nodes["SIG"],
            netlist.output_nodes["SIG"],
        )
        return (delay_a, overshoot_a), (delay_b, overshoot_b)

    (delay_a, ovs_a), (delay_b, ovs_b) = run_once(benchmark, run)
    report(
        "Ideal-ground caps + loop L vs explicit-shield partial-L netlist",
        header=("model", "50% delay [ps]", "overshoot"),
        rows=[
            ("loop model (paper flow)", f"{to_ps(delay_a):.2f}",
             f"{ovs_a * 100:.1f} %"),
            ("explicit shields (PEEC)", f"{to_ps(delay_b):.2f}",
             f"{ovs_b * 100:.1f} %"),
        ],
    )
    print(f"  delay difference: "
          f"{abs(delay_a - delay_b) / delay_b * 100:.1f} % -- the paper's "
          "compensation argument in numbers")

    # the paper's claim: the two approximations (optimistic grounded
    # caps, pessimistic loop L) roughly compensate -- the cheap model
    # tracks the explicit-shield reference closely
    assert abs(delay_a - delay_b) / delay_b < 0.25
    # both models agree the line rings with a strong driver
    assert ovs_a > 0.02 and ovs_b > 0.02


def test_quiet_layer_n2_array_ablation(benchmark):
    """How wrong is ignoring a quiet parallel array in layer N+2?"""

    def run():
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=LENGTH, thickness=um(2),
        )
        base_problem = LoopProblem(block, n_width=2, n_thickness=1)
        _, l_without = base_problem.loop_rl(GHz(3.2))

        # same CPW plus a quiet (open) 4-trace array 6 um above (N+2)
        network = FilamentNetwork(ground="ret")
        for trace in block.traces:
            node_a = "in" if trace.name == "SIG" else "ret"
            network.add_conductor(trace.name, trace.to_bar(), node_a, "far",
                                  n_width=2, n_thickness=1)
        for i in range(4):
            bar = RectBar(
                Point3D(0.0, um(2 + 6 * i), um(8)), LENGTH, um(3), um(1)
            )
            network.add_conductor(f"quiet{i}", bar, f"q{i}", "far")
        _, l_with = network.loop_rl("in", "ret", GHz(3.2))
        return l_without, l_with

    l_without, l_with = run_once(benchmark, run)
    error = abs(l_with - l_without) / l_without
    report(
        "Quiet parallel array in layer N+2: effect on CPW loop L",
        header=("model", "loop L [nH]"),
        rows=[
            ("array ignored (paper default)", f"{to_nH(l_without):.4f}"),
            ("array present but quiet", f"{to_nH(l_with):.4f}"),
        ],
    )
    print(f"  error of ignoring the quiet array: {error * 100:.2f} %")

    # quiet open traces carry no net current; their presence barely
    # moves the loop inductance -- the assumption the paper relies on
    assert error < 0.02
