"""Raw performance of the extraction substrate (repeated-timing benches).

Unlike the reproduction benches (one-shot experiments), these time the
hot kernels the way pytest-benchmark intends -- many rounds -- so
regressions in the vectorized Hoer-Love assembly, the loop solve or the
spline lookup show up.
"""

import numpy as np
import pytest

from repro.constants import GHz, um
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.solver import assemble_partial_inductance_matrix
from repro.tables.lookup import ExtractionTable


def make_bars(n):
    return [
        RectBar(Point3D(0, um(4 * i), 0), um(1000), um(2), um(1))
        for i in range(n)
    ]


def test_lp_matrix_assembly_100_bars(benchmark):
    bars = make_bars(100)
    matrix = benchmark(assemble_partial_inductance_matrix, bars)
    assert matrix.shape == (100, 100)
    assert np.all(np.diag(matrix) > 0)


def test_cpw_loop_solve(benchmark):
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )

    def solve():
        return LoopProblem(block, n_width=4, n_thickness=2).loop_rl(GHz(3.2))

    resistance, inductance = benchmark(solve)
    assert resistance > 0 and inductance > 0


def test_table_lookup_speed(benchmark):
    rng = np.random.default_rng(0)
    table = ExtractionTable(
        name="perf", quantity="self_inductance",
        axis_names=("width", "length"),
        axes=[np.linspace(um(2), um(20), 6), np.linspace(um(200), um(6000), 6)],
        values=rng.uniform(1e-10, 1e-9, size=(6, 6)),
    )
    value = benchmark(table.lookup, um(7.3), um(1234.0))
    assert value > 0


def test_transient_step_throughput(benchmark):
    """Time a 4000-step transient of a 60-unknown clocktree netlist."""
    from repro.circuit.transient import transient_analysis
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.clocktree.extractor import ClocktreeRLCExtractor
    from repro.clocktree.htree import HTree

    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    extractor = ClocktreeRLCExtractor(config, frequency=GHz(3.2))
    htree = HTree.generate(levels=2, root_length=um(2000), config=config)
    netlist = extractor.build_netlist(htree)

    def run():
        return transient_analysis(netlist.circuit, t_stop=2e-9, dt=0.5e-12)

    result = benchmark(run)
    assert result.time.size == 4001
