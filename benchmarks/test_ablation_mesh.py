"""Ablation: cross-section filament meshing vs extraction fidelity.

The significant-frequency characterization (0.32 / t_r ~ GHz) crowds
current toward conductor surfaces.  This ablation sweeps the filament
mesh of the Fig. 1 CPW and reports how loop R and L converge -- the
knob that trades characterization cost against skin/proximity accuracy.
"""

import time

from conftest import report, run_once

from repro.constants import GHz, to_nH, um
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem

MESHES = ((1, 1), (2, 2), (4, 2), (6, 3), (8, 4), (10, 5))
FREQUENCY = GHz(6.4)


def cpw():
    return TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=um(2000), thickness=um(2),
    )


def test_mesh_refinement_convergence(benchmark):
    def sweep():
        rows = []
        for n_w, n_t in MESHES:
            t0 = time.perf_counter()
            problem = LoopProblem(cpw(), n_width=n_w, n_thickness=n_t,
                                  grading=1.5)
            r, l = problem.loop_rl(FREQUENCY)
            rows.append((n_w, n_t, r, l, time.perf_counter() - t0))
        return rows

    rows = run_once(benchmark, sweep)
    r_ref, l_ref = rows[-1][2], rows[-1][3]
    report(
        f"Filament mesh vs loop R/L at {FREQUENCY / 1e9:.1f} GHz (2 mm CPW)",
        header=("mesh", "R [ohm]", "R err", "L [nH]", "L err", "time [s]"),
        rows=[
            (f"{n_w}x{n_t}", f"{r:.3f}",
             f"{abs(r - r_ref) / r_ref * 100:.1f} %",
             f"{to_nH(l):.4f}",
             f"{abs(l - l_ref) / l_ref * 100:.2f} %",
             f"{dt:.3f}")
            for n_w, n_t, r, l, dt in rows
        ],
    )

    # the coarse mesh misses skin-effect resistance: R converges upward
    r_values = [row[2] for row in rows]
    assert all(a <= b + 1e-9 for a, b in zip(r_values, r_values[1:]))
    # proximity crowding pulls current toward the gaps: L converges
    # downward as the mesh resolves it
    l_values = [row[3] for row in rows]
    assert all(a >= b - 1e-15 for a, b in zip(l_values, l_values[1:]))
    # the production default (4x2 edge-graded) is within a few % of the
    # finest model on L; single-filament extraction is way off on R
    l_4x2 = rows[2][3]
    assert abs(l_4x2 - l_ref) / l_ref < 0.05
    assert abs(rows[0][2] - r_ref) / r_ref > 0.25
