"""Ablation (Sec. V): why per-segment extraction is valid -- and when not.

The paper's argument has two halves:

1. "the inductance should be extracted from the whole length if there
   are no alternative return paths" -- partial inductance is super-linear
   in length, so chopping an unguarded wire into pieces and summing
   underestimates badly;
2. but for *guarded* segments the return flows in the adjacent shields,
   the loop inductance becomes essentially linear in length, and
   per-segment extraction plus cascading is accurate (Sec. IV).

This ablation measures both: the naive piecewise sum loses >10 % on the
partial (no-return) inductance while losing almost nothing on the
guarded loop inductance -- which is exactly why the clocktree flow may
work segment-by-segment from tables.
"""

from conftest import report, run_once

from repro.constants import GHz, to_nH, um
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.hoer_love import bar_self_inductance
from repro.peec.loop import LoopProblem

LENGTH = um(6000)
PIECES = (1, 2, 4, 8, 16)


def partial_l(length):
    bar = RectBar(Point3D(0, 0, 0), length, um(10), um(2))
    return bar_self_inductance(bar)


def guarded_loop_l(length):
    block = TraceBlock.coplanar_waveguide(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        length=length, thickness=um(2),
    )
    return LoopProblem(block, n_width=1, n_thickness=1).loop_rl(GHz(3.2))[1]


def test_piecewise_extraction_underestimates(benchmark):
    def sweep():
        partial_ref = partial_l(LENGTH)
        loop_ref = guarded_loop_l(LENGTH)
        partial_naive = {n: n * partial_l(LENGTH / n) for n in PIECES}
        loop_naive = {n: n * guarded_loop_l(LENGTH / n) for n in PIECES}
        return partial_ref, loop_ref, partial_naive, loop_naive

    partial_ref, loop_ref, partial_naive, loop_naive = run_once(benchmark, sweep)
    report(
        "Naive N x L(len/N) vs whole-length extraction (6 mm wire)",
        header=("pieces", "partial L [nH]", "underest.",
                "guarded loop L [nH]", "underest."),
        rows=[
            (f"{n}",
             f"{to_nH(partial_naive[n]):.3f}",
             f"{(1 - partial_naive[n] / partial_ref) * 100:.1f} %",
             f"{to_nH(loop_naive[n]):.4f}",
             f"{(1 - loop_naive[n] / loop_ref) * 100:.2f} %")
            for n in PIECES
        ],
    )

    # unguarded (partial) inductance: chopping underestimates badly and
    # monotonically -- the paper's "extract the whole length" warning
    partial_values = [partial_naive[n] for n in PIECES]
    assert all(a >= b for a, b in zip(partial_values, partial_values[1:]))
    assert partial_naive[8] < 0.75 * partial_ref

    # guarded loop inductance: the shields confine the return, L is
    # nearly linear in length, and per-segment extraction barely loses
    # anything -- the license for the segment-table clocktree flow
    assert abs(1 - loop_naive[8] / loop_ref) < 0.05


def test_ladder_sections_preserve_table_total(benchmark):
    """The correct construction: table L for the full length, split
    across ladder sections -- the netlist total must not drift."""
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.clocktree.extractor import ClocktreeRLCExtractor
    from repro.clocktree.htree import HTree
    from repro.circuit.elements import Inductor

    def build():
        config = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        results = {}
        for sections in (1, 4, 16):
            extractor = ClocktreeRLCExtractor(
                config, frequency=GHz(3.2), sections_per_segment=sections
            )
            htree = HTree.generate(levels=1, root_length=LENGTH / 2,
                                   config=config)
            netlist = extractor.build_netlist(htree)
            total = sum(
                e.inductance for e in netlist.circuit.elements
                if isinstance(e, Inductor) and e.name.startswith("L_s_L_")
            )
            results[sections] = total
        return results

    totals = run_once(benchmark, build)
    report(
        "Ladder sections vs netlist inductance total (one 3 mm segment)",
        header=("sections", "netlist L [nH]"),
        rows=[(f"{n}", f"{to_nH(v):.4f}") for n, v in totals.items()],
    )
    values = list(totals.values())
    assert max(values) - min(values) < 1e-12 * max(values) + 1e-18
