"""Sweep-campaign economics: parallel fan-out + ledger-replay resume.

Two claims the sweep orchestrator makes, measured on a real 2x2
``fig1-delay`` grid:

1. **Workers help.**  Grid points are independent scenario runs, so a
   process pool should raise campaign throughput (pt/s) over the
   serial loop on a multi-core host; on a single-core host it can only
   expose pool overhead, which must stay bounded.
2. **Resume is free.**  Re-running the identical campaign must replay
   every point from the run ledger -- zero solver calls -- and finish
   in a small fraction of the cold wall time.

The measured numbers are recorded into ``BENCH_sweep.json`` at the
repo root and gated by ``repro bench diff`` in CI.
"""

import os
import time
from pathlib import Path

from conftest import record_bench, report

from repro.scenarios import RunLedger, SweepSpec, run_sweep

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

SPEC = SweepSpec(
    "fig1-delay",
    grid={"DRIVE_RESISTANCE": [10.0, 20.0], "SECTIONS": [4, 6]},
)
WORKERS = 4


def test_sweep_throughput_and_resume(tmp_path):
    """Serial cold vs pooled cold vs ledger-replayed resume."""
    t0 = time.perf_counter()
    serial = run_sweep(SPEC, ledger=RunLedger(tmp_path / "serial"))
    serial_time = time.perf_counter() - t0
    assert serial.completed == 4 and serial.failed_count == 0

    parallel_ledger = RunLedger(tmp_path / "parallel")
    t0 = time.perf_counter()
    parallel = run_sweep(SPEC, ledger=parallel_ledger, workers=WORKERS)
    parallel_time = time.perf_counter() - t0
    assert parallel.completed == 4 and parallel.failed_count == 0

    t0 = time.perf_counter()
    resumed = run_sweep(SPEC, ledger=parallel_ledger, workers=WORKERS)
    resume_time = time.perf_counter() - t0
    assert resumed.skipped_count == 4
    assert resumed.solver_call_count == 0, \
        "an identical re-run must replay from the ledger, not re-solve"

    speedup = serial_time / parallel_time if parallel_time > 0 else 0.0
    report(
        f"sweep campaign: 4-point fig1-delay grid, {WORKERS} workers",
        [
            ["serial cold", f"{serial_time:8.2f} s",
             f"{serial.points_per_second:6.2f} pt/s"],
            [f"pool({WORKERS}) cold", f"{parallel_time:8.2f} s",
             f"{parallel.points_per_second:6.2f} pt/s"],
            ["resume (replay)", f"{resume_time:8.2f} s",
             f"{resumed.points_per_second:6.2f} pt/s"],
        ],
        header=["mode", "wall time", "throughput"],
    )
    cpus = os.cpu_count() or 1
    record_bench(RESULTS_PATH, {"sweep_campaign": {
        "points": serial.total,
        "workers": WORKERS,
        "cpu_count": cpus,
        "serial_seconds": round(serial_time, 4),
        "parallel_seconds": round(parallel_time, 4),
        "parallel_speedup": round(speedup, 2),
        "points_per_second_serial": round(serial.points_per_second, 3),
        "points_per_second_workers4": round(
            parallel.points_per_second, 3),
        "resume_latency_seconds": round(resume_time, 4),
        "resume_points_per_second": round(resumed.points_per_second, 3),
        "resume_solver_calls": resumed.solver_call_count,
    }})

    # Shape assertions: resume must crush cold, and the pool must not
    # lose badly to serial (single-core hosts only bound the overhead).
    assert resume_time < serial_time * 0.5
    if cpus >= 2:
        assert parallel_time < serial_time * 1.2
    else:
        assert parallel_time < serial_time * 1.6
