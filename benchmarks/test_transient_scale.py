"""Chip-scale transient economics: the sparse MNA path (PR 7).

The sparse backend exists for one reason: a dense MNA matrix stops
being *feasible* a few thousand unknowns in (10^5 squared doubles is
80 GB before the first flop), while an extracted clocktree's matrix
holds a handful of entries per row.  These benchmarks measure that
claim on constant-RLC H-tree netlists and record it into
``BENCH_transient.json`` at the repo root:

1. **Crossover curve** (CI): dense vs sparse wall time for a 100-step
   transient at ladder sizes spanning the ``auto`` cutoff; sparse must
   win by >= 2x at the largest CI size.
2. **Sparse throughput** (CI): steps/sec on a ~12.5k-unknown tree --
   far beyond where dense is sensible, cheap for sparse.
3. **Chip scale** (``-m slow``): a >= 10^5-unknown H-tree integrated
   200 steps in single-digit seconds.
4. **Dense frontier** (``-m slow``): at the largest size dense can
   still stomach, sparse beats it >= 20x.

The netlists come from the *real* extraction flow -- the segment RLC
hook is overridden with constant per-length values so no field solves
run and the benchmark times the circuit layer alone.
"""

import time
from pathlib import Path

import pytest
from conftest import record_bench, report

from repro.circuit.backend import DENSE_SIZE_CUTOFF
from repro.circuit.transient import transient_analysis
from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor, SegmentRLC
from repro.clocktree.htree import HTree
from repro.constants import GHz, fF, ps, um

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_transient.json"

#: 200 steps, the paper-style skew-simulation horizon.
CHIP_STEPS = 200


class ConstantRLCExtractor(ClocktreeRLCExtractor):
    """Extraction flow with fixed per-length RLC (no field solves).

    Values are in the ballpark of the paper's coplanar waveguide
    (25 ohm/mm, 0.5 nH/mm, 0.1 pF/mm) -- the netlist topology and
    matrix structure are real, only the table lookups are shorted out.
    """

    def segment_rlc_for(self, segment):
        mm = segment.length / 1e-3
        return SegmentRLC(
            length=segment.length,
            resistance=25.0 * mm,
            inductance=0.5e-9 * mm,
            capacitance=0.1e-12 * mm,
        )


def _assembled(levels: int, sections: int):
    """Assembled RLC netlist of a *levels*-deep H-tree."""
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    buffer = ClockBuffer(
        drive_resistance=15.0, input_capacitance=fF(30),
        supply=1.8, rise_time=ps(50),
    )
    htree = HTree.generate(
        levels=levels, root_length=um(4000), config=config,
        buffer=buffer, sink_capacitance=fF(50),
    )
    extractor = ConstantRLCExtractor(config, frequency=GHz(6.4))
    netlist = extractor.build_netlist(
        htree, include_inductance=True, sections=sections, lint=False,
    )
    return netlist.circuit.assemble()


def _time_transient(assembled, solver: str, steps: int) -> float:
    t0 = time.perf_counter()
    transient_analysis(
        assembled, t_stop=ps(1) * steps, dt=ps(1),
        diagnostics=False, solver=solver,
    )
    return time.perf_counter() - t0


def _record(update: dict) -> dict:
    return record_bench(RESULTS_PATH, update)


def test_sparse_vs_dense_crossover():
    """Dense vs sparse wall time across the auto-selection cutoff."""
    steps = 100
    rows, records = [], []
    for levels, sections in [(3, 4), (4, 8), (5, 8)]:
        assembled = _assembled(levels, sections)
        t_dense = _time_transient(assembled, "dense", steps)
        t_sparse = _time_transient(assembled, "sparse", steps)
        speedup = t_dense / t_sparse if t_sparse > 0 else float("inf")
        records.append({
            "unknowns": assembled.size,
            "nnz": assembled.stamps.nnz,
            "dense_seconds": round(t_dense, 4),
            "sparse_seconds": round(t_sparse, 4),
            "speedup": round(speedup, 2),
        })
        rows.append([
            str(assembled.size), f"{t_dense:.3f} s", f"{t_sparse:.3f} s",
            f"{speedup:.1f}x",
        ])
    report(
        f"dense vs sparse, {steps}-step transient "
        f"(auto cutoff at {DENSE_SIZE_CUTOFF} unknowns)",
        rows,
        header=["unknowns", "dense", "sparse", "sparse speedup"],
    )
    _record({"crossover": {
        "steps": steps,
        "points": records,
        "largest_speedup": records[-1]["speedup"],
    }})
    assert records[-1]["speedup"] >= 2.0, (
        f"sparse only {records[-1]['speedup']:.1f}x dense at "
        f"{records[-1]['unknowns']} unknowns"
    )


def test_sparse_throughput_ci_scale():
    """Sparse steps/sec on a tree already far beyond sensible dense."""
    assembled = _assembled(7, 16)
    seconds = _time_transient(assembled, "sparse", CHIP_STEPS)
    steps_per_second = CHIP_STEPS / seconds
    report(
        f"sparse transient at {assembled.size} unknowns",
        [
            ["unknowns", str(assembled.size)],
            ["structural nnz", str(assembled.stamps.nnz)],
            [f"{CHIP_STEPS} steps", f"{seconds:.3f} s"],
            ["throughput", f"{steps_per_second:.0f} steps/s"],
        ],
    )
    _record({"scale_ci": {
        "unknowns": assembled.size,
        "nnz": assembled.stamps.nnz,
        "steps": CHIP_STEPS,
        "seconds": round(seconds, 4),
        "steps_per_second": round(steps_per_second, 1),
    }})
    assert steps_per_second > 20.0, (
        f"sparse transient crawled: {steps_per_second:.1f} steps/s "
        f"at {assembled.size} unknowns"
    )


@pytest.mark.slow
def test_chip_scale_transient():
    """>= 10^5 unknowns, 200 steps, single-digit seconds via sparse."""
    assembled = _assembled(10, 16)
    assert assembled.size >= 100_000
    seconds = _time_transient(assembled, "sparse", CHIP_STEPS)
    steps_per_second = CHIP_STEPS / seconds
    report(
        f"chip-scale sparse transient ({assembled.size} unknowns)",
        [
            ["unknowns", str(assembled.size)],
            ["structural nnz", str(assembled.stamps.nnz)],
            [f"{CHIP_STEPS} steps", f"{seconds:.2f} s"],
            ["throughput", f"{steps_per_second:.0f} steps/s"],
        ],
    )
    _record({"chip": {
        "unknowns": assembled.size,
        "nnz": assembled.stamps.nnz,
        "steps": CHIP_STEPS,
        "seconds": round(seconds, 3),
        "steps_per_second": round(steps_per_second, 1),
    }})
    assert seconds < 30.0, (
        f"chip-scale transient took {seconds:.1f} s; the sparse path "
        f"must keep 10^5 unknowns in interactive territory"
    )


@pytest.mark.slow
def test_sparse_beats_dense_20x_at_dense_frontier():
    """At the largest dense-feasible size, sparse wins >= 20x."""
    assembled = _assembled(6, 16)  # ~6.2k unknowns: minutes of dense LU
    t_dense = _time_transient(assembled, "dense", CHIP_STEPS)
    t_sparse = _time_transient(assembled, "sparse", CHIP_STEPS)
    ratio = t_dense / t_sparse if t_sparse > 0 else float("inf")
    report(
        f"dense frontier ({assembled.size} unknowns, {CHIP_STEPS} steps)",
        [
            ["dense", f"{t_dense:.2f} s", "1.0x"],
            ["sparse", f"{t_sparse:.3f} s", f"{ratio:.0f}x"],
        ],
        header=["backend", "wall time", "speedup"],
    )
    _record({"dense_frontier": {
        "unknowns": assembled.size,
        "steps": CHIP_STEPS,
        "dense_seconds": round(t_dense, 3),
        "sparse_seconds": round(t_sparse, 4),
        "speedup": round(ratio, 1),
    }})
    assert ratio >= 20.0, (
        f"sparse only {ratio:.1f}x dense at {assembled.size} unknowns"
    )
