"""Sec. II: capacitive coupling is short-range, inductive is long-range.

"Note that the capacitive effect is a short-range effect ... The
inductive effect, however, is a long-range effect."  This is the
physical fact behind the paper's asymmetric reductions: capacitance
decomposes into 3-trace subproblems, inductance needs full pairwise
mutual tables.

Shape asserted: across a bus, the capacitive coupling collapses within
one neighbour while the inductive coupling coefficient decays only
logarithmically; in a transient crosstalk run the far-victim noise is
dominated by the mutual inductances.
"""

import numpy as np
from conftest import report, run_once

from repro.bus import BusRLCExtractor, crosstalk_analysis
from repro.constants import GHz, um
from repro.geometry.trace import TraceBlock
from repro.rc.capacitance import CapacitanceModel


def make_bus():
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(2)] * 9, spacings=[um(2)] * 8, length=um(2000),
        thickness=um(1),
    )
    extractor = BusRLCExtractor(
        frequency=GHz(6.4),
        capacitance_model=CapacitanceModel(height_below=um(2),
                                           neighbour_range=2),
    )
    return extractor, extractor.extract(block)


def test_coupling_range_matrices(benchmark):
    extractor, bus = run_once(benchmark, make_bus)
    centre = bus.names.index("T5")
    l = bus.inductance_matrix
    c = bus.capacitance_matrix

    rows = []
    for distance in range(1, 5):
        j = centre + distance
        k_l = bus.coupling_coefficient(centre, j)
        c_rel = -c[centre, j] / c[centre, centre]
        rows.append((f"{distance}", f"{k_l:.3f}", f"{c_rel:.4f}"))
    report(
        "Coupling vs neighbour distance (9-trace bus, from the centre)",
        header=("distance", "inductive k", "capacitive C_c/C_total"),
        rows=rows,
    )

    # capacitive coupling collapses fast (short-range): 2 traces away it
    # is already an order of magnitude below the adjacent value
    c_adj = -c[centre, centre + 1]
    c_far = -c[centre, centre + 3]
    assert c_far < 0.1 * c_adj
    # inductive coupling decays slowly (long-range): 3 traces away it is
    # still more than half the adjacent coefficient
    k_adj = bus.coupling_coefficient(centre, centre + 1)
    k_far = bus.coupling_coefficient(centre, centre + 3)
    assert k_far > 0.5 * k_adj


def test_far_victim_noise_needs_mutual_inductance(benchmark):
    def run():
        extractor, bus = make_bus()
        full = crosstalk_analysis(extractor, bus, aggressor="T5", sections=2)
        cap_only = crosstalk_analysis(extractor, bus, aggressor="T5",
                                      sections=2, include_mutual=False)
        return full, cap_only

    full, cap_only = run_once(benchmark, run)
    report(
        "Victim noise with vs without mutual inductance (aggressor T5)",
        header=("victim", "full RLC [mV]", "cap-only [mV]"),
        rows=[
            (victim,
             f"{full.noise_of(victim) * 1e3:.1f}",
             f"{cap_only.noise_of(victim) * 1e3:.1f}")
            for victim in sorted(full.victim_noise_peak)
        ],
    )

    # far victim (3 traces away): capacitive-only misses most of the noise
    far = "T8"
    assert cap_only.noise_of(far) < 0.5 * full.noise_of(far)
    # adjacent victim: capacitive coupling alone already injects a
    # comparable amount -- both mechanisms matter up close
    near = "T6"
    assert cap_only.noise_of(near) > 0.3 * full.noise_of(near)
