"""Ablation: single-significant-frequency extraction vs a wideband model.

The paper extracts R and L once, at 0.32/t_r.  A fast edge actually
spans a band of frequencies where R rises and L falls; a passive
synthesized ladder (repro.peec.wideband) reproduces the whole band.
This ablation quantifies how much waveform the single-frequency
simplification gives up -- and shows it is small for clock-like edges,
which is why the paper's choice works.
"""

import numpy as np
from conftest import report, run_once

from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.constants import GHz, to_nH, to_ps, um
from repro.core.frequency import significant_frequency
from repro.geometry.trace import TraceBlock
from repro.peec.loop import LoopProblem
from repro.peec.sweep import loop_frequency_sweep
from repro.peec.wideband import synthesize_ladder

RISE = 50e-12
SUPPLY = 1.8
C_LINE = 0.8e-12
C_LOAD = 30e-15
RS = 15.0


def build_and_run(stamp_series):
    """Simulate a driver -> series model -> C-loaded line."""
    circuit = Circuit()
    circuit.add_voltage_source(
        "V1", "src", "0", PulseSource(0, SUPPLY, rise=RISE, width=1.0)
    )
    circuit.add_resistor("Rs", "src", "a", RS)
    stamp_series(circuit, "a", "b")
    circuit.add_capacitor("Cline", "b", "0", C_LINE)
    circuit.add_capacitor("CL", "b", "0", C_LOAD)
    result = transient_analysis(circuit, t_stop=3e-9, dt=0.5e-12)
    wave = result.voltage("b")
    return (
        wave.threshold_crossing(SUPPLY / 2.0),
        wave.overshoot(reference=SUPPLY),
    )


def test_single_frequency_vs_wideband(benchmark):
    def run():
        block = TraceBlock.coplanar_waveguide(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            length=um(2000), thickness=um(2),
        )
        problem = LoopProblem(block, n_width=6, n_thickness=3, grading=1.5)
        sweep = loop_frequency_sweep(
            problem, np.logspace(7, np.log10(3e10), 10)
        )
        ladder = synthesize_ladder(sweep, n_branches=4)

        f_sig = significant_frequency(RISE)
        r_sig = sweep.resistance_at(f_sig)
        l_sig = sweep.inductance_at(f_sig)

        def stamp_single(circuit, a, b):
            circuit.add_resistor("Rseg", a, "mid_s", r_sig)
            circuit.add_inductor("Lseg", "mid_s", b, l_sig)

        def stamp_dc(circuit, a, b):
            circuit.add_resistor("Rseg", a, "mid_d", sweep.resistance[0])
            circuit.add_inductor("Lseg", "mid_d", b, sweep.inductance[0])

        def stamp_wide(circuit, a, b):
            ladder.stamp(circuit, a, b, prefix="wb")

        return {
            "wideband ladder": build_and_run(stamp_wide),
            "single f_sig": build_and_run(stamp_single),
            "single DC": build_and_run(stamp_dc),
        }, ladder.fit_error(sweep)

    results, fit_error = run_once(benchmark, run)
    reference_delay, reference_overshoot = results["wideband ladder"]
    report(
        f"Single-frequency vs wideband segment model (50 ps edge; "
        f"ladder fit error {fit_error * 100:.1f} %)",
        header=("model", "50% delay [ps]", "overshoot", "delay err"),
        rows=[
            (name, f"{to_ps(delay):.2f}", f"{ovs * 100:.1f} %",
             f"{abs(delay - reference_delay) / reference_delay * 100:.1f} %")
            for name, (delay, ovs) in results.items()
        ],
    )

    delay_sig, _ = results["single f_sig"]
    delay_dc, _ = results["single DC"]
    err_sig = abs(delay_sig - reference_delay) / reference_delay
    err_dc = abs(delay_dc - reference_delay) / reference_delay
    # the significant-frequency choice is a good one: its delay error vs
    # the full wideband model stays within a few percent ...
    assert err_sig < 0.05
    # ... and it is no worse than naive DC extraction
    assert err_sig <= err_dc + 0.01
