"""Extension: RLC-aware repeater insertion on table extraction.

The companion application of this inductance-modeling work (Cao et al.
2000, same group): RC analysis over-inserts repeaters on long lines
because it misses the time-of-flight floor that inductance imposes.
The table-based extractor makes the whole stage-count sweep a handful
of spline lookups.

Shape asserted: repeaters help long lines under both models, the RLC
optimum needs no more stages than the RC optimum, and the RLC delay
curve sits above the RC curve (the flight-time floor).
"""

from conftest import report, run_once

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.repeaters import optimal_repeaters
from repro.constants import GHz, fF, ps, to_ps, um
from repro.core.extraction import TableBasedExtractor

LINE_LENGTH = um(10000)


def test_repeater_insertion_rc_vs_rlc(benchmark):
    def run():
        config = CoplanarWaveguideConfig(
            signal_width=um(10), ground_width=um(5), spacing=um(1),
            thickness=um(2), height_below=um(2),
        )
        tables = TableBasedExtractor.characterize(
            config, frequency=GHz(6.4),
            widths=[um(5), um(10), um(15)],
            lengths=[um(250), um(1000), um(4000), um(10000)],
        )
        extractor = tables.as_clocktree_extractor()
        buffer = ClockBuffer(drive_resistance=40.0, input_capacitance=fF(30),
                             supply=1.8, rise_time=ps(50))
        rc = optimal_repeaters(extractor, LINE_LENGTH, buffer,
                               include_inductance=False, max_count=10)
        rlc = optimal_repeaters(extractor, LINE_LENGTH, buffer,
                                include_inductance=True, max_count=10)
        return rc, rlc

    rc, rlc = run_once(benchmark, run)
    report(
        "Repeater insertion on a 10 mm guarded line (per stage-count delay)",
        header=("stages", "RC delay [ps]", "RLC delay [ps]"),
        rows=[
            (f"{c_rc.count}", f"{to_ps(c_rc.total_delay):.1f}",
             f"{to_ps(c_rlc.total_delay):.1f}")
            for c_rc, c_rlc in zip(rc.candidates, rlc.candidates)
        ],
    )
    print(f"  RC optimum: {rc.optimal_count} stages "
          f"({to_ps(rc.best.total_delay):.1f} ps); "
          f"RLC optimum: {rlc.optimal_count} stages "
          f"({to_ps(rlc.best.total_delay):.1f} ps)")

    assert rc.optimal_count > 1
    # the flight-time floor: inductance never helps and never wants more
    # repeaters than the RC analysis suggests
    assert rlc.optimal_count <= rc.optimal_count
    assert rlc.best.total_delay >= rc.best.total_delay
    # both curves flatten: beyond the optimum, extra stages buy nothing
    assert rc.delay_of(10) >= rc.best.total_delay
