"""Closed-form on-chip capacitance models and the 3-trace decomposition.

The paper treats capacitance as a short-range effect: for any trace only
the couplings to its two nearest neighbours and to the plane/orthogonal
layer below matter, so the n-trace capacitance problem decomposes into
3-trace subproblems (Sec. II).  The closed forms here follow the classic
Sakurai-Tamaru fits (T. Sakurai, K. Tamaru, "Simple formulas for two- and
three-dimensional capacitances", IEEE T-ED 1983), which are accurate to a
few percent over on-chip aspect ratios and are validated in the test
suite against the 2-D finite-difference solver in
:mod:`repro.rc.fieldsolver2d`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import EPS_0, EPS_R_SIO2
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock


def ground_capacitance(
    width: float,
    thickness: float,
    height: float,
    length: float,
    eps_r: float = EPS_R_SIO2,
) -> float:
    """Capacitance of an isolated line to a ground plane below [F].

    Sakurai-Tamaru single-line fit (area + fringe):

        C / (eps l) = w/h + 0.77 + 1.06 (w/h)^0.25 + 1.06 (t/h)^0.5
    """
    _require_positive(width=width, thickness=thickness, height=height, length=length)
    eps = EPS_0 * eps_r
    w_h = width / height
    t_h = thickness / height
    per_length = w_h + 0.77 + 1.06 * w_h ** 0.25 + 1.06 * t_h ** 0.5
    return eps * length * per_length


def coupling_capacitance(
    width: float,
    thickness: float,
    height: float,
    spacing: float,
    length: float,
    eps_r: float = EPS_R_SIO2,
) -> float:
    """Line-to-line coupling capacitance of two parallel lines [F].

    Sakurai-Tamaru coupled-line fit for the mutual term between two equal
    lines over a ground plane:

        C21 / (eps l) = (0.03 w/h + 0.83 t/h - 0.07 (t/h)^0.222)
                        * (s/h)^-1.34
    """
    _require_positive(
        width=width, thickness=thickness, height=height,
        spacing=spacing, length=length,
    )
    eps = EPS_0 * eps_r
    w_h = width / height
    t_h = thickness / height
    s_h = spacing / height
    per_length = (0.03 * w_h + 0.83 * t_h - 0.07 * t_h ** 0.222) * s_h ** -1.34
    return max(per_length, 0.0) * eps * length


def shielded_ground_capacitance(
    width: float,
    thickness: float,
    height: float,
    spacing: float,
    length: float,
    eps_r: float = EPS_R_SIO2,
) -> float:
    """Ground capacitance of a line flanked by neighbours at *spacing* [F].

    Neighbours steal fringe field; Sakurai's three-line correction reduces
    the isolated-line fringe as the neighbours close in:

        C / (eps l) = w/h + 0.77 + 1.06 (w/h)^0.25 + 1.06 (t/h)^0.5
                      - 2 * fringe_shield(s/h)

    modeled with an exponential shielding factor that vanishes for
    s >> h and removes most of the lateral fringe for s << h.
    """
    isolated = ground_capacitance(width, thickness, height, length, eps_r)
    _require_positive(spacing=spacing)
    eps = EPS_0 * eps_r
    # Lateral fringe component of the isolated line (everything except the
    # parallel-plate term and the top fringe).
    w_h = width / height
    lateral_fringe = eps * length * (0.77 + 1.06 * w_h ** 0.25) * 0.5
    shielding = np.exp(-1.5 * spacing / height)
    return isolated - 2.0 * lateral_fringe * float(shielding)


@dataclass
class CapacitanceModel:
    """Capacitance extraction settings for a routing environment.

    Parameters
    ----------
    height_below:
        Dielectric distance from trace bottom to the reference below
        (local ground plane, or the orthogonal signal layer treated as an
        AC ground in the paper's Fig. 1 setup) [m].
    eps_r:
        Relative permittivity of the dielectric.
    neighbour_range:
        How many neighbours on each side couple capacitively; the paper's
        short-range argument uses 1 (adjacent only).
    """

    height_below: float
    eps_r: float = EPS_R_SIO2
    neighbour_range: int = 1

    def __post_init__(self) -> None:
        if self.height_below <= 0.0:
            raise GeometryError("height_below must be positive")
        if self.neighbour_range < 1:
            raise GeometryError("neighbour_range must be >= 1")


def block_capacitance_matrix(
    block: TraceBlock,
    model: CapacitanceModel,
) -> np.ndarray:
    """Maxwell capacitance matrix of a trace block [F].

    Implements the paper's short-range decomposition: every trace gets a
    ground capacitance (shielded by its nearest neighbours) plus coupling
    capacitances to neighbours within ``model.neighbour_range``.  The
    result is the standard Maxwell form: ``C[i][i]`` is the total
    capacitance of trace i, ``C[i][j] = -C_coupling(i, j)``.
    """
    n = len(block)
    matrix = np.zeros((n, n))
    traces = block.traces
    for i, trace in enumerate(traces):
        neighbour_spacings = []
        if i > 0:
            neighbour_spacings.append(block.spacing(i - 1))
        if i < n - 1:
            neighbour_spacings.append(block.spacing(i))
        if neighbour_spacings:
            spacing = min(neighbour_spacings)
            cg = shielded_ground_capacitance(
                trace.width, trace.thickness, model.height_below,
                spacing, trace.length, model.eps_r,
            )
        else:
            cg = ground_capacitance(
                trace.width, trace.thickness, model.height_below,
                trace.length, model.eps_r,
            )
        matrix[i, i] += cg
        for j in range(i + 1, min(i + 1 + model.neighbour_range, n)):
            spacing = traces[i].edge_to_edge_spacing(traces[j])
            width_pair = min(traces[i].width, traces[j].width)
            cc = coupling_capacitance(
                width_pair, trace.thickness, model.height_below,
                spacing, trace.length, model.eps_r,
            )
            matrix[i, j] -= cc
            matrix[j, i] -= cc
            matrix[i, i] += cc
            matrix[j, j] += cc
    return matrix


def signal_capacitances(
    block: TraceBlock,
    model: CapacitanceModel,
    signal_index: Optional[int] = None,
):
    """Ground and coupling capacitance seen by one signal trace.

    Returns ``(c_ground, c_couplings)`` where *c_ground* lumps the plane
    capacitance plus couplings to AC-ground traces (the paper treats
    those as perfect grounded capacitors), and *c_couplings* maps the
    index of each non-ground neighbour to its coupling capacitance [F].
    """
    if signal_index is None:
        signals = [i for i, t in enumerate(block.traces) if not t.is_ground]
        if len(signals) != 1:
            raise GeometryError("specify signal_index for multi-signal blocks")
        signal_index = signals[0]
    matrix = block_capacitance_matrix(block, model)
    n = len(block)
    c_ground = matrix[signal_index, signal_index]
    couplings = {}
    for j in range(n):
        if j == signal_index:
            continue
        c_mutual = -matrix[signal_index, j]
        if c_mutual <= 0.0:
            continue
        if block.traces[j].is_ground:
            # Already counted inside the diagonal total; the whole diagonal
            # term acts as grounded capacitance for netlist purposes.
            continue
        couplings[j] = c_mutual
        c_ground -= c_mutual
    return c_ground, couplings


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if not (value > 0.0):
            raise GeometryError(f"{name} must be positive, got {value!r}")
