"""2-D finite-difference Laplace solver for per-unit-length capacitance.

This is the numerical capacitance extractor of the paper's Sec. II: long
uniform traces reduce to a 2-D cross-section problem, and the 3-trace
subproblems the short-range decomposition produces are solved here
exactly (to grid resolution).  The solver computes the Maxwell
capacitance matrix by setting each conductor to 1 V in turn and
integrating induced charge.

The grid is boundary-fitted: every conductor edge coincides with a grid
line, so refinement converges smoothly instead of jittering with
rasterization error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.constants import EPS_0, EPS_R_SIO2
from repro.errors import GeometryError, SolverError
from repro.telemetry import FIELD_SOLVE_2D, get_registry, span
from repro.geometry.trace import TraceBlock


@dataclass(frozen=True)
class ConductorRect:
    """A conductor cross-section rectangle in the (y, z) plane [m]."""

    name: str
    y0: float
    y1: float
    z0: float
    z1: float

    def __post_init__(self) -> None:
        if self.y1 <= self.y0 or self.z1 <= self.z0:
            raise GeometryError(f"conductor {self.name!r} has non-positive extent")


@dataclass
class CrossSection2D:
    """A 2-D dielectric window with embedded conductors.

    The window spans ``[0, width] x [0, height]``; the bottom edge is a
    grounded plane (Dirichlet 0), the remaining edges approximate open
    space with Dirichlet 0 as well, so leave generous margins around the
    conductors.
    """

    width: float
    height: float
    conductors: List[ConductorRect] = field(default_factory=list)
    eps_r: float = EPS_R_SIO2

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise GeometryError("window extents must be positive")
        names = [c.name for c in self.conductors]
        if len(set(names)) != len(names):
            raise GeometryError("conductor names must be unique")
        for cond in self.conductors:
            if cond.y0 < 0 or cond.y1 > self.width or cond.z0 < 0 or cond.z1 > self.height:
                raise GeometryError(f"conductor {cond.name!r} outside the window")

    @classmethod
    def from_block(
        cls,
        block: TraceBlock,
        plane_gap: float,
        margin_factor: float = 5.0,
        eps_r: float = EPS_R_SIO2,
    ) -> "CrossSection2D":
        """Build a cross-section from a trace block over a ground plane.

        The block's traces sit *plane_gap* above the grounded bottom edge;
        lateral and top margins scale with the block size so the Dirichlet
        walls do not disturb the fields.
        """
        if plane_gap <= 0.0:
            raise GeometryError("plane_gap must be positive")
        traces = block.traces
        thickness = traces[0].thickness
        margin = margin_factor * max(block.total_width, plane_gap + thickness)
        y_shift = margin - traces[0].y_offset
        conductors = [
            ConductorRect(
                name=t.name or f"T{i + 1}",
                y0=t.y_offset + y_shift,
                y1=t.y_offset + t.width + y_shift,
                z0=plane_gap,
                z1=plane_gap + t.thickness,
            )
            for i, t in enumerate(traces)
        ]
        return cls(
            width=block.total_width + 2.0 * margin,
            height=plane_gap + thickness + margin,
            conductors=conductors,
            eps_r=eps_r,
        )


def _fitted_axis(total: float, edges: List[float], target_points: int) -> np.ndarray:
    """Grid coordinates over [0, total] including every edge exactly.

    Each interval between consecutive edges is subdivided close to the
    global target spacing, so conductor boundaries always land on grid
    lines.
    """
    anchors = sorted({0.0, total, *(e for e in edges if 0.0 < e < total)})
    spacing = total / max(target_points - 1, 1)
    coords: List[float] = [anchors[0]]
    for lo, hi in zip(anchors, anchors[1:]):
        n_sub = max(1, int(round((hi - lo) / spacing)))
        step = (hi - lo) / n_sub
        coords.extend(lo + step * (k + 1) for k in range(n_sub))
    return np.array(coords)


class FieldSolver2D:
    """Finite-difference Laplace solver over a :class:`CrossSection2D`.

    Parameters
    ----------
    cross_section:
        The geometry to solve.
    nx, nz:
        Target grid resolution along width and height (the fitted grid
        may differ slightly).  Cost is roughly ``O((nx nz)^1.5)`` per
        conductor; 160 x 120 runs in a fraction of a second.
    """

    def __init__(self, cross_section: CrossSection2D, nx: int = 160, nz: int = 120):
        if nx < 8 or nz < 8:
            raise SolverError("grid must be at least 8 x 8")
        if not cross_section.conductors:
            raise GeometryError("cross-section has no conductors")
        self.cs = cross_section
        y_edges = [e for c in cross_section.conductors for e in (c.y0, c.y1)]
        z_edges = [e for c in cross_section.conductors for e in (c.z0, c.z1)]
        self.ys = _fitted_axis(cross_section.width, y_edges, nx)
        self.zs = _fitted_axis(cross_section.height, z_edges, nz)
        self.nx = self.ys.size
        self.nz = self.zs.size
        self._labels = self._rasterize()
        self._check_rasterization()

    def _rasterize(self) -> np.ndarray:
        """Label grid nodes: -1 free, >= 0 conductor index."""
        tol_y = 1e-9 * max(self.cs.width, 1e-12)
        tol_z = 1e-9 * max(self.cs.height, 1e-12)
        labels = -np.ones((self.nz, self.nx), dtype=int)
        for ci, cond in enumerate(self.cs.conductors):
            y_mask = (self.ys >= cond.y0 - tol_y) & (self.ys <= cond.y1 + tol_y)
            z_mask = (self.zs >= cond.z0 - tol_z) & (self.zs <= cond.z1 + tol_z)
            labels[np.ix_(z_mask, y_mask)] = ci
        return labels

    def _check_rasterization(self) -> None:
        present = set(np.unique(self._labels)) - {-1}
        missing = [
            cond.name
            for ci, cond in enumerate(self.cs.conductors)
            if ci not in present
        ]
        if missing:
            raise SolverError(
                f"grid too coarse: conductors {missing} rasterized to "
                "zero cells; increase nx/nz"
            )

    def solve_potential(self, drive_index: int) -> np.ndarray:
        """Potential field with conductor *drive_index* at 1 V, rest 0 V."""
        nz, nx = self.nz, self.nx
        labels = self._labels
        fixed = np.zeros((nz, nx))
        fixed_mask = np.zeros((nz, nx), dtype=bool)
        fixed_mask[0, :] = True          # grounded bottom plane
        fixed_mask[-1, :] = True         # open-space approximation
        fixed_mask[:, 0] = True
        fixed_mask[:, -1] = True
        fixed_mask |= labels >= 0
        fixed[labels == drive_index] = 1.0

        free_idx = -np.ones((nz, nx), dtype=int)
        free_cells = np.argwhere(~fixed_mask)
        for k, (iz, ix) in enumerate(free_cells):
            free_idx[iz, ix] = k
        n_free = len(free_cells)
        if n_free == 0:
            raise SolverError("no free cells: conductors fill the window")

        ys, zs = self.ys, self.zs
        rows, cols, vals = [], [], []
        rhs = np.zeros(n_free)
        for k, (iz, ix) in enumerate(free_cells):
            h_w = ys[ix] - ys[ix - 1]
            h_e = ys[ix + 1] - ys[ix]
            h_s = zs[iz] - zs[iz - 1]
            h_n = zs[iz + 1] - zs[iz]
            coeffs = (
                (iz, ix - 1, 2.0 / (h_w * (h_w + h_e))),
                (iz, ix + 1, 2.0 / (h_e * (h_w + h_e))),
                (iz - 1, ix, 2.0 / (h_s * (h_s + h_n))),
                (iz + 1, ix, 2.0 / (h_n * (h_s + h_n))),
            )
            diag = 0.0
            for jz, jx, coeff in coeffs:
                diag -= coeff
                if fixed_mask[jz, jx]:
                    rhs[k] -= coeff * fixed[jz, jx]
                else:
                    rows.append(k)
                    cols.append(free_idx[jz, jx])
                    vals.append(coeff)
            rows.append(k)
            cols.append(k)
            vals.append(diag)
        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n_free, n_free))
        solution = spsolve(matrix, rhs)

        potential = fixed.copy()
        potential[~fixed_mask] = solution
        return potential

    def _tangential_weights(self, coords: np.ndarray) -> np.ndarray:
        """Half-cell widths each grid line controls along an axis."""
        weights = np.empty_like(coords)
        weights[0] = (coords[1] - coords[0]) / 2.0
        weights[-1] = (coords[-1] - coords[-2]) / 2.0
        weights[1:-1] = (coords[2:] - coords[:-2]) / 2.0
        return weights

    def _conductor_charge(self, potential: np.ndarray, index: int) -> float:
        """Induced charge per unit length on conductor *index* [C/m]."""
        labels = self._labels
        eps = EPS_0 * self.cs.eps_r
        ys, zs = self.ys, self.zs
        w_y = self._tangential_weights(ys)
        w_z = self._tangential_weights(zs)
        mask = labels == index
        charge = 0.0
        inside_cells = np.argwhere(mask)
        for iz, ix in inside_cells:
            for jz, jx in ((iz, ix + 1), (iz, ix - 1), (iz + 1, ix), (iz - 1, ix)):
                if not (0 <= jz < self.nz and 0 <= jx < self.nx):
                    continue
                if labels[jz, jx] == index:
                    continue
                if jz == iz:
                    h_normal = abs(ys[jx] - ys[ix])
                    tangent = w_z[iz]
                else:
                    h_normal = abs(zs[jz] - zs[iz])
                    tangent = w_y[ix]
                charge += eps * tangent * (
                    potential[iz, ix] - potential[jz, jx]
                ) / h_normal
        return charge

    def capacitance_matrix(self) -> np.ndarray:
        """Per-unit-length Maxwell capacitance matrix [F/m].

        ``C[i][j]`` is the charge on conductor j with conductor i driven
        to 1 V and every other conductor grounded; diagonals are positive,
        off-diagonals negative.
        """
        n = len(self.cs.conductors)
        matrix = np.zeros((n, n))
        get_registry().inc(FIELD_SOLVE_2D)
        with span("rc.field_solve_2d", conductors=n):
            for i in range(n):
                potential = self.solve_potential(i)
                for j in range(n):
                    matrix[i, j] = self._conductor_charge(potential, j)
        # Enforce the symmetry the continuous problem guarantees.
        return 0.5 * (matrix + matrix.T)
