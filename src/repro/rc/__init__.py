"""Resistance and capacitance extraction substrate.

Resistance is analytic (sheet resistance plus a skin-effect correction at
the significant frequency), capacitance comes from closed-form
area/fringe/coupling models validated against a 2-D finite-difference
Laplace field solver, and :mod:`repro.rc.statistical` implements the
statistically-based worst-case RC generation of the paper's ref [4].
"""

from repro.rc.capacitance import (
    CapacitanceModel,
    block_capacitance_matrix,
    coupling_capacitance,
    ground_capacitance,
)
from repro.rc.fieldsolver2d import CrossSection2D, FieldSolver2D
from repro.rc.resistance import ac_resistance, dc_resistance, trace_resistance
from repro.rc.statistical import (
    ProcessCorners,
    ProcessVariation,
    StatisticalRC,
    monte_carlo_rc,
)

__all__ = [
    "CapacitanceModel",
    "block_capacitance_matrix",
    "coupling_capacitance",
    "ground_capacitance",
    "CrossSection2D",
    "FieldSolver2D",
    "ac_resistance",
    "dc_resistance",
    "trace_resistance",
    "ProcessCorners",
    "ProcessVariation",
    "StatisticalRC",
    "monte_carlo_rc",
]
