"""Analytic trace resistance, with skin-effect correction.

The paper computes resistance analytically (ref [4]); at the significant
frequency the current retreats to a skin-depth-deep shell of the
cross-section, which this module models with the standard
effective-area correction.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import RHO_CU
from repro.errors import GeometryError
from repro.geometry.trace import Trace
from repro.peec.analytic import skin_depth


def dc_resistance(
    length: float,
    width: float,
    thickness: float,
    resistivity: float = RHO_CU,
) -> float:
    """DC resistance of a rectangular trace [ohm]: rho l / (w t)."""
    if min(length, width, thickness, resistivity) <= 0.0:
        raise GeometryError("all resistance arguments must be positive")
    return resistivity * length / (width * thickness)


def effective_conduction_area(
    width: float,
    thickness: float,
    delta: float,
) -> float:
    """Cross-section area conducting at skin depth *delta* [m^2].

    Current occupies a shell of depth *delta* around the perimeter; when
    the conductor is thinner than two skin depths in either dimension the
    full area conducts.
    """
    if delta <= 0.0:
        raise GeometryError("skin depth must be positive")
    core_w = max(width - 2.0 * delta, 0.0)
    core_t = max(thickness - 2.0 * delta, 0.0)
    return width * thickness - core_w * core_t


def ac_resistance(
    length: float,
    width: float,
    thickness: float,
    frequency: float,
    resistivity: float = RHO_CU,
) -> float:
    """Skin-effect-corrected resistance at *frequency* [ohm].

    Reduces to :func:`dc_resistance` when the skin depth exceeds half the
    smaller cross-section dimension.
    """
    if frequency < 0.0:
        raise GeometryError("frequency must be non-negative")
    if frequency == 0.0:
        return dc_resistance(length, width, thickness, resistivity)
    delta = skin_depth(resistivity, frequency)
    area = effective_conduction_area(width, thickness, delta)
    return resistivity * length / area


def trace_resistance(
    trace: Trace,
    resistivity: float = RHO_CU,
    frequency: Optional[float] = None,
) -> float:
    """Resistance of a :class:`~repro.geometry.trace.Trace` [ohm].

    With *frequency* given, applies the skin-effect correction.
    """
    if frequency is None or frequency == 0.0:
        return dc_resistance(trace.length, trace.width, trace.thickness, resistivity)
    return ac_resistance(
        trace.length, trace.width, trace.thickness, frequency, resistivity
    )
