"""Bus RLC extraction: the n-trace block flow of Sec. II.

"When the block size is large, it models the bus structure with outside
ground traces that can be used for shielding only or for shielding and
power supply at the same time."  The Foundations reduce the n-trace
inductance problem to 1-/2-trace subproblems, so a full coupled RLC bus
netlist assembles from table (or closed-form) lookups: partial self L
per trace, partial mutual L per pair, short-range Maxwell capacitance,
analytic resistance.  The PEEC convention applies: partial inductances
go into the netlist and the circuit simulator determines the return
path.

:mod:`repro.bus.crosstalk` drives an aggressor and measures victim
noise -- demonstrating the paper's point that capacitive coupling is
short-range while inductive coupling is long-range.
"""

from repro.bus.extractor import BusRLC, BusRLCExtractor
from repro.bus.crosstalk import (
    CrosstalkResult,
    SwitchingDelayResult,
    crosstalk_analysis,
    switching_delay_analysis,
)

__all__ = [
    "BusRLC",
    "BusRLCExtractor",
    "CrosstalkResult",
    "crosstalk_analysis",
    "SwitchingDelayResult",
    "switching_delay_analysis",
]
