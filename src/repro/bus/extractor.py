"""Coupled RLC extraction and netlist formulation for bus blocks.

The extraction path is precisely the paper's reduction: every self
partial inductance comes from a (width, length) lookup or the exact
1-trace closed form, every mutual from a (w1, w2, spacing, length)
lookup or the exact 2-trace closed form -- never from an n-trace solve.
The resulting netlist carries all traces (signals *and* shield/ground
traces) as coupled R-L ladders so the simulator chooses the return path,
exactly as Sec. II prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import Circuit
from repro.constants import RHO_CU
from repro.errors import GeometryError, TableError
from repro.geometry.trace import TraceBlock
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance
from repro.rc.capacitance import CapacitanceModel, block_capacitance_matrix
from repro.rc.resistance import ac_resistance
from repro.tables.lookup import ExtractionTable


@dataclass
class BusRLC:
    """Extracted electrical model of an n-trace bus block."""

    block: TraceBlock
    resistances: np.ndarray
    inductance_matrix: np.ndarray
    capacitance_matrix: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.block)
        if self.resistances.shape != (n,):
            raise GeometryError("resistance vector shape mismatch")
        if self.inductance_matrix.shape != (n, n):
            raise GeometryError("inductance matrix shape mismatch")
        if self.capacitance_matrix.shape != (n, n):
            raise GeometryError("capacitance matrix shape mismatch")

    @property
    def names(self) -> List[str]:
        """Trace names in block order."""
        return [t.name for t in self.block.traces]

    def coupling_coefficient(self, i: int, j: int) -> float:
        """Inductive coupling coefficient k between traces i and j."""
        l = self.inductance_matrix
        return float(l[i, j] / np.sqrt(l[i, i] * l[j, j]))


@dataclass
class BusNetlist:
    """A formulated coupled bus circuit with its measurement points."""

    circuit: Circuit
    input_nodes: Dict[str, str]
    output_nodes: Dict[str, str]


class BusRLCExtractor:
    """Table-based coupled RLC extraction for bus blocks.

    Parameters
    ----------
    frequency:
        Significant frequency for the resistance skin correction.
    capacitance_model:
        Closed-form capacitance environment (height to the reference
        plane below, permittivity, neighbour range).
    self_table / mutual_table:
        Optional partial-inductance tables from
        :class:`~repro.tables.builder.PartialInductanceTableBuilder`;
        without them the exact closed forms are evaluated directly
        (which *is* the 1-/2-trace numerical extraction).
    resistivity:
        Trace metal resistivity.
    """

    def __init__(
        self,
        frequency: float,
        capacitance_model: CapacitanceModel,
        self_table: Optional[ExtractionTable] = None,
        mutual_table: Optional[ExtractionTable] = None,
        cap_ground_table: Optional[ExtractionTable] = None,
        cap_coupling_table: Optional[ExtractionTable] = None,
        resistivity: float = RHO_CU,
    ):
        if frequency <= 0.0:
            raise GeometryError("frequency must be positive")
        if (cap_ground_table is None) != (cap_coupling_table is None):
            raise TableError(
                "provide both FD capacitance tables (ground + coupling) "
                "or neither"
            )
        self.frequency = frequency
        self.capacitance_model = capacitance_model
        self.self_table = self_table
        self.mutual_table = mutual_table
        self.cap_ground_table = cap_ground_table
        self.cap_coupling_table = cap_coupling_table
        self.resistivity = resistivity

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def _self_inductance(self, trace) -> float:
        if self.self_table is not None:
            return self.self_table.lookup(width=trace.width, length=trace.length)
        return bar_self_inductance(trace.to_bar())

    def _mutual_inductance(self, trace_a, trace_b) -> float:
        if self.mutual_table is not None:
            return self.mutual_table.lookup(
                width1=trace_a.width,
                width2=trace_b.width,
                spacing=trace_a.edge_to_edge_spacing(trace_b),
                length=trace_a.length,
            )
        return bar_mutual_inductance(trace_a.to_bar(), trace_b.to_bar())

    def extract(self, block: TraceBlock) -> BusRLC:
        """Extract R vector, partial-L matrix and Maxwell-C matrix."""
        n = len(block)
        resistances = np.array([
            ac_resistance(t.length, t.width, t.thickness,
                          self.frequency, self.resistivity)
            for t in block.traces
        ])
        inductance = np.zeros((n, n))
        for i, trace in enumerate(block.traces):
            inductance[i, i] = self._self_inductance(trace)
        for i in range(n):
            for j in range(i + 1, n):
                m = self._mutual_inductance(block.traces[i], block.traces[j])
                inductance[i, j] = m
                inductance[j, i] = m
        capacitance = self._capacitance_matrix(block)
        return BusRLC(
            block=block,
            resistances=resistances,
            inductance_matrix=inductance,
            capacitance_matrix=capacitance,
        )

    def _capacitance_matrix(self, block: TraceBlock) -> np.ndarray:
        """Maxwell C matrix: FD 3-trace tables when given, else closed forms."""
        if self.cap_ground_table is None:
            return block_capacitance_matrix(block, self.capacitance_model)
        n = len(block)
        matrix = np.zeros((n, n))
        traces = block.traces
        for i, trace in enumerate(traces):
            spacings = []
            if i > 0:
                spacings.append(block.spacing(i - 1))
            if i < n - 1:
                spacings.append(block.spacing(i))
            spacing = min(spacings) if spacings else trace.width
            matrix[i, i] += (
                self.cap_ground_table.lookup(width=trace.width, spacing=spacing)
                * trace.length
            )
        for i in range(n - 1):
            spacing = block.spacing(i)
            width = min(traces[i].width, traces[i + 1].width)
            coupling = (
                self.cap_coupling_table.lookup(width=width, spacing=spacing)
                * traces[i].length
            )
            matrix[i, i + 1] -= coupling
            matrix[i + 1, i] -= coupling
            matrix[i, i] += coupling
            matrix[i + 1, i + 1] += coupling
        return matrix

    # ------------------------------------------------------------------
    # netlist formulation
    # ------------------------------------------------------------------
    def build_netlist(
        self,
        bus: BusRLC,
        sections: int = 3,
        include_inductance: bool = True,
        include_mutual: bool = True,
    ) -> BusNetlist:
        """Formulate the coupled ladder netlist of a bus block.

        Every trace -- including AC-ground shields -- becomes an R-L
        ladder; shields tie to node 0 at both ends so the simulator can
        route return current through them (the PEEC convention).
        Matching sections of different traces couple through mutual
        inductances ``M_ij / sections``; capacitances split per section
        (ground portion to node 0, coupling portions between traces).
        """
        if sections < 1:
            raise GeometryError("sections must be >= 1")
        block = bus.block
        n = len(block)
        circuit = Circuit("bus")
        names = bus.names

        def node(i: int, k: int) -> str:
            trace = block.traces[i]
            if k == 0:
                return "0" if trace.is_ground else f"in_{names[i]}"
            if k == sections:
                return "0" if trace.is_ground else f"out_{names[i]}"
            return f"{names[i]}_n{k}"

        # ladders with per-section series R (+ L)
        inductor_names: Dict[Tuple[int, int], str] = {}
        for i in range(n):
            r_per = bus.resistances[i] / sections
            l_per = bus.inductance_matrix[i, i] / sections
            for k in range(sections):
                start, end = node(i, k), node(i, k + 1)
                if include_inductance:
                    mid = f"{names[i]}_m{k}"
                    circuit.add_resistor(f"R_{names[i]}_{k}", start, mid, r_per)
                    name = f"L_{names[i]}_{k}"
                    circuit.add_inductor(name, mid, end, l_per)
                    inductor_names[(i, k)] = name
                else:
                    circuit.add_resistor(f"R_{names[i]}_{k}", start, end, r_per)

        # mutual coupling between matching sections
        if include_inductance and include_mutual:
            for i in range(n):
                for j in range(i + 1, n):
                    m_per = bus.inductance_matrix[i, j] / sections
                    if m_per == 0.0:
                        continue
                    for k in range(sections):
                        circuit.add_mutual(
                            f"K_{names[i]}_{names[j]}_{k}",
                            inductor_names[(i, k)],
                            inductor_names[(j, k)],
                            mutual=m_per,
                        )

        # capacitance: Maxwell matrix split over section boundaries
        c = bus.capacitance_matrix
        boundary_weights = [0.5] + [1.0] * (sections - 1) + [0.5]
        for i in range(n):
            c_ground = c[i, i] + sum(c[i, j] for j in range(n) if j != i)
            for k, weight in enumerate(boundary_weights):
                value = c_ground * weight / sections
                n_i = node(i, k)
                if n_i == "0" or value <= 0.0:
                    continue
                circuit.add_capacitor(f"Cg_{names[i]}_{k}", n_i, "0", value)
            for j in range(i + 1, n):
                c_mutual = -c[i, j]
                if c_mutual <= 0.0:
                    continue
                for k, weight in enumerate(boundary_weights):
                    n_i, n_j = node(i, k), node(j, k)
                    if n_i == n_j:
                        continue
                    name = f"Cc_{names[i]}_{names[j]}_{k}"
                    if n_j == "0" or n_i == "0":
                        top = n_i if n_j == "0" else n_j
                        circuit.add_capacitor(
                            name, top, "0", c_mutual * weight / sections
                        )
                    else:
                        circuit.add_capacitor(
                            name, n_i, n_j, c_mutual * weight / sections
                        )

        input_nodes = {
            names[i]: node(i, 0)
            for i in range(n) if not block.traces[i].is_ground
        }
        output_nodes = {
            names[i]: node(i, sections)
            for i in range(n) if not block.traces[i].is_ground
        }
        return BusNetlist(
            circuit=circuit,
            input_nodes=input_nodes,
            output_nodes=output_nodes,
        )
