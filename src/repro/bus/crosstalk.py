"""Aggressor-victim crosstalk on extracted bus netlists.

The paper distinguishes the two coupling mechanisms: "the capacitive
effect is a short-range effect ... The inductive effect, however, is a
long-range effect."  This analysis drives one aggressor trace with a
fast edge, terminates the victims, and measures the induced noise --
with the option to disable the mutual-inductance elements so the two
mechanisms can be separated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.bus.extractor import BusRLC, BusRLCExtractor
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.circuit.waveform import Waveform
from repro.errors import CircuitError


@dataclass
class CrosstalkResult:
    """Victim noise metrics for one aggressor switching event."""

    aggressor: str
    victim_noise_peak: Dict[str, float]
    victim_waveforms: Dict[str, Waveform] = field(repr=False, default_factory=dict)

    def noise_of(self, victim: str) -> float:
        """Peak |noise| at a victim's far end [V]."""
        try:
            return self.victim_noise_peak[victim]
        except KeyError:
            raise CircuitError(f"no victim named {victim!r}") from None

    @property
    def worst_victim(self) -> str:
        """The victim with the largest induced noise."""
        return max(self.victim_noise_peak, key=self.victim_noise_peak.get)


def crosstalk_analysis(
    extractor: BusRLCExtractor,
    bus: BusRLC,
    aggressor: str,
    drive_resistance: float = 25.0,
    termination: float = 50.0,
    load_capacitance: float = 20e-15,
    supply: float = 1.8,
    rise_time: float = 50e-12,
    sections: int = 3,
    include_inductance: bool = True,
    include_mutual: bool = True,
    t_stop: Optional[float] = None,
    dt: Optional[float] = None,
) -> CrosstalkResult:
    """Switch *aggressor* and measure far-end noise on every other signal.

    Victims are held quiet: terminated to ground through *termination*
    at the near end and loaded with *load_capacitance* at the far end.
    """
    netlist = extractor.build_netlist(
        bus, sections=sections,
        include_inductance=include_inductance,
        include_mutual=include_mutual,
    )
    if aggressor not in netlist.input_nodes:
        raise CircuitError(
            f"no signal trace named {aggressor!r}; "
            f"signals: {sorted(netlist.input_nodes)}"
        )
    circuit = netlist.circuit
    source = PulseSource(v1=0.0, v2=supply, delay=rise_time,
                         rise=rise_time, fall=rise_time, width=1.0)
    circuit.add_voltage_source("Vagg", "agg_src", "0", source)
    circuit.add_resistor("Ragg", "agg_src", netlist.input_nodes[aggressor],
                         drive_resistance)
    circuit.add_capacitor("Cagg_load", netlist.output_nodes[aggressor], "0",
                          load_capacitance)

    victims = [name for name in netlist.input_nodes if name != aggressor]
    for victim in victims:
        circuit.add_resistor(f"Rterm_{victim}", netlist.input_nodes[victim],
                             "0", termination)
        circuit.add_capacitor(f"Cload_{victim}", netlist.output_nodes[victim],
                              "0", load_capacitance)

    length = bus.block.length
    flight = float(np.sqrt(
        bus.inductance_matrix[0, 0] * bus.capacitance_matrix[0, 0]
    ))
    if t_stop is None:
        t_stop = max(20.0 * rise_time, 10.0 * flight)
    if dt is None:
        dt = min(rise_time / 50.0, t_stop / 2000.0)

    result = transient_analysis(circuit, t_stop=t_stop, dt=dt)
    peaks: Dict[str, float] = {}
    waveforms: Dict[str, Waveform] = {}
    for victim in victims:
        wave = result.voltage(netlist.output_nodes[victim])
        peaks[victim] = float(np.max(np.abs(wave.values)))
        waveforms[victim] = wave
    return CrosstalkResult(
        aggressor=aggressor,
        victim_noise_peak=peaks,
        victim_waveforms=waveforms,
    )


@dataclass
class SwitchingDelayResult:
    """Victim delay under the three classic switching patterns [s]."""

    quiet_delay: float
    in_phase_delay: float
    anti_phase_delay: float

    @property
    def pull_in(self) -> float:
        """Speed-up when neighbours switch with the victim [s]."""
        return self.quiet_delay - self.in_phase_delay

    @property
    def push_out(self) -> float:
        """Slow-down when neighbours switch against the victim [s]."""
        return self.anti_phase_delay - self.quiet_delay

    @property
    def delay_window(self) -> float:
        """Total switching-dependent delay uncertainty [s]."""
        return self.anti_phase_delay - self.in_phase_delay


def switching_delay_analysis(
    extractor: BusRLCExtractor,
    bus: BusRLC,
    victim: str,
    drive_resistance: float = 25.0,
    load_capacitance: float = 20e-15,
    supply: float = 1.8,
    rise_time: float = 50e-12,
    sections: int = 3,
    include_inductance: bool = True,
    include_mutual: bool = True,
    t_stop: Optional[float] = None,
    dt: Optional[float] = None,
) -> SwitchingDelayResult:
    """Victim delay with quiet / in-phase / anti-phase neighbours.

    The classic bus-timing experiment -- with a twist the inductance
    makes interesting.  Capacitively, in-phase neighbours *help* (the
    Miller charge vanishes) and anti-phase neighbours hurt.
    Inductively the signs flip: in-phase currents share return paths so
    every line sees L + M (slower), anti-phase sees L - M (faster).
    Which mechanism wins depends on the geometry; run with
    ``include_mutual=False`` to isolate the capacitive picture.

    All signal traces get identical drivers; the victim's 50 % crossing
    is measured for the three neighbour patterns.
    """
    netlist_template = extractor.build_netlist(
        bus, sections=sections,
        include_inductance=include_inductance,
        include_mutual=include_mutual,
    )
    if victim not in netlist_template.input_nodes:
        raise CircuitError(
            f"no signal trace named {victim!r}; "
            f"signals: {sorted(netlist_template.input_nodes)}"
        )

    flight = float(np.sqrt(
        bus.inductance_matrix[0, 0] * bus.capacitance_matrix[0, 0]
    ))
    if t_stop is None:
        t_stop = max(20.0 * rise_time, 10.0 * flight)
    if dt is None:
        dt = min(rise_time / 50.0, t_stop / 2000.0)

    def victim_delay(neighbour_mode: str) -> float:
        netlist = extractor.build_netlist(
            bus, sections=sections,
            include_inductance=include_inductance,
            include_mutual=include_mutual,
        )
        circuit = netlist.circuit
        rising = PulseSource(v1=0.0, v2=supply, delay=rise_time,
                             rise=rise_time, fall=rise_time, width=1.0)
        falling = PulseSource(v1=supply, v2=0.0, delay=rise_time,
                              rise=rise_time, fall=rise_time, width=1.0)
        for name, in_node in netlist.input_nodes.items():
            if name == victim:
                source = rising
            elif neighbour_mode == "quiet":
                source = 0.0
            elif neighbour_mode == "in_phase":
                source = rising
            else:
                source = falling
            circuit.add_voltage_source(f"V_{name}", f"src_{name}", "0", source)
            circuit.add_resistor(f"Rd_{name}", f"src_{name}", in_node,
                                 drive_resistance)
            circuit.add_capacitor(f"Cl_{name}", netlist.output_nodes[name],
                                  "0", load_capacitance)
        result = transient_analysis(circuit, t_stop=t_stop, dt=dt)
        wave = result.voltage(netlist.output_nodes[victim])
        crossing = wave.threshold_crossing(supply / 2.0)
        if crossing is None:
            raise CircuitError("victim never crosses 50 %; extend t_stop")
        return crossing

    return SwitchingDelayResult(
        quiet_delay=victim_delay("quiet"),
        in_phase_delay=victim_delay("in_phase"),
        anti_phase_delay=victim_delay("anti_phase"),
    )
