"""Scenario discovery: every catalog module self-registers on import.

Modeled on experimaestro-ir's ``PapersCli`` MultiCommand: the registry
``pkgutil``-walks :mod:`repro.scenarios.catalog`, imports each module,
and collects the :class:`~repro.scenarios.spec.Scenario` objects those
modules pass to :func:`register` at import time.  Adding an experiment
is therefore one new catalog module (or one ``register`` call) -- the
CLI, the ledger and ``repro run --list`` pick it up with no further
wiring.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Dict, List

from repro.errors import ScenarioError
from repro.scenarios.spec import Scenario

__all__ = ["register", "unregister", "get_scenario", "all_scenarios",
           "scenario_names", "discover"]

_REGISTRY: Dict[str, Scenario] = {}
_DISCOVERED = False


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add *scenario* to the registry (catalog modules call this)."""
    if not scenario.name:
        raise ScenarioError("scenario needs a non-empty name")
    if scenario.run is None:
        raise ScenarioError(f"scenario {scenario.name!r} has no run function")
    if scenario.name in _REGISTRY and not replace:
        raise ScenarioError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove one scenario (test harness helper)."""
    _REGISTRY.pop(name, None)


def discover() -> None:
    """Import every module under ``repro.scenarios.catalog`` once."""
    global _DISCOVERED
    if _DISCOVERED:
        return
    from repro.scenarios import catalog

    for info in pkgutil.iter_modules(catalog.__path__):
        importlib.import_module(f"{catalog.__name__}.{info.name}")
    _DISCOVERED = True


def get_scenario(name: str) -> Scenario:
    """Look one scenario up by exact name (after discovery)."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by (figure group, name)."""
    discover()
    return sorted(_REGISTRY.values(), key=lambda s: (s.figure, s.name))


def scenario_names() -> List[str]:
    """Sorted registry names."""
    discover()
    return sorted(_REGISTRY)
