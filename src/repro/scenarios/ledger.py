"""The run ledger: an append-only, content-addressed store of runs.

Every scenario execution (and, via ``record_bench``, every benchmark
record) lands here as one **run directory** plus one row in the index:

::

    <root>/
      index.json            append-only index: one row per run
      runs/<run_id>/
        run.json            provenance + params + metrics + status
        report.json         the schema-v4 telemetry RunReport (optional)
        logs.jsonl          structured log records captured during the run

The *run key* is the content address of the **request** -- sha256 of
scenario name + code version + canonical params + kit-manifest sha (see
:func:`repro.scenarios.runner.compute_run_key`) -- while the *run id*
(``<run_key[:12]>-NN``) names one **execution** of that request, so
reruns, ``--force`` runs and failed runs coexist without clobbering.
Skip-if-done is a ledger query: :meth:`RunLedger.find_completed` returns
the newest *completed* run of a key; failed runs never satisfy it.

Everything is written with :func:`repro.ioutil.atomic_write_text`
(mirroring ``library/store.py``), so a killed run never leaves a
half-readable index.  ``repro runs list|show|diff|gc`` is the CLI front
end; :func:`diff_runs` reuses the direction-aware median/MAD gate of
:mod:`repro.quality.regress` so "did this sha make skew worse?" has the
same semantics as the bench watchdog.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ScenarioError
from repro.ioutil import atomic_write_text

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "LedgerLock",
    "RunLedger",
    "diff_runs",
    "render_entries",
    "render_run",
]

#: Bump when run.json / index.json layouts change incompatibly.  The
#: version participates in every run key, so old ledgers are simply not
#: skip-matched, never misread.
LEDGER_SCHEMA_VERSION = 1

_STATUSES = ("completed", "failed")


class LedgerLock:
    """Cross-process mutex guarding the ledger's index read-modify-write.

    ``atomic_write_text`` keeps each index *write* all-or-nothing, but
    appending is load -> mutate -> store: two processes recording at
    once (a parallel sweep fans out exactly this) would each read the
    same snapshot and the second write would silently drop the first
    row.  The lock is an ``O_CREAT | O_EXCL`` lockfile -- atomic on
    every platform and filesystem the repo targets -- with bounded
    retry and stale-lock breaking (a holder that died keeps its pid in
    the file but stops refreshing the mtime).
    """

    def __init__(self, path: Union[str, Path], timeout: float = 10.0,
                 stale_after: float = 30.0):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.stale_after = float(stale_after)
        self._fd: Optional[int] = None

    def __enter__(self) -> "LedgerLock":
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._fd = os.open(
                    str(self.path),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
                os.write(self._fd, str(os.getpid()).encode("ascii"))
                return self
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > self.stale_after:
                        # Holder died without releasing: break the lock
                        # (best effort -- a concurrent breaker losing
                        # the unlink race just retries).
                        self.path.unlink()
                        continue
                except OSError:
                    continue  # released between the open and the stat
                if time.monotonic() >= deadline:
                    raise ScenarioError(
                        f"timed out after {self.timeout:.1f} s waiting "
                        f"for ledger lock {self.path} (stale locks are "
                        f"broken after {self.stale_after:.0f} s)")
                time.sleep(0.005)

    def __exit__(self, *exc_info) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - already broken as stale
            pass


@dataclass(frozen=True)
class LedgerEntry:
    """One index row: the queryable summary of a recorded run."""

    run_id: str
    run_key: str
    scenario: str
    status: str
    git_sha: str = "unknown"
    host: str = "unknown"
    started_at: float = 0.0
    duration: float = 0.0

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "run_key": self.run_key,
            "scenario": self.scenario,
            "status": self.status,
            "git_sha": self.git_sha,
            "host": self.host,
            "started_at": self.started_at,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerEntry":
        return cls(
            run_id=str(data.get("run_id", "")),
            run_key=str(data.get("run_key", "")),
            scenario=str(data.get("scenario", "")),
            status=str(data.get("status", "")),
            git_sha=str(data.get("git_sha", "unknown")),
            host=str(data.get("host", "unknown")),
            started_at=float(data.get("started_at", 0.0)),
            duration=float(data.get("duration", 0.0)),
        )


class RunLedger:
    """Directory-rooted, content-addressed store of experiment runs."""

    INDEX_NAME = "index.json"
    LOCK_NAME = "index.lock"
    RUNS_DIR = "runs"
    CAMPAIGNS_DIR = "campaigns"
    CAMPAIGN_INDEX_NAME = "campaigns.json"

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root = Path(root)
        self.index_path = self.root / self.INDEX_NAME
        self.runs_root = self.root / self.RUNS_DIR
        self.campaigns_root = self.root / self.CAMPAIGNS_DIR
        self.campaign_index_path = self.root / self.CAMPAIGN_INDEX_NAME
        if create:
            self.runs_root.mkdir(parents=True, exist_ok=True)
        elif not self.index_path.exists():
            raise ScenarioError(f"no run ledger at {self.root}")

    def _lock(self) -> LedgerLock:
        """The mutex serializing every index read-modify-write."""
        return LedgerLock(self.root / self.LOCK_NAME)

    # ------------------------------------------------------------------
    # index I/O
    # ------------------------------------------------------------------
    def _load_index(self) -> List[LedgerEntry]:
        if not self.index_path.exists():
            return []
        try:
            data = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ScenarioError(
                f"unreadable ledger index {self.index_path}: {exc}")
        rows = data.get("entries", []) if isinstance(data, dict) else []
        return [LedgerEntry.from_dict(row) for row in rows]

    def _save_index(self, entries: List[LedgerEntry]) -> None:
        payload = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "entries": [e.to_dict() for e in entries],
        }
        atomic_write_text(self.index_path, json.dumps(payload, indent=1))

    def __len__(self) -> int:
        return len(self._load_index())

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        scenario: str,
        run_key: str,
        params: Optional[dict] = None,
        metrics: Optional[dict] = None,
        status: str = "completed",
        error: Optional[str] = None,
        meta: Optional[dict] = None,
        kit_manifest_sha: str = "",
        duration: float = 0.0,
        started_at: Optional[float] = None,
        report=None,
        logs: Optional[List[dict]] = None,
    ) -> LedgerEntry:
        """Append one run; returns its index row.

        *meta* is the :func:`repro.quality.regress.run_metadata`
        provenance block (stamped fresh when omitted); *report* is a
        :class:`~repro.telemetry.RunReport` (or plain dict) saved next
        to ``run.json``; *logs* are structured log records captured
        during the run.
        """
        if status not in _STATUSES:
            raise ScenarioError(
                f"run status {status!r} not in {_STATUSES}")
        if meta is None:
            from repro.quality.regress import run_metadata

            meta = run_metadata()
        with self._lock():
            return self._record_locked(
                scenario=scenario, run_key=run_key, params=params,
                metrics=metrics, status=status, error=error, meta=meta,
                kit_manifest_sha=kit_manifest_sha, duration=duration,
                started_at=started_at, report=report, logs=logs,
            )

    def _record_locked(
        self,
        scenario: str,
        run_key: str,
        params: Optional[dict],
        metrics: Optional[dict],
        status: str,
        error: Optional[str],
        meta: dict,
        kit_manifest_sha: str,
        duration: float,
        started_at: Optional[float],
        report,
        logs: Optional[List[dict]],
    ) -> LedgerEntry:
        """The append body; the caller holds the index lock.

        Sequence numbering (``<run_key[:12]>-NN``) and the index
        read-append-write both happen under the lock, so concurrent
        recorders -- parallel sweep workers -- can never mint the same
        run id or drop each other's rows.
        """
        entries = self._load_index()
        seq = sum(1 for e in entries if e.run_key == run_key) + 1
        run_id = f"{run_key[:12]}-{seq:02d}"
        run_dir = self.runs_root / run_id
        record = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "run_id": run_id,
            "run_key": run_key,
            "scenario": scenario,
            "status": status,
            "error": error,
            "params": dict(params or {}),
            "kit_manifest_sha": kit_manifest_sha,
            "metrics": dict(metrics or {}),
            "duration": float(duration),
            "started_at": float(time.time() if started_at is None
                                else started_at),
            "meta": dict(meta),
        }
        atomic_write_text(run_dir / "run.json",
                          json.dumps(record, indent=1))
        if report is not None:
            report_data = (report.to_dict()
                           if hasattr(report, "to_dict") else dict(report))
            atomic_write_text(run_dir / "report.json",
                              json.dumps(report_data, indent=1))
        if logs:
            atomic_write_text(
                run_dir / "logs.jsonl",
                "".join(json.dumps(r, sort_keys=True, default=str) + "\n"
                        for r in logs),
            )
        entry = LedgerEntry(
            run_id=run_id,
            run_key=run_key,
            scenario=scenario,
            status=status,
            git_sha=str(meta.get("git_sha", "unknown")),
            host=str(meta.get("host", "unknown")),
            started_at=record["started_at"],
            duration=record["duration"],
        )
        self._save_index(entries + [entry])
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def entries(
        self,
        scenario: Optional[str] = None,
        sha: Optional[str] = None,
        since: Optional[float] = None,
        status: Optional[str] = None,
    ) -> List[LedgerEntry]:
        """Index rows, newest last, filtered by scenario/sha/since/status."""
        rows = sorted(self._load_index(), key=lambda e: e.started_at)
        if scenario is not None:
            rows = [e for e in rows if e.scenario == scenario]
        if sha is not None:
            rows = [e for e in rows if e.git_sha.startswith(sha)]
        if since is not None:
            rows = [e for e in rows if e.started_at >= since]
        if status is not None:
            rows = [e for e in rows if e.status == status]
        return rows

    def find_completed(self, run_key: str) -> Optional[LedgerEntry]:
        """The newest *completed* run of *run_key* (skip-if-done query).

        Failed runs never match: a request whose last attempt blew up is
        re-runnable without ``--force``.
        """
        matches = [e for e in self.entries(status="completed")
                   if e.run_key == run_key]
        return matches[-1] if matches else None

    def resolve(self, selector: str) -> LedgerEntry:
        """Resolve a CLI selector to one run.

        Accepted forms, tried in order:

        * a ``run_id`` prefix (unique match required);
        * ``<scenario>`` -- the latest completed run of that scenario;
        * ``<scenario>@<sha-prefix>`` -- the latest completed run of the
          scenario on a matching git sha (cross-sha diffing).
        """
        rows = self.entries()
        if not rows:
            raise ScenarioError(f"run ledger {self.root} is empty")
        matches = [e for e in rows if e.run_id.startswith(selector)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            ids = ", ".join(e.run_id for e in matches[-5:])
            raise ScenarioError(
                f"run selector {selector!r} is ambiguous ({ids}, ...)")
        scenario, _, sha = selector.partition("@")
        candidates = self.entries(scenario=scenario, sha=sha or None,
                                  status="completed")
        if candidates:
            return candidates[-1]
        raise ScenarioError(
            f"no run matches {selector!r} (try `repro runs list`)")

    def run_dir(self, run_id: str) -> Path:
        return self.runs_root / run_id

    def load_run(self, run_id: str) -> dict:
        """The full ``run.json`` record of one run."""
        path = self.run_dir(run_id) / "run.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ScenarioError(f"unreadable run record {path}: {exc}")

    def load_report(self, run_id: str):
        """The run's telemetry RunReport, or None when not captured."""
        path = self.run_dir(run_id) / "report.json"
        if not path.exists():
            return None
        from repro.telemetry import load_report

        return load_report(path)

    def load_logs(self, run_id: str) -> List[dict]:
        """Structured log records captured during the run (may be empty)."""
        path = self.run_dir(run_id) / "logs.jsonl"
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            if line.strip():
                records.append(json.loads(line))
        return records

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[LedgerEntry]:
        """Prune old runs; returns the removed entries.

        *max_age_days* drops runs started earlier than the cutoff;
        *keep* bounds the total run count, dropping oldest-first.  Run
        directories are deleted with the index rows, so the ledger's
        disk footprint stays bounded.
        """
        if max_age_days is not None and max_age_days < 0:
            raise ScenarioError("max_age_days must be >= 0")
        if keep is not None and keep < 0:
            raise ScenarioError("keep must be >= 0")
        with self._lock():
            rows = self.entries()
            removed: List[LedgerEntry] = []
            if max_age_days is not None:
                cutoff = (time.time() if now is None else now) \
                    - max_age_days * 86400.0
                removed.extend(e for e in rows if e.started_at < cutoff)
                rows = [e for e in rows if e.started_at >= cutoff]
            if keep is not None and len(rows) > keep:
                overflow = len(rows) - keep
                removed.extend(rows[:overflow])
                rows = rows[overflow:]
            for entry in removed:
                shutil.rmtree(self.run_dir(entry.run_id),
                              ignore_errors=True)
            if removed:
                self._save_index(rows)
        return removed

    # ------------------------------------------------------------------
    # campaign records (sweep-level artifacts; see scenarios/sweep.py)
    # ------------------------------------------------------------------
    def _load_campaign_index(self) -> List[dict]:
        if not self.campaign_index_path.exists():
            return []
        try:
            data = json.loads(self.campaign_index_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ScenarioError(
                f"unreadable campaign index {self.campaign_index_path}: "
                f"{exc}")
        rows = data.get("campaigns", []) if isinstance(data, dict) else []
        return [dict(row) for row in rows]

    def _save_campaign_index(self, rows: List[dict]) -> None:
        payload = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "campaigns": rows,
        }
        atomic_write_text(self.campaign_index_path,
                          json.dumps(payload, indent=1))

    def campaign_dir(self, campaign_id: str) -> Path:
        return self.campaigns_root / campaign_id

    def record_campaign(self, report) -> dict:
        """Persist one sweep campaign; returns its index row.

        *report* is a :class:`repro.scenarios.campaign.CampaignReport`
        (or its dict form).  The campaign id (``<sweep_id[:12]>-NN``)
        is minted under the index lock -- reruns of the same sweep spec
        coexist as separate campaign records, which is exactly what
        ``repro sweep diff`` compares.  When *report* is the dataclass,
        its ``campaign_id`` is filled in.
        """
        data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        sweep_id = str(data.get("sweep_id", ""))
        if not sweep_id:
            raise ScenarioError("campaign record has no sweep_id")
        points = list(data.get("points") or [])
        with self._lock():
            rows = self._load_campaign_index()
            seq = sum(1 for r in rows if r.get("sweep_id") == sweep_id) + 1
            campaign_id = f"{sweep_id[:12]}-{seq:02d}"
            data["campaign_id"] = campaign_id
            atomic_write_text(
                self.campaign_dir(campaign_id) / "campaign.json",
                json.dumps(data, indent=1, default=str))
            row = {
                "campaign_id": campaign_id,
                "sweep_id": sweep_id,
                "scenario": str(data.get("scenario", "")),
                "points": len(points),
                "failed": sum(1 for p in points
                              if p.get("status") == "failed"),
                "skipped": sum(1 for p in points if p.get("skipped")),
                "workers": int(data.get("workers", 1)),
                "git_sha": str((data.get("meta") or {}).get(
                    "git_sha", "unknown")),
                "started_at": float(data.get("started_at", 0.0)),
                "duration": float(data.get("duration", 0.0)),
            }
            self._save_campaign_index(rows + [row])
        if hasattr(report, "campaign_id"):
            report.campaign_id = campaign_id
        return row

    def campaign_entries(self, scenario: Optional[str] = None) -> List[dict]:
        """Campaign index rows, oldest first, optionally by scenario."""
        rows = sorted(self._load_campaign_index(),
                      key=lambda r: r.get("started_at", 0.0))
        if scenario is not None:
            rows = [r for r in rows if r.get("scenario") == scenario]
        return rows

    def load_campaign(self, campaign_id: str) -> dict:
        """The full ``campaign.json`` record of one campaign."""
        path = self.campaign_dir(campaign_id) / "campaign.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ScenarioError(
                f"unreadable campaign record {path}: {exc}")

    def resolve_campaign(self, selector: str) -> dict:
        """Resolve a CLI selector to one campaign index row.

        Accepted forms, tried in order: a ``campaign_id`` prefix
        (unique match required); ``<scenario>`` -- that scenario's
        latest campaign; a ``sweep_id`` prefix -- the latest campaign
        of that sweep spec.
        """
        rows = self.campaign_entries()
        if not rows:
            raise ScenarioError(
                f"no campaigns recorded in ledger {self.root}")
        matches = [r for r in rows
                   if str(r.get("campaign_id", "")).startswith(selector)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            ids = ", ".join(str(r["campaign_id"]) for r in matches[-5:])
            raise ScenarioError(
                f"campaign selector {selector!r} is ambiguous "
                f"({ids}, ...)")
        by_scenario = [r for r in rows if r.get("scenario") == selector]
        if by_scenario:
            return by_scenario[-1]
        by_sweep = [r for r in rows
                    if str(r.get("sweep_id", "")).startswith(selector)]
        if by_sweep:
            return by_sweep[-1]
        raise ScenarioError(
            f"no campaign matches {selector!r} "
            "(try `repro sweep status`)")


# ----------------------------------------------------------------------
# cross-run diffing
# ----------------------------------------------------------------------
def _bench_view(run: dict) -> dict:
    """Project a run record onto the bench-record shape regress diffs."""
    view = dict(run.get("metrics") or {})
    view["duration"] = float(run.get("duration", 0.0))
    view["meta"] = dict(run.get("meta") or {})
    return view


def diff_runs(baseline: dict, candidate: dict,
              threshold: float = 0.25, mad_k: float = 3.0):
    """Compare two run records' metric dicts.

    Returns a :class:`repro.quality.regress.BenchDiff`: metric direction
    is inferred from the name exactly as ``repro bench diff`` does
    (``*_seconds``/``duration`` lower-is-better, ``*speedup``/
    ``*hit_rate`` higher-is-better, everything else informational), and
    ``.passed`` is False when any directed metric moved the wrong way by
    more than the gate.
    """
    from repro.quality.regress import diff_benches

    diff = diff_benches([_bench_view(baseline)], _bench_view(candidate),
                        threshold=threshold, mad_k=mad_k)
    # The bench view always injects wall-clock "duration", so it alone
    # must not count as "we compared something".
    diff.synthetic = ["duration"]
    return diff


# ----------------------------------------------------------------------
# rendering (the `repro runs` subcommands)
# ----------------------------------------------------------------------
def render_entries(entries: List[LedgerEntry]) -> str:
    """An aligned table of index rows (newest last)."""
    if not entries:
        return "no runs recorded\n"
    lines = [f"  {'run id':<16} {'scenario':<20} {'status':<10} "
             f"{'sha':<12} {'when':<19} {'wall':>8}"]
    for e in entries:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.localtime(e.started_at))
        lines.append(
            f"  {e.run_id:<16} {e.scenario:<20} {e.status:<10} "
            f"{e.git_sha[:12]:<12} {when:<19} {e.duration:7.2f}s"
        )
    return "\n".join(lines) + "\n"


def render_run(run: dict) -> str:
    """Human-readable provenance + metrics of one run record."""
    meta = run.get("meta") or {}
    lines = [
        f"run {run.get('run_id', '?')}  [{run.get('status', '?')}]",
        f"  scenario   {run.get('scenario', '?')}",
        f"  run key    {run.get('run_key', '?')}",
        f"  git sha    {meta.get('git_sha', '?')}",
        f"  host       {meta.get('host', '?')}   "
        f"python {meta.get('python', '?')}",
        f"  when       {meta.get('timestamp', '?')}   "
        f"wall {float(run.get('duration', 0.0)):.2f} s",
    ]
    if run.get("kit_manifest_sha"):
        lines.append(f"  kit sha    {run['kit_manifest_sha'][:16]}")
    if run.get("error"):
        lines.append(f"  error      {run['error']}")
    params = run.get("params") or {}
    if params:
        lines.append("  params")
        width = max(len(k) for k in params)
        for name in sorted(params):
            lines.append(f"    {name:<{width}} = {params[name]!r}")
    metrics = run.get("metrics") or {}
    if metrics:
        from repro.quality.regress import flatten_metrics

        flat = flatten_metrics({k: v for k, v in metrics.items()
                                if k != "meta"})
        lines.append("  metrics")
        if flat:
            width = max(len(k) for k in flat)
            for name in sorted(flat):
                lines.append(f"    {name:<{width}} = {flat[name]:g}")
        for name in sorted(metrics):
            if isinstance(metrics[name], str):
                lines.append(f"    {name} = {metrics[name]!r}")
    return "\n".join(lines) + "\n"
