"""Sweep campaigns: parameter grids executed through the run ledger.

A :class:`SweepSpec` declares *what* to explore over one registered
scenario -- cartesian grid axes, explicit point lists, and seeded
Monte-Carlo axes over its UPPERCASE parameters.  :class:`SweepRunner`
executes every grid point through :func:`repro.scenarios.run_scenario`,
so each point is an ordinary content-addressed ledger run: skip-if-done
gives campaigns free resumability (re-running an identical sweep
replays every point with **zero** solver calls), and every point keeps
full per-run provenance.

Observability is campaign-level:

* a ``sweep_id`` correlation scope stamps every log record and span
  emitted anywhere in the campaign (:func:`repro.telemetry.logs
  .sweep_scope`);
* live progress -- points done/failed/replayed, throughput, ETA, and
  the *merged* memo-hit-rate/solver-call counters across all workers --
  is published through ``sweep_*`` gauges on the global registry, so
  ``prometheus_text`` (and a running serve daemon's ``/metrics``)
  exposes the campaign while it runs;
* the finished campaign persists as a first-class
  :class:`~repro.scenarios.campaign.CampaignReport` in the ledger.

Workers follow the library BuildRunner pattern: each point task runs in
a forked pool process, measures its own registry *delta*, and ships it
back for the parent to fold via ``MetricsSnapshot.merged`` -- parent
counters never mix with worker counters.
"""

from __future__ import annotations

import itertools
import random
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ScenarioError, ScenarioRunError
from repro.library.store import cache_key
from repro.scenarios.campaign import CampaignReport
from repro.scenarios.ledger import RunLedger
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CODE_VERSION, default_ledger_root
from repro.scenarios.spec import Scenario, coerce_param
from repro.telemetry.registry import (
    SWEEP_ETA_SECONDS,
    SWEEP_MEMO_HIT_RATE,
    SWEEP_POINTS_DONE,
    SWEEP_POINTS_FAILED,
    SWEEP_POINTS_PER_SECOND,
    SWEEP_POINTS_SKIPPED,
    SWEEP_POINTS_TOTAL,
    SWEEP_RUNNING,
    SWEEP_SOLVER_CALLS,
    MetricsSnapshot,
    get_registry,
    is_solver_counter,
)

__all__ = ["MonteCarloAxis", "SweepSpec", "SweepProgress", "SweepRunner",
           "run_sweep"]

_DIST_RE = re.compile(
    r"^\s*(normal|uniform|lognormal)\s*\(\s*([^,)]+)\s*,\s*([^,)]+)\s*\)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class MonteCarloAxis:
    """One seeded random axis: ``normal(mu,sigma)`` & friends.

    ``uniform(lo,hi)`` draws uniformly; ``lognormal(mu,sigma)`` draws
    ``exp(N(mu,sigma))`` -- the usual process-variation shapes.  Draws
    are fully determined by the sweep seed, so a campaign's Monte-Carlo
    points are as reproducible as its grid points.
    """

    dist: str
    a: float
    b: float

    @classmethod
    def parse(cls, text: str) -> "MonteCarloAxis":
        match = _DIST_RE.match(str(text))
        if not match:
            raise ScenarioError(
                f"bad Monte-Carlo axis {text!r} -- expected "
                "normal(mu,sigma), uniform(lo,hi) or "
                "lognormal(mu,sigma)")
        dist = match.group(1).lower()
        try:
            a = float(match.group(2))
            b = float(match.group(3))
        except ValueError:
            raise ScenarioError(
                f"bad Monte-Carlo axis {text!r} -- parameters must be "
                "numbers") from None
        if dist == "uniform" and b < a:
            raise ScenarioError(
                f"bad Monte-Carlo axis {text!r} -- uniform needs "
                "lo <= hi")
        if dist in ("normal", "lognormal") and b < 0:
            raise ScenarioError(
                f"bad Monte-Carlo axis {text!r} -- sigma must be >= 0")
        return cls(dist=dist, a=a, b=b)

    def sample(self, rng: random.Random) -> float:
        if self.dist == "normal":
            return rng.gauss(self.a, self.b)
        if self.dist == "uniform":
            return rng.uniform(self.a, self.b)
        return rng.lognormvariate(self.a, self.b)

    def describe(self) -> str:
        return f"{self.dist}({self.a:g},{self.b:g})"


@dataclass
class SweepSpec:
    """A declarative parameter sweep over one registered scenario."""

    scenario: str
    grid: Dict[str, List[object]] = field(default_factory=dict)
    explicit: List[Dict[str, object]] = field(default_factory=list)
    mc: Dict[str, MonteCarloAxis] = field(default_factory=dict)
    samples: int = 1
    seed: int = 0
    base: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ScenarioError("sweep samples must be >= 1")
        for name, levels in self.grid.items():
            if not levels:
                raise ScenarioError(f"grid axis {name} has no values")
        overlap = set(self.grid) & set(self.mc)
        if overlap:
            raise ScenarioError(
                f"parameter(s) {sorted(overlap)} appear as both grid "
                "and Monte-Carlo axes")

    # ------------------------------------------------------------------
    def resolved(self, scenario: Scenario) -> "SweepSpec":
        """This spec with every literal value canonically coerced.

        Coercion against the scenario's typed defaults makes the spec
        (and therefore :attr:`sweep_id`) independent of command-line
        spelling -- ``TOTAL_LENGTH=4e-3`` and ``=0.004`` produce the
        same campaign identity, exactly like run keys.
        """
        defaults = dict(scenario.defaults)

        def coerce(name: str, value: object) -> object:
            if name not in defaults:
                known = ", ".join(sorted(defaults)) or "(none)"
                raise ScenarioError(
                    f"scenario {scenario.name!r} has no parameter "
                    f"{name!r} (valid: {known})")
            return coerce_param(name, defaults[name], value)

        for name in self.mc:
            if name not in defaults:
                known = ", ".join(sorted(defaults)) or "(none)"
                raise ScenarioError(
                    f"scenario {scenario.name!r} has no parameter "
                    f"{name!r} (valid: {known})")
            if not isinstance(defaults[name], float):
                raise ScenarioError(
                    f"Monte-Carlo axis {name} needs a float parameter "
                    f"(default is {type(defaults[name]).__name__})")
        return SweepSpec(
            scenario=self.scenario,
            grid={name: [coerce(name, v) for v in levels]
                  for name, levels in self.grid.items()},
            explicit=[{name: coerce(name, v) for name, v in pt.items()}
                      for pt in self.explicit],
            mc=dict(self.mc),
            samples=self.samples,
            seed=self.seed,
            base={name: coerce(name, v) for name, v in self.base.items()},
        )

    # ------------------------------------------------------------------
    def points(self) -> List[Dict[str, object]]:
        """Every override dict the sweep will run, in a stable order.

        Order: explicit points x grid cartesian product (axes sorted by
        name) x Monte-Carlo samples.  Each MC sample ``s`` gets its own
        ``random.Random(seed * 1_000_003 + s)`` stream drawing the
        sorted MC axes in turn, so draws depend only on ``(seed, s)``
        -- not on grid shape or axis insertion order.
        """
        grid_names = sorted(self.grid)
        grid_assignments = [
            dict(zip(grid_names, combo))
            for combo in itertools.product(
                *(self.grid[name] for name in grid_names))
        ] if grid_names else [{}]
        explicit_pts = self.explicit or [{}]
        samples = self.samples if self.mc else 1
        out: List[Dict[str, object]] = []
        for explicit_pt in explicit_pts:
            for assignment in grid_assignments:
                for s in range(samples):
                    draw: Dict[str, object] = {}
                    if self.mc:
                        rng = random.Random(self.seed * 1_000_003 + s)
                        for name in sorted(self.mc):
                            draw[name] = self.mc[name].sample(rng)
                    out.append({**self.base, **explicit_pt,
                                **assignment, **draw})
        return out

    def varying_params(self) -> List[str]:
        """Parameter names that differ between at least two points."""
        names = set(self.grid) | set(self.mc)
        if self.explicit:
            for key in {k for pt in self.explicit for k in pt}:
                values = {repr(pt.get(key)) for pt in self.explicit}
                if len(values) > 1:
                    names.add(key)
        return sorted(names)

    @property
    def sweep_id(self) -> str:
        """Content address of the campaign request (spec + code)."""
        return cache_key({
            "kind": "sweep-campaign",
            "scenario": self.scenario,
            "code_version": CODE_VERSION,
            "grid": {n: list(v) for n, v in sorted(self.grid.items())},
            "explicit": self.explicit,
            "mc": {n: self.mc[n].describe() for n in sorted(self.mc)},
            "samples": self.samples if self.mc else 1,
            "seed": self.seed,
            "base": dict(sorted(self.base.items())),
        })

    def spec_dict(self) -> Dict[str, object]:
        """The JSON form stored inside the campaign record."""
        return {
            "scenario": self.scenario,
            "grid": {n: list(v) for n, v in sorted(self.grid.items())},
            "explicit": [dict(pt) for pt in self.explicit],
            "mc": {n: self.mc[n].describe() for n in sorted(self.mc)},
            "samples": self.samples if self.mc else 1,
            "seed": self.seed,
            "base": dict(sorted(self.base.items())),
            "varying": self.varying_params(),
        }


# ----------------------------------------------------------------------
# the per-point task (module-level: picklable for the process pool)
# ----------------------------------------------------------------------
def _sweep_point_task(
    scenario_name: str,
    overrides: Dict[str, object],
    ledger_root: str,
    force: bool,
    sweep_id: str,
    index: int,
    in_worker: bool = True,
) -> dict:
    """Run one grid point; returns its outcome row + telemetry delta.

    Never raises on scenario failure -- the row records status
    ``failed`` (the ledger already holds the failed run's record), so
    one bad point cannot take down the campaign.  The worker registry's
    metric delta travels back in ``row["telemetry"]`` for the parent to
    merge, mirroring the library build chunk task.
    """
    from repro.telemetry.logs import sweep_scope
    from repro.telemetry.spans import get_tracer

    registry = get_registry()
    if in_worker:
        # A forked worker inherits the parent's completed span roots
        # and open-span stack; drop both so this point's trace is
        # exactly this point's work.
        tracer = get_tracer()
        tracer.clear_stack()
        tracer.reset()
    start = registry.snapshot()
    t0 = time.perf_counter()
    row: Dict[str, object] = {
        "index": index,
        "params": dict(overrides),
        "run_id": "",
        "run_key": "",
        "status": "failed",
        "skipped": False,
        "duration": 0.0,
        "metrics": {},
        "error": "",
    }
    with sweep_scope(sweep_id[:12], point=str(index)):
        try:
            outcome = run_scenario_for_sweep(
                scenario_name, overrides,
                ledger_root=ledger_root, force=force, index=index)
            row.update(
                params=dict(outcome.params),
                run_id=outcome.run_id,
                run_key=outcome.run_key,
                status=outcome.entry.status,
                skipped=outcome.skipped,
                duration=outcome.entry.duration,
                metrics=dict(outcome.metrics),
            )
        except ScenarioRunError as exc:
            row["run_id"] = exc.run_id or ""
            row["error"] = str(exc)
        except ScenarioError as exc:
            row["error"] = str(exc)
    row["wall"] = time.perf_counter() - t0
    row["telemetry"] = registry.snapshot().minus(start).to_dict()
    return row


def run_scenario_for_sweep(scenario_name: str,
                           overrides: Dict[str, object],
                           *, ledger_root: str, force: bool, index: int):
    """One point through the ordinary ledger runner, sweep-labelled."""
    from repro.scenarios.runner import run_scenario

    return run_scenario(
        scenario_name, overrides,
        ledger=RunLedger(Path(ledger_root)),
        force=force,
        command=f"repro sweep {scenario_name}#{index}",
    )


# ----------------------------------------------------------------------
# live progress
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepProgress:
    """One live-progress tick handed to the progress callback."""

    total: int
    done: int
    failed: int
    skipped: int
    elapsed: float
    telemetry: MetricsSnapshot

    @property
    def points_per_second(self) -> float:
        if self.elapsed <= 0.0 or self.done == 0:
            return 0.0
        return self.done / self.elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Seconds until completion, or None before any point lands."""
        rate = self.points_per_second
        if rate <= 0.0:
            return None
        return (self.total - self.done) / rate

    @property
    def memo_hit_rate(self) -> float:
        return self.telemetry.memo_hit_rate

    @property
    def solver_calls(self) -> int:
        return int(sum(v for name, v in self.telemetry.counters.items()
                       if is_solver_counter(name)))


def _publish_gauges(progress: SweepProgress, running: bool) -> None:
    """Export the campaign's live state as ``sweep_*`` gauges."""
    registry = get_registry()
    registry.set_gauge(SWEEP_RUNNING, 1.0 if running else 0.0)
    registry.set_gauge(SWEEP_POINTS_TOTAL, float(progress.total))
    registry.set_gauge(SWEEP_POINTS_DONE, float(progress.done))
    registry.set_gauge(SWEEP_POINTS_FAILED, float(progress.failed))
    registry.set_gauge(SWEEP_POINTS_SKIPPED, float(progress.skipped))
    registry.set_gauge(SWEEP_POINTS_PER_SECOND,
                       progress.points_per_second)
    eta = progress.eta_seconds
    # Never publish inf/None: the Prometheus text formatter needs a
    # finite number, and "unknown" renders as 0 by convention.
    registry.set_gauge(SWEEP_ETA_SECONDS,
                       float(eta) if eta is not None else 0.0)
    registry.set_gauge(SWEEP_MEMO_HIT_RATE, progress.memo_hit_rate)
    registry.set_gauge(SWEEP_SOLVER_CALLS, float(progress.solver_calls))


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Execute a :class:`SweepSpec`; every point is one ledger run.

    Parameters
    ----------
    spec:
        What to sweep.  Validated and canonicalized up front -- a typo
        in an axis name fails before any point runs.
    ledger:
        Target :class:`RunLedger` (default: ``$REPRO_LEDGER`` /
        ``.repro/runs``).  Points and the campaign record land here.
    workers:
        Process count; 1 (the default) runs points serially in-process.
    force:
        Re-execute points even when the ledger already has them.
    progress:
        Optional callback receiving a :class:`SweepProgress` after
        every finished point (the CLI renders it to stderr).
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        ledger: Optional[RunLedger] = None,
        workers: int = 1,
        force: bool = False,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ) -> None:
        scenario = get_scenario(spec.scenario)
        self.spec = spec.resolved(scenario)
        self.scenario = scenario
        self.ledger = ledger if ledger is not None else RunLedger(
            default_ledger_root())
        self.workers = max(1, int(workers))
        self.force = force
        self.progress = progress
        if not (self.spec.grid or self.spec.explicit or self.spec.mc):
            raise ScenarioError(
                f"sweep over {spec.scenario!r} has no points -- give at "
                "least one --grid/--point/--mc axis (a single default "
                "point is just `repro run`)")
        self.points = self.spec.points()
        # Fail fast on any invalid point (bad value for the scenario's
        # parameter types) before spending a second of solve time.
        for overrides in self.points:
            scenario.params_with(overrides)

    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute every point; returns the persisted campaign report."""
        from repro.quality.regress import run_metadata
        from repro.telemetry.logs import get_logger, sweep_scope

        sweep_id = self.spec.sweep_id
        total = len(self.points)
        effective_workers = min(self.workers, total)
        started_at = time.time()
        t0 = time.perf_counter()
        merged = MetricsSnapshot()
        rows: List[dict] = []
        failed = skipped = 0
        logger = get_logger("repro.sweep")

        def tick() -> SweepProgress:
            return SweepProgress(
                total=total,
                done=len(rows),
                failed=failed,
                skipped=skipped,
                elapsed=time.perf_counter() - t0,
                telemetry=merged,
            )

        def fold(row: dict) -> None:
            nonlocal merged, failed, skipped
            delta = row.pop("telemetry", None)
            if delta:
                merged = merged.merged(MetricsSnapshot.from_dict(delta))
            if row.get("status") == "failed":
                failed += 1
            if row.get("skipped"):
                skipped += 1
            rows.append(row)
            progress = tick()
            _publish_gauges(progress, running=True)
            if self.progress is not None:
                self.progress(progress)

        with sweep_scope(sweep_id[:12], scenario=self.spec.scenario):
            logger.info(
                "sweep_start",
                scenario=self.spec.scenario,
                points=total,
                workers=effective_workers,
                force=self.force,
            )
            _publish_gauges(tick(), running=True)
            if effective_workers <= 1:
                for index, overrides in enumerate(self.points):
                    fold(_sweep_point_task(
                        self.spec.scenario, overrides,
                        str(self.ledger.root), self.force, sweep_id,
                        index, in_worker=False))
            else:
                self._run_parallel(sweep_id, effective_workers, fold)
            duration = time.perf_counter() - t0
            final = tick()
            _publish_gauges(final, running=False)
            logger.info(
                "sweep_done",
                scenario=self.spec.scenario,
                points=total,
                failed=failed,
                skipped=skipped,
                wall_seconds=round(duration, 4),
                solver_calls=final.solver_calls,
            )

        rows.sort(key=lambda r: r.get("index", 0))
        report = CampaignReport(
            sweep_id=sweep_id,
            scenario=self.spec.scenario,
            spec=self.spec.spec_dict(),
            points=rows,
            telemetry=merged.to_dict(),
            workers=effective_workers,
            started_at=started_at,
            duration=duration,
            meta=run_metadata(),
        )
        self.ledger.record_campaign(report)
        return report

    # ------------------------------------------------------------------
    def _run_parallel(self, sweep_id: str, workers: int,
                      fold: Callable[[dict], None]) -> None:
        """Fan points over a process pool, folding rows as they land."""
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError):  # pragma: no cover - constrained envs
            for index, overrides in enumerate(self.points):
                fold(_sweep_point_task(
                    self.spec.scenario, overrides, str(self.ledger.root),
                    self.force, sweep_id, index, in_worker=False))
            return
        with executor:
            pending = {
                executor.submit(
                    _sweep_point_task, self.spec.scenario, overrides,
                    str(self.ledger.root), self.force, sweep_id, index)
                for index, overrides in enumerate(self.points)
            }
            try:
                while pending:
                    finished, pending = wait(
                        pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        fold(future.result())
            except BaseException:
                for future in pending:
                    future.cancel()
                raise


def run_sweep(spec: SweepSpec, **kwargs) -> CampaignReport:
    """Convenience: ``SweepRunner(spec, **kwargs).run()``."""
    return SweepRunner(spec, **kwargs).run()
