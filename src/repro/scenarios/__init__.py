"""Scenario registry + content-addressed run ledger + sweep campaigns.

Every experiment in this repo is a declarative
:class:`~repro.scenarios.spec.Scenario` -- a name, typed default
parameters, and a ``run(params, session)`` function -- discovered from
:mod:`repro.scenarios.catalog` and executed through one runner that
records provenance, telemetry and metrics in an append-only
:class:`~repro.scenarios.ledger.RunLedger`.  Identical requests (same
scenario + code version + canonical params + design-kit sha) are
**skipped**: the ledger replays the recorded metrics with zero field
solves.  ``repro runs list|show|diff|gc`` inspects the ledger; ``diff``
reuses the direction-aware regression gate of
:mod:`repro.quality.regress`.

Parameter sweeps build on the same machinery
(:mod:`repro.scenarios.sweep`): a :class:`SweepSpec` declares grid /
explicit / Monte-Carlo axes over one scenario, :class:`SweepRunner`
executes every point as an ordinary ledger run across a process pool,
and the finished campaign persists as a
:class:`~repro.scenarios.campaign.CampaignReport` -- with live
``sweep_*`` gauges while it runs (``repro sweep run|status|report|
diff``).

Quick use::

    from repro.scenarios import run_scenario
    outcome = run_scenario("htree-skew", {"TOTAL_LENGTH": "4e-3"})
    outcome.metrics["skew_rlc_ps"]     # recorded in the ledger
    run_scenario("htree-skew", {"TOTAL_LENGTH": "0.004"}).skipped  # True

    from repro.scenarios import SweepSpec, run_sweep
    report = run_sweep(SweepSpec("htree-skew",
                                 grid={"TOTAL_LENGTH": [3e-3, 4e-3],
                                       "ASYMMETRY": [1.2, 1.5]}),
                       workers=2)
    report.completed, report.solver_call_count
"""

from repro.scenarios.campaign import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignReport,
    diff_campaigns,
    render_campaign,
    render_campaign_entries,
)
from repro.scenarios.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    LedgerLock,
    RunLedger,
    diff_runs,
    render_entries,
    render_run,
)
from repro.scenarios.registry import (
    all_scenarios,
    discover,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.runner import (
    RunOutcome,
    compute_run_key,
    default_ledger_root,
    kit_manifest_sha,
    run_scenario,
)
from repro.scenarios.spec import Scenario, canonical_params, coerce_param
from repro.scenarios.sweep import (
    MonteCarloAxis,
    SweepProgress,
    SweepRunner,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignReport",
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "LedgerLock",
    "MonteCarloAxis",
    "RunLedger",
    "RunOutcome",
    "Scenario",
    "SweepProgress",
    "SweepRunner",
    "SweepSpec",
    "all_scenarios",
    "canonical_params",
    "coerce_param",
    "compute_run_key",
    "default_ledger_root",
    "diff_campaigns",
    "diff_runs",
    "discover",
    "get_scenario",
    "kit_manifest_sha",
    "register",
    "render_campaign",
    "render_campaign_entries",
    "render_entries",
    "render_run",
    "run_scenario",
    "run_sweep",
    "scenario_names",
    "unregister",
]
