"""Scenario registry + content-addressed run ledger.

Every experiment in this repo is a declarative
:class:`~repro.scenarios.spec.Scenario` -- a name, typed default
parameters, and a ``run(params, session)`` function -- discovered from
:mod:`repro.scenarios.catalog` and executed through one runner that
records provenance, telemetry and metrics in an append-only
:class:`~repro.scenarios.ledger.RunLedger`.  Identical requests (same
scenario + code version + canonical params + design-kit sha) are
**skipped**: the ledger replays the recorded metrics with zero field
solves.  ``repro runs list|show|diff|gc`` inspects the ledger; ``diff``
reuses the direction-aware regression gate of
:mod:`repro.quality.regress`.

Quick use::

    from repro.scenarios import run_scenario
    outcome = run_scenario("htree-skew", {"TOTAL_LENGTH": "4e-3"})
    outcome.metrics["skew_rlc_ps"]     # recorded in the ledger
    run_scenario("htree-skew", {"TOTAL_LENGTH": "0.004"}).skipped  # True
"""

from repro.scenarios.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    RunLedger,
    diff_runs,
    render_entries,
    render_run,
)
from repro.scenarios.registry import (
    all_scenarios,
    discover,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.runner import (
    RunOutcome,
    compute_run_key,
    default_ledger_root,
    kit_manifest_sha,
    run_scenario,
)
from repro.scenarios.spec import Scenario, canonical_params, coerce_param

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "RunLedger",
    "RunOutcome",
    "Scenario",
    "all_scenarios",
    "canonical_params",
    "coerce_param",
    "compute_run_key",
    "default_ledger_root",
    "diff_runs",
    "discover",
    "get_scenario",
    "kit_manifest_sha",
    "register",
    "render_entries",
    "render_run",
    "run_scenario",
    "scenario_names",
    "unregister",
]
