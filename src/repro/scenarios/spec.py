"""Declarative experiment scenarios: name + typed params + run function.

A :class:`Scenario` is the unit the registry discovers and the runner
executes: a stable name, the paper-figure group it reproduces, a dict of
**typed default parameters** (UPPERCASE names, overridable from the CLI
as ``--PARAM=value`` in the pycomex style), and a ``run(params,
session)`` callable returning a flat-ish dict of metrics.  The metrics
dict is what lands in the run ledger and what ``repro runs diff``
compares across runs, so values must be JSON-serializable scalars (or
nested dicts of them).

Parameter overrides are *coerced to the default's type* -- ``"4e-3"``
against a float default becomes ``0.004``, ``"true"`` against a bool
becomes ``True`` -- so the canonical parameter dict (and therefore the
content-addressed run key) is independent of how the value was spelled
on the command line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ScenarioError

__all__ = ["Scenario", "coerce_param", "canonical_params"]

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def coerce_param(name: str, default: object, raw: object) -> object:
    """Coerce one override *raw* to the type of *default*.

    String spellings are normalized (``"4e-3"`` -> ``0.004`` for float
    defaults, ``"true"`` -> ``True`` for bools), so equivalent
    invocations canonicalize to identical parameter dicts.
    """
    try:
        if isinstance(default, bool):
            if isinstance(raw, bool):
                return raw
            text = str(raw).strip().lower()
            if text in _TRUE:
                return True
            if text in _FALSE:
                return False
            raise ValueError(f"not a boolean: {raw!r}")
        if isinstance(default, int) and not isinstance(default, bool):
            value = float(str(raw).strip()) if not isinstance(
                raw, (int, float)) else float(raw)
            if value != int(value):
                raise ValueError(f"not an integer: {raw!r}")
            return int(value)
        if isinstance(default, float):
            return float(str(raw).strip()) if not isinstance(
                raw, (int, float)) else float(raw)
        if isinstance(default, str):
            return str(raw)
        if isinstance(default, (list, tuple)):
            if isinstance(raw, (list, tuple)):
                return list(raw)
            value = json.loads(str(raw))
            if not isinstance(value, list):
                raise ValueError(f"not a JSON list: {raw!r}")
            return value
    except (TypeError, ValueError) as exc:
        raise ScenarioError(
            f"parameter {name}={raw!r} does not coerce to "
            f"{type(default).__name__}: {exc}"
        ) from None
    raise ScenarioError(
        f"parameter {name} has unsupported default type "
        f"{type(default).__name__!r}"
    )


def canonical_params(defaults: Mapping[str, object],
                     overrides: Optional[Mapping[str, object]] = None,
                     scenario: str = "?") -> Dict[str, object]:
    """Defaults merged with coerced *overrides*, sorted by name.

    Unknown override names raise :class:`ScenarioError` listing the
    valid parameters; the returned dict is key-sorted so two spellings
    of the same request serialize identically.
    """
    params = dict(defaults)
    for name, raw in (overrides or {}).items():
        if name not in params:
            known = ", ".join(sorted(params)) or "(none)"
            raise ScenarioError(
                f"scenario {scenario!r} has no parameter {name!r} "
                f"(valid: {known})"
            )
        params[name] = coerce_param(name, params[name], raw)
    return {name: params[name] for name in sorted(params)}


@dataclass(frozen=True)
class Scenario:
    """One discoverable, parameterized, ledger-recorded experiment."""

    #: Stable registry name (kebab-case), e.g. ``"htree-skew"``.
    name: str
    #: Paper-figure group: ``"fig1"``, ``"fig5"``, ``"table1"``,
    #: ``"sec3"``, ``"sec5"``, ``"extra"`` -- used for grouping in
    #: ``repro run --list``.
    figure: str
    #: One-line description shown by ``--list``.
    description: str
    #: Typed default parameters (UPPERCASE names).
    defaults: Mapping[str, object] = field(default_factory=dict)
    #: ``run(params, session) -> dict`` of metrics.  *session* is the
    #: active :class:`~repro.telemetry.TelemetrySession` (or None) for
    #: attaching simulation/coverage sections to the run report.
    run: Callable[[Dict[str, object], object], Dict[str, object]] = None  # type: ignore[assignment]
    #: Optional ``render(metrics) -> str`` producing the human-readable
    #: console output (the legacy CLI aliases reuse it verbatim).
    render: Optional[Callable[[Dict[str, object]], str]] = None

    def params_with(self, overrides: Optional[Mapping[str, object]] = None
                    ) -> Dict[str, object]:
        """The canonical parameter dict for this scenario + *overrides*."""
        return canonical_params(self.defaults, overrides, scenario=self.name)
