"""Campaign records: the sweep-level artifact of a parameter sweep.

A sweep campaign (``repro sweep run``, :mod:`repro.scenarios.sweep`)
executes one ledger run per grid point; this module defines the
*campaign-level* record that ties those runs together:

* :class:`CampaignReport` -- per-point outcome rows keyed by canonical
  params, the merged telemetry snapshot across all points, and derived
  aggregates (throughput, solver-call count, memo hit rate).
* :func:`render_campaign` -- the ``repro sweep report`` view: outcome
  roster, per-axis marginal summaries, best/worst points per directed
  metric, and the failure roster.
* :func:`diff_campaigns` -- two campaigns compared point-by-point
  through the direction-aware bench gate (``repro sweep diff``).

Campaign records persist in the run ledger (``campaigns/<id>/``) next
to the per-point runs they reference, so a campaign is replayable and
auditable long after the sweep process exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsSnapshot, is_solver_counter

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignReport",
    "render_campaign",
    "render_campaign_entries",
    "diff_campaigns",
]

CAMPAIGN_SCHEMA_VERSION = 1


def _fmt_value(value: object) -> str:
    """Compact display of one parameter value (``0.003``, ``4``)."""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:g}"
    return str(value)


def _point_label(params: Dict[str, object],
                 varying: List[str]) -> str:
    """A stable short label for one grid point (``L=0.003,ASYM=1.2``)."""
    names = varying or sorted(params)
    return ",".join(f"{n}={_fmt_value(params.get(n))}" for n in names)


def _numeric_metrics(row: dict) -> Dict[str, float]:
    """The flattenable scalar metrics of one point row."""
    from repro.quality.regress import flatten_metrics

    metrics = row.get("metrics") or {}
    if not isinstance(metrics, dict):
        return {}
    return flatten_metrics(metrics)


@dataclass
class CampaignReport:
    """Everything ``repro sweep`` knows about one finished campaign."""

    sweep_id: str
    scenario: str
    spec: Dict[str, object] = field(default_factory=dict)
    points: List[dict] = field(default_factory=list)
    telemetry: Dict[str, object] = field(default_factory=dict)
    workers: int = 1
    started_at: float = 0.0
    duration: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)
    campaign_id: str = ""

    # -- aggregates --------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def completed(self) -> int:
        return sum(1 for p in self.points
                   if p.get("status") == "completed")

    @property
    def failed_count(self) -> int:
        return sum(1 for p in self.points if p.get("status") == "failed")

    @property
    def skipped_count(self) -> int:
        return sum(1 for p in self.points if p.get("skipped"))

    @property
    def points_per_second(self) -> float:
        if self.duration <= 0.0:
            return 0.0
        return self.total / self.duration

    def merged_snapshot(self) -> MetricsSnapshot:
        """The telemetry merged across every point's worker delta."""
        return MetricsSnapshot.from_dict(self.telemetry)

    @property
    def solver_call_count(self) -> int:
        """Real solver work done by the whole campaign.

        Zero on a fully ledger-replayed re-run -- the resumability
        acceptance check asserts exactly this.
        """
        snap = self.merged_snapshot()
        return int(sum(v for name, v in snap.counters.items()
                       if is_solver_counter(name)))

    @property
    def memo_hit_rate(self) -> float:
        return self.merged_snapshot().memo_hit_rate

    # -- structure ---------------------------------------------------
    def varying_params(self) -> List[str]:
        """Parameter names that actually vary across points."""
        spec_varying = self.spec.get("varying") if self.spec else None
        if spec_varying:
            return [str(n) for n in spec_varying]
        seen: Dict[str, set] = {}
        for row in self.points:
            for name, value in (row.get("params") or {}).items():
                seen.setdefault(name, set()).add(repr(value))
        return sorted(n for n, vals in seen.items() if len(vals) > 1)

    def grid_axes(self) -> Dict[str, List[object]]:
        """Grid axes as recorded in the spec (name -> level values)."""
        grid = self.spec.get("grid") if self.spec else None
        if not isinstance(grid, dict):
            return {}
        return {str(k): list(v) for k, v in grid.items()}

    def mc_axes(self) -> Dict[str, str]:
        """Monte-Carlo axes as recorded in the spec (name -> dist)."""
        mc = self.spec.get("mc") if self.spec else None
        if not isinstance(mc, dict):
            return {}
        return {str(k): str(v) for k, v in mc.items()}

    def failures(self) -> List[dict]:
        return [p for p in self.points if p.get("status") == "failed"]

    # -- marginal summaries ------------------------------------------
    def axis_summaries(self) -> Dict[str, List[dict]]:
        """Per-axis marginals: metric mean/min/max at each grid level.

        Grid axes get one row per level, averaged over all completed
        points sharing that level (the marginal over the other axes).
        Monte-Carlo axes get a single sampled-range row instead, since
        every draw is distinct.
        """
        completed = [p for p in self.points
                     if p.get("status") == "completed"]
        out: Dict[str, List[dict]] = {}
        for axis, levels in sorted(self.grid_axes().items()):
            rows: List[dict] = []
            for level in levels:
                group = [p for p in completed
                         if (p.get("params") or {}).get(axis) == level]
                stats: Dict[str, Dict[str, float]] = {}
                names = sorted({n for p in group
                                for n in _numeric_metrics(p)})
                for name in names:
                    vals = [_numeric_metrics(p)[name] for p in group
                            if name in _numeric_metrics(p)]
                    if vals:
                        stats[name] = {
                            "mean": sum(vals) / len(vals),
                            "min": min(vals),
                            "max": max(vals),
                        }
                rows.append({"level": level, "count": len(group),
                             "metrics": stats})
            out[axis] = rows
        for axis, dist in sorted(self.mc_axes().items()):
            draws = [(p.get("params") or {}).get(axis)
                     for p in completed]
            draws = [d for d in draws if isinstance(d, (int, float))]
            row = {"level": dist, "count": len(draws), "metrics": {}}
            if draws:
                row["sampled_min"] = min(draws)
                row["sampled_max"] = max(draws)
            out[axis] = [row]
        return out

    def extremes(self) -> Dict[str, Dict[str, dict]]:
        """Best/worst point per *directed* metric.

        Only metrics with a known direction-of-goodness (``*_seconds``
        lower, ``*speedup`` higher, ...) participate -- "best" is
        meaningless for informational counters.
        """
        from repro.quality.regress import metric_direction

        completed = [p for p in self.points
                     if p.get("status") == "completed"]
        varying = self.varying_params()
        out: Dict[str, Dict[str, dict]] = {}
        names = sorted({n for p in completed for n in _numeric_metrics(p)})
        for name in names:
            direction = metric_direction(name)
            if direction is None:
                continue
            scored: List[Tuple[float, dict]] = [
                (_numeric_metrics(p)[name], p) for p in completed
                if name in _numeric_metrics(p)
            ]
            if len(scored) < 2:
                continue
            scored.sort(key=lambda sv: sv[0])
            lo, hi = scored[0], scored[-1]
            best, worst = (lo, hi) if direction == "lower" else (hi, lo)
            out[name] = {
                "best": {"value": best[0],
                         "label": _point_label(
                             best[1].get("params") or {}, varying),
                         "run_id": best[1].get("run_id", "")},
                "worst": {"value": worst[0],
                          "label": _point_label(
                              worst[1].get("params") or {}, varying),
                          "run_id": worst[1].get("run_id", "")},
            }
        return out

    # -- serialization -----------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The compact dict embedded in RunReports and ``--json`` out."""
        return {
            "campaign_id": self.campaign_id,
            "sweep_id": self.sweep_id,
            "scenario": self.scenario,
            "points": self.total,
            "completed": self.completed,
            "failed": self.failed_count,
            "skipped": self.skipped_count,
            "workers": self.workers,
            "duration": self.duration,
            "points_per_second": self.points_per_second,
            "solver_call_count": self.solver_call_count,
            "memo_hit_rate": self.memo_hit_rate,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "campaign_id": self.campaign_id,
            "sweep_id": self.sweep_id,
            "scenario": self.scenario,
            "spec": dict(self.spec),
            "points": [dict(p) for p in self.points],
            "telemetry": dict(self.telemetry),
            "workers": self.workers,
            "started_at": self.started_at,
            "duration": self.duration,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        version = int(data.get("schema_version", 0))
        if version > CAMPAIGN_SCHEMA_VERSION:
            raise ValueError(
                f"campaign record schema v{version} is newer than this "
                f"code understands (v{CAMPAIGN_SCHEMA_VERSION})")
        return cls(
            sweep_id=str(data.get("sweep_id", "")),
            scenario=str(data.get("scenario", "")),
            spec=dict(data.get("spec") or {}),
            points=[dict(p) for p in (data.get("points") or [])],
            telemetry=dict(data.get("telemetry") or {}),
            workers=int(data.get("workers", 1)),
            started_at=float(data.get("started_at", 0.0)),
            duration=float(data.get("duration", 0.0)),
            meta=dict(data.get("meta") or {}),
            campaign_id=str(data.get("campaign_id", "")),
        )


# ----------------------------------------------------------------------
# rendering (the `repro sweep` subcommands)
# ----------------------------------------------------------------------
def render_campaign(report: CampaignReport) -> str:
    """The full ``repro sweep report`` text for one campaign."""
    varying = report.varying_params()
    head = report.campaign_id or report.sweep_id[:12]
    lines = [
        f"campaign {head}  scenario {report.scenario}",
        f"  {report.total} point(s): {report.completed} completed, "
        f"{report.failed_count} failed, {report.skipped_count} "
        f"replayed from ledger",
        f"  workers {report.workers}  wall {report.duration:.2f}s  "
        f"{report.points_per_second:.2f} pt/s",
        f"  solver calls {report.solver_call_count}  "
        f"memo hit rate {report.memo_hit_rate:.1%}",
    ]
    if varying:
        lines.append(f"  varying: {', '.join(varying)}")

    lines.append("")
    lines.append("  points:")
    for row in report.points:
        label = _point_label(row.get("params") or {}, varying)
        status = str(row.get("status", "?"))
        if row.get("skipped"):
            status += " (replayed)"
        lines.append(
            f"    {row.get('run_id', '?'):<16} {label:<40} {status}")

    summaries = report.axis_summaries()
    if summaries:
        lines.append("")
        lines.append("  per-axis marginals:")
        for axis, rows in summaries.items():
            lines.append(f"    axis {axis}:")
            for entry in rows:
                level = _fmt_value(entry["level"])
                if "sampled_min" in entry:
                    lines.append(
                        f"      {level}: {entry['count']} draw(s) in "
                        f"[{_fmt_value(entry['sampled_min'])}, "
                        f"{_fmt_value(entry['sampled_max'])}]")
                    continue
                lines.append(
                    f"      {axis}={level}  ({entry['count']} point(s))")
                for name, stats in sorted(entry["metrics"].items()):
                    lines.append(
                        f"        {name:<32} mean {stats['mean']:.6g}  "
                        f"[{stats['min']:.6g}, {stats['max']:.6g}]")

    extremes = report.extremes()
    if extremes:
        lines.append("")
        lines.append("  best/worst points (directed metrics):")
        for name, ends in sorted(extremes.items()):
            lines.append(
                f"    {name}: best {ends['best']['value']:.6g} at "
                f"{ends['best']['label']} ({ends['best']['run_id']}), "
                f"worst {ends['worst']['value']:.6g} at "
                f"{ends['worst']['label']} ({ends['worst']['run_id']})")

    failures = report.failures()
    if failures:
        lines.append("")
        lines.append("  failures:")
        for row in failures:
            label = _point_label(row.get("params") or {}, varying)
            lines.append(
                f"    {row.get('run_id') or '(no run)':<16} {label}: "
                f"{row.get('error', 'unknown error')}")
    return "\n".join(lines) + "\n"


def render_campaign_entries(rows: List[dict]) -> str:
    """An aligned campaign index table (``repro sweep status``)."""
    if not rows:
        return "no campaigns recorded\n"
    import time as _time

    lines = [f"  {'campaign id':<16} {'scenario':<20} {'points':>6} "
             f"{'failed':>6} {'replayed':>8} {'when':<19} {'wall':>8}"]
    for row in rows:
        when = _time.strftime(
            "%Y-%m-%d %H:%M:%S",
            _time.localtime(float(row.get("started_at", 0.0))))
        lines.append(
            f"  {str(row.get('campaign_id', '?')):<16} "
            f"{str(row.get('scenario', '?')):<20} "
            f"{int(row.get('points', 0)):>6} "
            f"{int(row.get('failed', 0)):>6} "
            f"{int(row.get('skipped', 0)):>8} {when:<19} "
            f"{float(row.get('duration', 0.0)):7.2f}s")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# campaign-vs-campaign diff (the `repro sweep diff` gate)
# ----------------------------------------------------------------------
def _campaign_view(report: CampaignReport) -> dict:
    """Flatten one campaign to a bench-record-shaped metric dict.

    Per completed point, metrics flatten under the point's varying-
    param label (``TOTAL_LENGTH=0.003,ASYMMETRY=1.2.delay_seconds``);
    the campaign-level throughput rides along.  Points are matched
    across campaigns by label, so two campaigns over the same grid
    compare point-by-point regardless of execution order.
    """
    varying = report.varying_params()
    flat: Dict[str, object] = {
        "duration": report.duration,
        "campaign": {"points_per_second": report.points_per_second},
    }
    for row in report.points:
        if row.get("status") != "completed":
            continue
        label = _point_label(row.get("params") or {}, varying)
        metrics = _numeric_metrics(row)
        if metrics:
            flat[label] = dict(metrics)
    return flat


def diff_campaigns(baseline: CampaignReport, candidate: CampaignReport,
                   threshold: float = 0.25, mad_k: float = 3.0):
    """Compare two campaigns through the direction-aware bench gate.

    Returns a :class:`repro.quality.regress.BenchDiff`; ``.passed`` is
    False when any directed per-point metric regressed past the gate,
    and ``.nothing_compared`` is True when the campaigns share no real
    point metrics (disjoint grids) -- the synthetic wall-clock entries
    alone do not count as a comparison.
    """
    from repro.quality.regress import diff_benches

    diff = diff_benches([_campaign_view(baseline)],
                        _campaign_view(candidate),
                        threshold=threshold, mad_k=mad_k)
    diff.synthetic = ["duration", "campaign.points_per_second"]
    return diff
