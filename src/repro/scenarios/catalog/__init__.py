"""Scenario catalog: modules here are auto-discovered by the registry.

Each module registers one or more :class:`~repro.scenarios.spec.Scenario`
objects at import time via :func:`repro.scenarios.registry.register`.
``paper`` wraps the seven ``repro.experiments`` reproduction modules;
``extras`` carries the workloads promoted from the examples (bus
crosstalk, statistical variation skew).
"""
