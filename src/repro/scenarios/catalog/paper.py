"""The seven paper experiments as registered scenarios.

One scenario per ``repro.experiments`` module, with the experiment's
knobs exposed as typed UPPERCASE parameters (lengths/times in SI units,
frequencies in Hz) and the headline numbers returned as the metrics
dict the run ledger stores and diffs.  The ``render`` functions are the
single source of the human console output -- the legacy ``repro fig1``
/ ``repro skew`` / ``repro accuracy`` aliases print exactly these.
"""

from __future__ import annotations

from typing import Dict

from repro.constants import to_GHz, to_nH, to_pF, to_ps
from repro.scenarios.registry import register
from repro.scenarios.spec import Scenario


# ----------------------------------------------------------------------
# Figs. 1-3: CPW clock-net delay RC vs RLC
# ----------------------------------------------------------------------
def _run_fig1(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_fig1

    result = run_fig1(
        length=params["LENGTH"],
        drive_resistance=params["DRIVE_RESISTANCE"],
        supply=params["SUPPLY"],
        rise_time=params["RISE_TIME"],
        sections=params["SECTIONS"],
    )
    if session is not None:
        session.add_simulation(result.simulation_reports())
    return {
        "length_um": float(params["LENGTH"]) * 1e6,
        "resistance_ohm": result.rlc.resistance,
        "inductance_nh": to_nH(result.rlc.inductance),
        "capacitance_pf": to_pF(result.rlc.capacitance),
        "delay_rc_ps": to_ps(result.delay_rc),
        "delay_rlc_ps": to_ps(result.delay_rlc),
        "delay_ratio": result.delay_ratio,
        "overshoot_percent": result.overshoot_rlc * 100.0,
        "undershoot_percent": result.undershoot_rlc * 100.0,
    }


def _render_fig1(m: Dict[str, object]) -> str:
    return "\n".join([
        f"Fig. 1 co-planar waveguide clock net ({m['length_um']:.0f} um)",
        f"  extracted R = {m['resistance_ohm']:8.2f} ohm",
        f"  extracted L = {m['inductance_nh']:8.3f} nH",
        f"  extracted C = {m['capacitance_pf']:8.3f} pF",
        f"  delay RC   = {m['delay_rc_ps']:7.2f} ps   (paper: 28.01 ps)",
        f"  delay RLC  = {m['delay_rlc_ps']:7.2f} ps   (paper: 47.60 ps)",
        f"  delay ratio = {m['delay_ratio']:5.2f}          (paper: 1.70)",
        f"  overshoot  = {m['overshoot_percent']:5.1f} %",
        f"  undershoot = {m['undershoot_percent']:5.1f} %",
    ])


register(Scenario(
    name="fig1-delay",
    figure="fig1",
    description="Figs. 1-3: CPW clock net delay RC vs RLC, over/undershoot",
    defaults={
        "LENGTH": 6e-3,
        "DRIVE_RESISTANCE": 15.0,
        "SUPPLY": 1.8,
        "RISE_TIME": 50e-12,
        "SECTIONS": 10,
    },
    run=_run_fig1,
    render=_render_fig1,
))


# ----------------------------------------------------------------------
# Fig. 5: loop-L matrix over a plane + Foundations 1/2
# ----------------------------------------------------------------------
def _run_fig5(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_fig5

    result = run_fig5(
        n_traces=params["N_TRACES"],
        length=params["LENGTH"],
        frequency=params["FREQUENCY"],
    )
    f1, f2 = result.foundation1, result.foundation2
    return {
        "n_traces": len(result.trace_names),
        "frequency_ghz": to_GHz(result.frequency),
        "loop_l11_nh": to_nH(float(result.loop_matrix[0, 0])),
        "loop_l12_nh": to_nH(float(result.loop_matrix[0, 1])),
        "foundation1_error_percent": f1.relative_error * 100.0,
        "foundation2_error_percent": f2.relative_error * 100.0,
        "max_foundation_error_percent": result.max_foundation_error * 100.0,
    }


def _render_fig5(m: Dict[str, object]) -> str:
    return "\n".join([
        f"Fig. 5 loop inductance over a plane "
        f"({m['n_traces']} traces at {m['frequency_ghz']:.1f} GHz)",
        f"  L11 = {m['loop_l11_nh']:.4f} nH, L12 = {m['loop_l12_nh']:.4f} nH",
        f"  Foundation 1 error: {m['foundation1_error_percent']:.2f} %",
        f"  Foundation 2 error: {m['foundation2_error_percent']:.2f} %",
    ])


register(Scenario(
    name="fig5-foundations",
    figure="fig5",
    description="Fig. 5: loop-L matrix over a plane; Foundations 1 and 2",
    defaults={
        "N_TRACES": 5,
        "LENGTH": 2e-3,
        "FREQUENCY": 1e9,
    },
    run=_run_fig5,
    render=_render_fig5,
))


# ----------------------------------------------------------------------
# Table I: linear cascading comparison
# ----------------------------------------------------------------------
def _run_table1(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_table1

    result = run_table1(frequency=params["FREQUENCY"])
    metrics: Dict[str, object] = {
        "frequency_ghz": to_GHz(result.frequency),
    }
    worst = 0.0
    for row in result.rows:
        metrics[f"{row.name}_error_percent"] = row.error_percent
        metrics[f"{row.name}_full_nh"] = to_nH(row.comparison.full_inductance)
        worst = max(worst, abs(row.error_percent))
    metrics["max_error_percent"] = worst
    return metrics


def _render_table1(m: Dict[str, object]) -> str:
    lines = [
        f"Table I linear cascading at {m['frequency_ghz']:.1f} GHz "
        "(paper errors: 3.57 %, 1.55 %)"
    ]
    for key in sorted(m):
        if key.endswith("_error_percent") and key != "max_error_percent":
            name = key[:-len("_error_percent")]
            lines.append(
                f"  {name:>10}: full {m[f'{name}_full_nh']:.4f} nH, "
                f"cascading error {m[key]:.2f} %"
            )
    return "\n".join(lines)


register(Scenario(
    name="table1-cascading",
    figure="table1",
    description="Table I: linear cascading error on the Fig. 6 trees",
    defaults={"FREQUENCY": 3e9},
    run=_run_table1,
    render=_render_table1,
))


# ----------------------------------------------------------------------
# Sec. V: super-linear inductance length scaling
# ----------------------------------------------------------------------
def _run_scaling(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_length_scaling

    result = run_length_scaling(
        width=params["WIDTH"],
        thickness=params["THICKNESS"],
        pitch=params["PITCH"],
    )
    import numpy as np

    nearest_2000um = int(np.argmin(np.abs(result.lengths - 2e-3)))
    return {
        "doubling_ratio_1000um": result.doubling_ratio(1e-3),
        "mutual_doubling_ratio_1000um": result.mutual_doubling_ratio(1e-3),
        "per_length_slope_growth": result.per_length_slope_growth,
        "self_l_2000um_nh": to_nH(float(
            result.self_inductance[nearest_2000um]
        )),
    }


def _render_scaling(m: Dict[str, object]) -> str:
    return "\n".join([
        "Super-linear inductance length scaling (Sec. V)",
        f"  L(2000um)/L(1000um) = {m['doubling_ratio_1000um']:.3f} "
        "(paper: about 2.2)",
        f"  mutual doubling ratio = {m['mutual_doubling_ratio_1000um']:.3f}",
        f"  per-length slope growth = {m['per_length_slope_growth']:.3f}",
    ])


register(Scenario(
    name="length-scaling",
    figure="sec5",
    description="Sec. V: super-linear L(length) doubling ratios",
    defaults={
        "WIDTH": 5e-6,
        "THICKNESS": 2e-6,
        "PITCH": 1e-5,
    },
    run=_run_scaling,
    render=_render_scaling,
))


# ----------------------------------------------------------------------
# Sec. III: table accuracy and speedup
# ----------------------------------------------------------------------
def _run_accuracy(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_table_accuracy

    result = run_table_accuracy(frequency=params["FREQUENCY"])
    probes: Dict[str, object] = {}
    for probe in result.probes:
        key = f"w{probe.width * 1e6:g}_l{probe.length * 1e6:g}"
        probes[key] = {
            "width_um": probe.width * 1e6,
            "length_um": probe.length * 1e6,
            "table_nh": to_nH(probe.table_inductance),
            "direct_nh": to_nH(probe.direct_inductance),
            "error_percent": probe.relative_error * 100.0,
            "speedup": probe.speedup,
        }
    return {
        "characterization_seconds": result.characterization_time,
        "max_error_percent": result.max_error * 100.0,
        "mean_error_percent": result.mean_error * 100.0,
        "mean_speedup": result.mean_speedup,
        "probes": probes,
    }


def _render_accuracy(m: Dict[str, object]) -> str:
    lines = [
        "Table-based extraction accuracy and speed (Sec. III)",
        f"  characterization time: {m['characterization_seconds']:.2f} s",
        f"  {'width [um]':>11} {'length [um]':>12} {'table [nH]':>11} "
        f"{'direct [nH]':>12} {'error':>8} {'speedup':>9}",
    ]
    for probe in m.get("probes", {}).values():
        lines.append(
            f"  {probe['width_um']:11.1f} {probe['length_um']:12.0f} "
            f"{probe['table_nh']:11.4f} {probe['direct_nh']:12.4f} "
            f"{probe['error_percent']:7.2f}% {probe['speedup']:8.0f}x"
        )
    return "\n".join(lines)


register(Scenario(
    name="table-accuracy",
    figure="sec3",
    description="Sec. III: table interpolation accuracy + lookup speedup",
    defaults={"FREQUENCY": 3.2e9},
    run=_run_accuracy,
    render=_render_accuracy,
))


# ----------------------------------------------------------------------
# Sec. V: H-tree skew RC vs RLC (the > 10 % claim)
# ----------------------------------------------------------------------
def _run_htree_skew(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_htree_skew
    from repro.experiments.htree_skew import default_htree

    htree = default_htree(
        levels=params["LEVELS"],
        root_length=params["TOTAL_LENGTH"],
        asymmetry=params["ASYMMETRY"],
    )
    result = run_htree_skew(
        htree=htree,
        t_stop=params["T_STOP"],
        dt=params["DT"],
        library=params["LIBRARY"] or None,
        solver=params["SOLVER"],
    )
    if session is not None:
        session.add_simulation(result.comparison.simulation_reports())
    return {
        "num_sinks": result.htree.num_sinks,
        "num_levels": result.htree.num_levels,
        "skew_rc_ps": to_ps(result.rc_skew),
        "skew_rlc_ps": to_ps(result.rlc_skew),
        "skew_discrepancy_percent": result.skew_discrepancy_percent,
        "delay_discrepancy_percent": result.delay_discrepancy_percent,
    }


def _render_htree_skew(m: Dict[str, object]) -> str:
    return "\n".join([
        "H-tree clock skew, RC-only vs RLC netlist (Sec. V)",
        f"  sinks: {m['num_sinks']}, levels: {m['num_levels']}",
        f"  skew RC  = {m['skew_rc_ps']:7.2f} ps",
        f"  skew RLC = {m['skew_rlc_ps']:7.2f} ps",
        f"  skew discrepancy  = {m['skew_discrepancy_percent']:5.1f} % "
        "(paper: can exceed 10 %)",
        f"  delay discrepancy = {m['delay_discrepancy_percent']:5.1f} %",
    ])


register(Scenario(
    name="htree-skew",
    figure="sec5",
    description="Sec. V: asymmetric H-tree clock skew RC vs RLC",
    defaults={
        "LEVELS": 2,
        "TOTAL_LENGTH": 4e-3,
        "ASYMMETRY": 1.5,
        "T_STOP": 3e-9,
        "DT": 5e-13,
        "LIBRARY": "",
        "SOLVER": "auto",
    },
    run=_run_htree_skew,
    render=_render_htree_skew,
))


# ----------------------------------------------------------------------
# Sec. V: process variation -- statistical RC, nominal L
# ----------------------------------------------------------------------
def _run_variation(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_process_variation

    result = run_process_variation(
        n_rc_samples=params["N_RC_SAMPLES"],
        n_l_samples=params["N_L_SAMPLES"],
        length=params["LENGTH"],
        frequency=params["FREQUENCY"],
        seed=params["SEED"],
    )
    return {
        "r_spread_percent": result.r_spread * 100.0,
        "c_spread_percent": result.c_spread * 100.0,
        "l_spread_percent": result.l_spread * 100.0,
        "l_insensitivity_factor": result.l_insensitivity_factor,
    }


def _render_variation(m: Dict[str, object]) -> str:
    return "\n".join([
        "Process variation: statistical RC vs nominal L (Sec. V)",
        f"  R spread (sigma/mean) = {m['r_spread_percent']:5.2f} %",
        f"  C spread (sigma/mean) = {m['c_spread_percent']:5.2f} %",
        f"  L spread (sigma/mean) = {m['l_spread_percent']:5.2f} %",
        f"  L is {m['l_insensitivity_factor']:.1f}x steadier than R/C "
        "-- nominal-L + statistical-RC is justified",
    ])


register(Scenario(
    name="process-variation",
    figure="sec5",
    description="Sec. V: R/C/L spread under process variation",
    defaults={
        "N_RC_SAMPLES": 200,
        "N_L_SAMPLES": 25,
        "LENGTH": 2e-3,
        "FREQUENCY": 3.2e9,
        "SEED": 7,
    },
    run=_run_variation,
    render=_render_variation,
))
