"""Scenarios promoted from the examples: workloads beyond the figures.

``bus-crosstalk`` is the aggressor/victim noise study the
``examples/bus_crosstalk.py`` script (and ``repro crosstalk``) runs;
``variation-skew`` is the paper's ref-[4] setup -- Monte-Carlo
statistical RC with nominal L propagated to a clock-skew distribution
-- previously reachable only from ``examples/process_variation_study``.
Registering them makes both reproducible, provenance-stamped ledger
runs instead of stdout-only scripts.
"""

from __future__ import annotations

from typing import Dict

from repro.constants import to_ps
from repro.scenarios.registry import register
from repro.scenarios.spec import Scenario


# ----------------------------------------------------------------------
# wide-bus aggressor/victim crosstalk
# ----------------------------------------------------------------------
def _run_bus_crosstalk(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.bus import BusRLCExtractor, crosstalk_analysis
    from repro.geometry.trace import TraceBlock
    from repro.rc.capacitance import CapacitanceModel

    n = int(params["N_TRACES"])
    block = TraceBlock.from_widths_and_spacings(
        widths=[params["WIDTH"]] * n,
        spacings=[params["SPACING"]] * (n - 1),
        length=params["LENGTH"],
        thickness=params["THICKNESS"],
    )
    extractor = BusRLCExtractor(
        frequency=params["FREQUENCY"],
        capacitance_model=CapacitanceModel(
            height_below=params["HEIGHT_BELOW"]),
    )
    bus = extractor.extract(block)
    aggressor = f"T{(n + 1) // 2}"
    full = crosstalk_analysis(extractor, bus, aggressor=aggressor)
    cap_only = crosstalk_analysis(extractor, bus, aggressor=aggressor,
                                  include_mutual=False)
    victims: Dict[str, object] = {}
    worst_full = 0.0
    for victim in sorted(full.victim_noise_peak):
        full_mv = full.noise_of(victim) * 1e3
        cap_mv = cap_only.noise_of(victim) * 1e3
        victims[victim] = {"full_mv": full_mv, "cap_only_mv": cap_mv}
        worst_full = max(worst_full, full_mv)
    return {
        "aggressor": aggressor,
        "n_traces": n,
        "worst_victim_noise_mv": worst_full,
        "victims": victims,
    }


def _render_bus_crosstalk(m: Dict[str, object]) -> str:
    lines = [
        f"{m['n_traces']}-trace bus crosstalk, aggressor {m['aggressor']} "
        "(outer traces are shields)",
        f"  {'victim':>7} {'full RLC':>12} {'cap-only':>12}",
    ]
    for victim in sorted(m.get("victims", {})):
        noise = m["victims"][victim]
        lines.append(f"  {victim:>7} {noise['full_mv']:9.1f} mV "
                     f"{noise['cap_only_mv']:9.1f} mV")
    lines.append("  inductive coupling is long-range: far victims lose most")
    lines.append("  of their noise when the mutual inductances are dropped.")
    return "\n".join(lines)


register(Scenario(
    name="bus-crosstalk",
    figure="extra",
    description="Wide-bus aggressor/victim noise, full RLC vs cap-only",
    defaults={
        "N_TRACES": 7,
        "WIDTH": 2e-6,
        "SPACING": 2e-6,
        "LENGTH": 2e-3,
        "THICKNESS": 1e-6,
        "HEIGHT_BELOW": 2e-6,
        "FREQUENCY": 6.4e9,
    },
    run=_run_bus_crosstalk,
    render=_render_bus_crosstalk,
))


# ----------------------------------------------------------------------
# Monte-Carlo skew: statistical RC x nominal L (paper ref [4] setup)
# ----------------------------------------------------------------------
def _run_variation_skew(params: Dict[str, object], session) -> Dict[str, object]:
    from repro.experiments import run_variation_skew

    result = run_variation_skew(
        n_samples=params["N_SAMPLES"],
        seed=params["SEED"],
    )
    return {
        "n_samples": int(params["N_SAMPLES"]),
        "nominal_skew_ps": to_ps(result.nominal_skew),
        "worst_skew_ps": to_ps(result.worst_skew),
        "skew_spread": result.skew_spread,
        "delay_spread": result.delay_spread,
    }


def _render_variation_skew(m: Dict[str, object]) -> str:
    return "\n".join([
        "Monte-Carlo skew: statistical RC x nominal L (Sec. V, ref [4])",
        f"  samples: {m['n_samples']}",
        f"  nominal skew = {m['nominal_skew_ps']:7.2f} ps",
        f"  worst skew   = {m['worst_skew_ps']:7.2f} ps",
        f"  skew spread (sigma/mean)  = {m['skew_spread'] * 100.0:5.2f} %",
        f"  delay spread (sigma/mean) = {m['delay_spread'] * 100.0:5.2f} %",
    ])


register(Scenario(
    name="variation-skew",
    figure="extra",
    description="Monte-Carlo clock-skew distribution: statistical RC, nominal L",
    defaults={"N_SAMPLES": 15, "SEED": 11},
    run=_run_variation_skew,
    render=_render_variation_skew,
))
