"""Execute scenarios: content-addressed run keys, skip-if-done, ledger.

``run_scenario`` is the one code path every experiment invocation takes
-- ``repro run <scenario>``, the legacy ``repro fig1/skew/accuracy``
aliases, and tests all land here.  The flow:

1. canonicalize params (``spec.canonical_params``) so spelling variants
   of the same request collapse;
2. compute the **run key** -- sha256 of scenario name + code version +
   canonical params + kit-manifest sha (``library/store.py`` keying);
3. ask the ledger for a *completed* run of that key; if present and not
   ``--force``, **skip** -- zero solver calls, the cached metrics are
   replayed;
4. otherwise run inside a :func:`~repro.telemetry.telemetry_session`,
   capture structured logs, and record metrics + RunReport + provenance
   in the ledger (status ``failed`` on exception, then re-raise as
   :class:`~repro.errors.ScenarioRunError`).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.errors import ScenarioError, ScenarioRunError
from repro.library.store import cache_key
from repro.scenarios.ledger import LedgerEntry, RunLedger
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import Scenario

__all__ = ["RunOutcome", "compute_run_key", "default_ledger_root",
           "kit_manifest_sha", "run_scenario"]

#: Bump to invalidate every existing run key (e.g. when a scenario's
#: metric semantics change incompatibly).
CODE_VERSION = 1

#: Environment override for the ledger location; default is a
#: ``.repro/runs`` directory under the current working tree.
LEDGER_ENV = "REPRO_LEDGER"


def default_ledger_root() -> Path:
    """``$REPRO_LEDGER`` when set, else ``.repro/runs`` in the cwd."""
    env = os.environ.get(LEDGER_ENV, "").strip()
    return Path(env) if env else Path(".repro") / "runs"


def kit_manifest_sha(params: Mapping[str, object]) -> str:
    """sha256 of the design-kit manifest a run depends on, or ``""``.

    Scenarios that read a characterized table library expose it as a
    ``LIBRARY`` parameter; hashing its ``manifest.json`` text (the same
    fingerprint the serve daemon uses) folds the kit contents into the
    run key, so a re-characterized kit never skip-matches stale runs.
    """
    library = str(params.get("LIBRARY", "") or "").strip()
    if not library:
        return ""
    manifest = Path(library) / "manifest.json"
    if not manifest.exists():
        raise ScenarioError(
            f"LIBRARY={library!r} has no manifest.json -- not a table "
            "library (build one with `repro characterize`)")
    return hashlib.sha256(manifest.read_text().encode("utf-8")).hexdigest()


def compute_run_key(scenario: Union[str, Scenario],
                    params: Mapping[str, object],
                    kit_sha: str = "") -> str:
    """The content address of one scenario request."""
    name = scenario.name if isinstance(scenario, Scenario) else str(scenario)
    return cache_key({
        "kind": "scenario-run",
        "scenario": name,
        "code_version": CODE_VERSION,
        "params": dict(params),
        "kit_manifest_sha": kit_sha,
    })


@dataclass
class RunOutcome:
    """What one ``run_scenario`` call produced (or replayed)."""

    entry: LedgerEntry
    metrics: Dict[str, object]
    params: Dict[str, object]
    run_key: str
    skipped: bool = False
    report: object = None

    @property
    def run_id(self) -> str:
        return self.entry.run_id


def _capture_logs_since(baseline: list) -> list:
    """Log-ring records appended after *baseline* was snapshotted."""
    from repro.telemetry.logs import get_log_ring

    seen = {id(r) for r in baseline}
    return [r for r in get_log_ring().records() if id(r) not in seen]


def run_scenario(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    *,
    ledger: Optional[RunLedger] = None,
    force: bool = False,
    command: Optional[str] = None,
    telemetry_path: Optional[Union[str, Path]] = None,
) -> RunOutcome:
    """Run (or skip-replay) one scenario; returns a :class:`RunOutcome`.

    *ledger* defaults to :func:`default_ledger_root`.  With *force*
    False, a completed ledger run of the identical request is replayed
    without executing anything.  *command* labels the telemetry session
    (defaults to ``repro run <name>``); *telemetry_path* additionally
    saves the RunReport JSON there, mirroring ``--telemetry`` on the
    legacy commands.
    """
    from repro.quality.regress import run_metadata
    from repro.telemetry import telemetry_session
    from repro.telemetry.logs import get_log_ring

    scenario = get_scenario(name)
    params = scenario.params_with(overrides)
    kit_sha = kit_manifest_sha(params)
    run_key = compute_run_key(scenario, params, kit_sha)
    if ledger is None:
        ledger = RunLedger(default_ledger_root())

    if not force:
        hit = ledger.find_completed(run_key)
        if hit is not None:
            run = ledger.load_run(hit.run_id)
            return RunOutcome(
                entry=hit,
                metrics=dict(run.get("metrics") or {}),
                params=dict(run.get("params") or params),
                run_key=run_key,
                skipped=True,
                report=ledger.load_report(hit.run_id),
            )

    label = command or f"repro run {scenario.name}"
    log_baseline = get_log_ring().records()
    started = time.time()
    meta = run_metadata()
    try:
        with telemetry_session(label) as session:
            session.add_meta(scenario=scenario.name, run_key=run_key)
            metrics = scenario.run(dict(params), session)
        report = session.report
    except Exception as exc:  # noqa: BLE001 -- recorded, then re-raised
        entry = ledger.record(
            scenario=scenario.name,
            run_key=run_key,
            params=params,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            meta=meta,
            kit_manifest_sha=kit_sha,
            duration=time.time() - started,
            started_at=started,
            logs=_capture_logs_since(log_baseline),
        )
        raise ScenarioRunError(
            f"scenario {scenario.name!r} failed "
            f"({type(exc).__name__}: {exc}); recorded as run "
            f"{entry.run_id}", run_id=entry.run_id) from exc

    if not isinstance(metrics, dict):
        raise ScenarioError(
            f"scenario {scenario.name!r} returned "
            f"{type(metrics).__name__}, expected a metrics dict")
    # The scenario completed: the command's exit code is 0 by
    # construction (failures raised above).  Stamped so saved reports
    # keep the contract the telemetry-wrapping dispatcher established.
    report.meta.setdefault("exit_code", 0)
    entry = ledger.record(
        scenario=scenario.name,
        run_key=run_key,
        params=params,
        metrics=metrics,
        status="completed",
        meta=meta,
        kit_manifest_sha=kit_sha,
        duration=time.time() - started,
        started_at=started,
        report=report,
        logs=_capture_logs_since(log_baseline),
    )
    if telemetry_path is not None:
        report.save(telemetry_path)
    return RunOutcome(
        entry=entry,
        metrics=metrics,
        params=params,
        run_key=run_key,
        skipped=False,
        report=report,
    )
