"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with one clause while still distinguishing geometry problems
from numerical ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """A conductor geometry is malformed (non-positive size, overlap, ...)."""


class StackupError(ReproError):
    """A technology stackup definition is inconsistent."""


class SolverError(ReproError):
    """A field-solver problem could not be solved (singular system, ...)."""


class TableError(ReproError):
    """An extraction table is malformed or cannot answer a query."""


class ExtrapolationWarning(UserWarning):
    """A table lookup fell outside the characterized grid and extrapolated."""


class CircuitError(ReproError):
    """A netlist is malformed (unknown node, duplicate element, ...)."""


class ConvergenceError(SolverError):
    """An iterative analysis failed to converge."""


class TelemetryError(ReproError):
    """A telemetry metric, span or report is used inconsistently."""


class ServeError(ReproError):
    """Invalid or unserviceable extraction-service request.

    Carries the HTTP status the server should answer with (default 400);
    the service layer raises it for malformed payloads, unknown
    endpoints and missing tables so handlers map failures uniformly.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = int(status)


class QualityError(ReproError):
    """A quality artifact (health report, bench record) is malformed."""


class ScenarioError(ReproError):
    """A scenario, its parameters, or a run-ledger query is invalid."""


class ScenarioRunError(ScenarioError):
    """A scenario run raised; the failure was recorded in the ledger.

    Carries the ledger ``run_id`` of the recorded failed run (empty when
    recording itself was impossible) and the original exception as
    ``__cause__``.
    """

    def __init__(self, message: str, run_id: str = ""):
        super().__init__(message)
        self.run_id = run_id
