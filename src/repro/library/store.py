"""Content-addressed, versioned storage for characterized tables.

The paper's speedup is an amortization argument: run the field solver
*once* per technology ("the tables can be built into the design kit"),
then answer every extraction by spline lookup.  :class:`TableLibrary`
is the durable half of that argument -- a directory-rooted store of
:class:`~repro.tables.lookup.ExtractionTable` JSON blobs, addressed by a
deterministic **cache key**: the sha256 of a canonical description of
everything that determines the numbers in the table (quantity, axis
names and grids, builder configuration, frequency, schema version).

Properties:

* **Content addressing** -- identical characterization requests map to
  the same key, so rebuilding an already-built table is a manifest hit,
  not hours of field solving.  Different grids, frequencies or builder
  settings never collide.
* **Durability** -- every blob and the ``manifest.json`` index are
  written atomically (:mod:`repro.ioutil`), so a killed build leaves
  the library readable.
* **Integrity** -- the manifest records the sha256 of each blob's bytes;
  :meth:`TableLibrary.verify` re-hashes everything and reports missing,
  truncated or tampered entries.
* **Lazy loading** -- opening a library reads only the manifest; table
  blobs are parsed on first :meth:`~TableLibrary.get` and memoized.
* **Queries** -- :meth:`~TableLibrary.query` finds entries by layer,
  quantity, frequency, structure family, or name, which is how the
  clocktree extractor locates its tables at run time.

Layout::

    <root>/
      manifest.json          index: key -> LibraryEntry
      tables/<key>.json      ExtractionTable blobs (content-addressed)
      checkpoints/<job>.jsonl  in-flight build state (runner.py)
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import TableError
from repro.ioutil import atomic_write_text
from repro.tables.lookup import ExtractionTable

#: Bump when the serialized table format or key derivation changes; the
#: version participates in every cache key, so old libraries are simply
#: missed (and rebuilt), never misread.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# canonical hashing
# ----------------------------------------------------------------------
def _canonical(obj):
    """Reduce *obj* to canonical JSON-compatible primitives."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array / scalar
        return _canonical(obj.tolist())
    if isinstance(obj, float):
        # repr() round-trips doubles exactly and is stable across runs.
        return float(repr(obj))
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    raise TableError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key"
    )


def canonical_json(obj) -> str:
    """Deterministic JSON text for hashing (sorted keys, fixed separators)."""
    return json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def cache_key(spec: dict) -> str:
    """The sha256 content key of a characterization *spec* dict."""
    digest = hashlib.sha256(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _frequency_matches(a: Optional[float], b: Optional[float]) -> bool:
    if a is None or b is None:
        return a is b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=0.0)


# ----------------------------------------------------------------------
# manifest entries
# ----------------------------------------------------------------------
@dataclass
class LibraryEntry:
    """One manifest row describing a stored table blob."""

    key: str
    name: str
    quantity: str
    axis_names: List[str]
    shape: List[int]
    file: str
    sha256: str
    layer: str = ""
    family: str = ""
    frequency: Optional[float] = None
    created_at: float = 0.0
    job_id: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LibraryEntry":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})


class TableLibrary:
    """A characterization library rooted at a directory.

    Parameters
    ----------
    root:
        Library directory; created (with an empty manifest) unless
        *create* is False, in which case a missing library raises.
    """

    MANIFEST_NAME = "manifest.json"
    TABLES_DIR = "tables"
    CHECKPOINTS_DIR = "checkpoints"

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root = Path(root)
        self.manifest_path = self.root / self.MANIFEST_NAME
        self.tables_dir = self.root / self.TABLES_DIR
        self.checkpoints_dir = self.root / self.CHECKPOINTS_DIR
        self._entries: Dict[str, LibraryEntry] = {}
        self._cache: Dict[str, ExtractionTable] = {}
        if self.manifest_path.exists():
            self._load_manifest()
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self.tables_dir.mkdir(parents=True, exist_ok=True)
            self._write_manifest()
        else:
            raise TableError(f"no table library at {self.root}")

    # ------------------------------------------------------------------
    # manifest io
    # ------------------------------------------------------------------
    def _load_manifest(self) -> None:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TableError(f"unreadable manifest {self.manifest_path}: {exc}")
        if data.get("schema_version") != SCHEMA_VERSION:
            raise TableError(
                f"library schema {data.get('schema_version')!r} != "
                f"supported {SCHEMA_VERSION}"
            )
        self._entries = {
            key: LibraryEntry.from_dict(raw)
            for key, raw in data.get("entries", {}).items()
        }

    def _write_manifest(self) -> None:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "entries": {k: e.to_dict() for k, e in sorted(self._entries.items())},
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=1))

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def _blob_path(self, key: str) -> Path:
        return self.tables_dir / f"{key}.json"

    def put(
        self,
        table: ExtractionTable,
        key: str,
        layer: str = "",
        family: str = "",
        frequency: Optional[float] = None,
        job_id: str = "",
        metadata: Optional[dict] = None,
    ) -> LibraryEntry:
        """Store *table* under the content *key* and index it.

        Re-putting an existing key overwrites the blob and entry (the
        key pins the content, so this is idempotent for honest callers).
        """
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise TableError(f"invalid cache key {key!r} (want sha256 hex)")
        text = json.dumps(table.to_dict(), indent=1)
        self.tables_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self._blob_path(key), text)
        entry = LibraryEntry(
            key=key,
            name=table.name,
            quantity=table.quantity,
            axis_names=list(table.axis_names),
            shape=list(table.values.shape),
            file=f"{self.TABLES_DIR}/{key}.json",
            sha256=_sha256_text(text),
            layer=layer,
            family=family,
            frequency=frequency,
            created_at=time.time(),
            job_id=job_id,
            metadata=dict(metadata or {}),
        )
        self._entries[key] = entry
        self._cache[key] = table
        self._write_manifest()
        return entry

    def get(self, key: str) -> ExtractionTable:
        """Load (lazily, memoized) the table stored under *key*."""
        if key in self._cache:
            return self._cache[key]
        entry = self._entries.get(key)
        if entry is None:
            raise TableError(f"no table {key!r} in library {self.root}")
        path = self.root / entry.file
        try:
            table = ExtractionTable.load(path)
        except (OSError, json.JSONDecodeError) as exc:
            raise TableError(f"cannot load table blob {path}: {exc}")
        self._cache[key] = table
        return table

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[LibraryEntry]:
        """Every manifest entry, sorted by (layer, quantity, name, key)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (e.layer, e.quantity, e.name, e.key),
        )

    def entry(self, key: str) -> LibraryEntry:
        """The manifest entry for *key* (supports unique key prefixes)."""
        if key in self._entries:
            return self._entries[key]
        matches = [e for k, e in self._entries.items() if k.startswith(key)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise TableError(f"no entry matching {key!r} in {self.root}")
        raise TableError(f"ambiguous key prefix {key!r} ({len(matches)} matches)")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        quantity: Optional[str] = None,
        layer: Optional[str] = None,
        frequency: Optional[float] = "any",  # type: ignore[assignment]
        family: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[LibraryEntry]:
        """Entries matching every given criterion.

        *frequency* defaults to the sentinel ``"any"``; pass ``None`` to
        match only frequency-independent tables, or a float to match
        within relative tolerance 1e-9.
        """
        out = []
        for entry in self.entries():
            if quantity is not None and entry.quantity != quantity:
                continue
            if layer is not None and entry.layer != layer:
                continue
            if family is not None and entry.family != family:
                continue
            if name is not None and entry.name != name:
                continue
            if frequency != "any" and not _frequency_matches(
                entry.frequency, frequency  # type: ignore[arg-type]
            ):
                continue
            out.append(entry)
        return out

    def get_one(self, **criteria) -> Optional[ExtractionTable]:
        """The newest table matching *criteria*, or None.

        When several entries match (e.g. a re-characterized grid at the
        same frequency), the most recently stored wins -- the natural
        "latest characterization" semantics of a design kit.
        """
        matches = self.query(**criteria)
        if not matches:
            return None
        newest = max(matches, key=lambda e: (e.created_at, e.key))
        return self.get(newest.key)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def verify(self) -> List[str]:
        """Re-hash every blob against the manifest; return problem strings.

        An empty list means the library is fully intact.  Checks: blob
        exists, bytes hash to the recorded sha256, JSON parses into a
        table whose name/quantity/shape match the manifest row.
        """
        problems: List[str] = []
        for key, entry in sorted(self._entries.items()):
            path = self.root / entry.file
            if not path.exists():
                problems.append(f"{key[:12]}: missing blob {entry.file}")
                continue
            text = path.read_text()
            if _sha256_text(text) != entry.sha256:
                problems.append(f"{key[:12]}: sha256 mismatch (corrupt blob)")
                continue
            try:
                table = ExtractionTable.from_dict(json.loads(text))
            except (json.JSONDecodeError, TableError) as exc:
                problems.append(f"{key[:12]}: unparseable blob: {exc}")
                continue
            if table.name != entry.name or table.quantity != entry.quantity:
                problems.append(f"{key[:12]}: manifest/blob identity mismatch")
            elif list(table.values.shape) != list(entry.shape):
                problems.append(f"{key[:12]}: shape mismatch")
        # orphan blobs are not corruption, but worth reporting
        if self.tables_dir.exists():
            known = {self._blob_path(k).name for k in self._entries}
            for blob in sorted(self.tables_dir.glob("*.json")):
                if blob.name not in known:
                    problems.append(f"orphan blob not in manifest: {blob.name}")
        return problems

    # ------------------------------------------------------------------
    # checkpoints (used by the build runner)
    # ------------------------------------------------------------------
    def checkpoint_path(self, job_id: str) -> Path:
        """Where the build runner checkpoints partial grids for a job."""
        return self.checkpoints_dir / f"{job_id}.jsonl"


def open_library(
    library: Union["TableLibrary", str, Path], create: bool = False
) -> "TableLibrary":
    """Coerce a path-or-library argument into a :class:`TableLibrary`."""
    if isinstance(library, TableLibrary):
        return library
    return TableLibrary(library, create=create)


def iter_problems_summary(problems: Iterable[str]) -> str:
    """Human-readable one-line verify summary."""
    problems = list(problems)
    if not problems:
        return "library OK"
    return f"{len(problems)} problem(s): " + "; ".join(problems)
