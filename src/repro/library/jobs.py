"""Declarative characterization jobs: grid + builder + cache key.

A :class:`CharacterizationJob` is the unit of work of a design-kit
build: it pairs an axis grid with one of the table builders from
:mod:`repro.tables.builder` and knows three things the build runner
needs --

1. **its own cache keys**: a deterministic ``job_id`` plus one
   ``table_key`` per output table, derived (via
   :func:`repro.library.store.cache_key`) from everything that
   determines the solved numbers: builder kind and configuration, axis
   grids, frequency and the library schema version;
2. **its grid points** and how to **solve one point in isolation** --
   the granularity the process pool and the resume checkpoints operate
   at.  A point solve returns one float per output table, so a loop job
   yields (L, R) pairs and a 3-trace capacitance job (Cg, Cc) pairs;
3. **how to assemble** the solved point values into finished
   :class:`~repro.tables.lookup.ExtractionTable` objects.

Jobs are frozen dataclasses holding only picklable state (structure
configs are themselves frozen dataclasses), so they travel to
``ProcessPoolExecutor`` workers unchanged -- no lambdas, no bound
methods, no function-local imports.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, fields, is_dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import RHO_CU
from repro.errors import TableError
from repro.library.store import SCHEMA_VERSION, cache_key
from repro.rc.fieldsolver2d import FieldSolver2D
from repro.tables.builder import (
    PartialInductanceTableBuilder,
    ThreeTraceCapacitanceBuilder,
    _validated_axis,
)
from repro.tables.lookup import ExtractionTable


def _axis_tuple(name: str, values: Sequence[float]) -> Tuple[float, ...]:
    return tuple(float(v) for v in _validated_axis(name, values))


def config_spec(config) -> dict:
    """Canonical description of a structure configuration dataclass.

    Used both inside job cache keys and as the stand-alone **structure
    family fingerprint** that lets an extractor find "the tables built
    for *this* config" regardless of which grid or frequency they were
    built on.
    """
    if not is_dataclass(config):
        raise TableError(
            f"config must be a dataclass, got {type(config).__name__!r}"
        )
    spec: Dict[str, object] = {"type": type(config).__name__}
    for f in fields(config):
        spec[f.name] = getattr(config, f.name)
    return spec


def config_fingerprint(config) -> str:
    """sha256 family fingerprint of a structure configuration."""
    return cache_key({"family": config_spec(config),
                      "schema_version": SCHEMA_VERSION})


@dataclass(frozen=True)
class JobOutput:
    """One table a job produces."""

    name: str
    quantity: str


class CharacterizationJob:
    """Base class: shared key derivation, grid logistics, assembly.

    Subclasses define class attribute ``kind``, implement
    :meth:`builder_spec`, :meth:`outputs`, :meth:`axes` /
    :meth:`axis_names`, :meth:`solve_point` and
    :meth:`table_metadata`.
    """

    kind: str = "abstract"
    layer: str = ""
    frequency: Optional[float] = None

    # -- identity ------------------------------------------------------
    def spec(self) -> dict:
        """The full deterministic description hashed into cache keys."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "layer": self.layer,
            "frequency": self.frequency,
            "axis_names": list(self.axis_names()),
            "axes": [list(a) for a in self.axes()],
            "builder": self.builder_spec(),
            "outputs": [[o.name, o.quantity] for o in self.outputs()],
        }

    @property
    def job_id(self) -> str:
        """Content key of the whole job (used for checkpoints)."""
        return cache_key(self.spec())

    def table_key(self, output_name: str) -> str:
        """Content key of one output table."""
        names = [o.name for o in self.outputs()]
        if output_name not in names:
            raise TableError(
                f"job {self.kind!r} has outputs {names}, not {output_name!r}"
            )
        return cache_key({"job": self.spec(), "output": output_name})

    def table_keys(self) -> Dict[str, str]:
        """Mapping output table name -> content key."""
        return {o.name: self.table_key(o.name) for o in self.outputs()}

    @property
    def family(self) -> str:
        """Structure-family fingerprint (empty when config-free)."""
        return ""

    # -- grid logistics ------------------------------------------------
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(a) for a in self.axes())

    def num_points(self) -> int:
        return int(np.prod(self.shape()))

    def points(self) -> List[Tuple[float, ...]]:
        """Grid points in C (row-major) order of the axes."""
        return list(itertools.product(*self.axes()))

    # -- to be implemented ---------------------------------------------
    def axis_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def axes(self) -> Tuple[Tuple[float, ...], ...]:
        raise NotImplementedError

    def outputs(self) -> Tuple[JobOutput, ...]:
        raise NotImplementedError

    def builder_spec(self) -> dict:
        raise NotImplementedError

    def solve_point(self, point: Tuple[float, ...]) -> Tuple[float, ...]:
        """Solve one grid point; one value per output, in output order."""
        raise NotImplementedError

    def solve_points(
        self, points: Sequence[Tuple[float, ...]]
    ) -> List[Tuple[float, ...]]:
        """Solve a chunk of grid points in one call (worker-task unit).

        The default implementation just loops :meth:`solve_point`, but
        doing so *inside one process* matters: neighboring grid points of
        an inductance job share most of their filament-pair geometry, so
        the kernel's partial-inductance memo cache
        (:func:`repro.peec.kernel.lp_memo_cache`) converts the overlap
        into cache hits instead of repeated Hoer-Love evaluations.
        Chunked task submission in the build runner exists precisely to
        give the cache that locality.

        Each point's wall time is observed into the
        ``table_build_point_seconds`` histogram, so build-time
        distributions survive the trip from pool workers back to the
        parent (workers ship registry snapshot deltas with each chunk).
        """
        from repro.telemetry import TABLE_BUILD_POINT, get_registry

        registry = get_registry()
        values: List[Tuple[float, ...]] = []
        for point in points:
            t0 = time.perf_counter()
            values.append(self.solve_point(point))
            registry.observe(TABLE_BUILD_POINT, time.perf_counter() - t0)
        return values

    def table_metadata(self) -> dict:
        """Builder provenance recorded into each output table."""
        raise NotImplementedError

    # -- assembly ------------------------------------------------------
    def assemble(
        self, values_by_point: Sequence[Sequence[float]]
    ) -> List[ExtractionTable]:
        """Turn per-point solve results into the finished output tables.

        *values_by_point* is indexed like :meth:`points` (row-major) and
        each element holds one value per output.
        """
        shape = self.shape()
        n_points = self.num_points()
        if len(values_by_point) != n_points:
            raise TableError(
                f"job {self.kind!r} expects {n_points} point results, "
                f"got {len(values_by_point)}"
            )
        outs = self.outputs()
        flat = np.asarray(values_by_point, dtype=float)
        if flat.shape != (n_points, len(outs)):
            raise TableError(
                f"point results must be shape {(n_points, len(outs))}, "
                f"got {flat.shape}"
            )
        tables = []
        base_meta = dict(self.table_metadata())
        base_meta.setdefault("frequency", self.frequency)
        for column, out in enumerate(outs):
            metadata = dict(base_meta)
            metadata["library"] = {
                "schema_version": SCHEMA_VERSION,
                "kind": self.kind,
                "layer": self.layer,
                "job_id": self.job_id,
                "table_key": self.table_key(out.name),
                "family": self.family,
            }
            tables.append(ExtractionTable(
                name=out.name,
                quantity=out.quantity,
                axis_names=self.axis_names(),
                axes=[np.asarray(a) for a in self.axes()],
                values=flat[:, column].reshape(shape),
                metadata=metadata,
            ))
        return tables


# ----------------------------------------------------------------------
# concrete jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoopTableJob(CharacterizationJob):
    """Loop L and loop R tables for a structure config (Sec. II-B).

    Pairs a (width, length) grid with
    :class:`~repro.tables.builder.LoopInductanceTableBuilder` semantics,
    but solves point-wise so the runner can parallelize and checkpoint.
    """

    config: object = None
    frequency: float = 0.0
    widths: Tuple[float, ...] = ()
    lengths: Tuple[float, ...] = ()
    layer: str = ""
    name_prefix: str = "loop"
    n_width: int = 4
    n_thickness: int = 2
    grading: float = 1.5

    kind = "loop_rl"

    def __post_init__(self):
        if self.config is None or not hasattr(self.config, "loop_problem"):
            raise TableError("LoopTableJob needs a config with loop_problem()")
        if self.frequency is None or self.frequency <= 0.0:
            raise TableError("frequency must be positive")
        object.__setattr__(self, "widths", _axis_tuple("width", self.widths))
        object.__setattr__(self, "lengths", _axis_tuple("length", self.lengths))

    @property
    def family(self) -> str:
        return config_fingerprint(self.config)

    def axis_names(self):
        return ("width", "length")

    def axes(self):
        return (self.widths, self.lengths)

    def outputs(self):
        return (
            JobOutput(f"{self.name_prefix}_inductance", "loop_inductance"),
            JobOutput(f"{self.name_prefix}_resistance", "loop_resistance"),
        )

    def builder_spec(self):
        return {
            "builder": "LoopInductanceTableBuilder",
            "config": config_spec(self.config),
            "n_width": self.n_width,
            "n_thickness": self.n_thickness,
            "grading": self.grading,
        }

    def solve_point(self, point):
        width, length = point
        problem = self.config.loop_problem(
            float(width), float(length),
            n_width=self.n_width, n_thickness=self.n_thickness,
            grading=self.grading,
        )
        resistance, inductance = problem.loop_rl(self.frequency)
        return (float(inductance), float(resistance))

    def table_metadata(self):
        return {"frequency": self.frequency, "model": "loop"}


@dataclass(frozen=True)
class MutualLoopJob(CharacterizationJob):
    """Mutual loop inductance of trace pairs over a plane (Fig. 5(c))."""

    config: object = None
    frequency: float = 0.0
    separations: Tuple[float, ...] = ()
    lengths: Tuple[float, ...] = ()
    layer: str = ""
    name: str = "mutual_loop_inductance"
    n_width: int = 2
    n_thickness: int = 1

    kind = "mutual_loop"

    def __post_init__(self):
        if self.config is None or not hasattr(self.config, "pair_problem"):
            raise TableError("MutualLoopJob needs a config with pair_problem()")
        if self.frequency is None or self.frequency <= 0.0:
            raise TableError("frequency must be positive")
        object.__setattr__(
            self, "separations", _axis_tuple("separation", self.separations))
        object.__setattr__(self, "lengths", _axis_tuple("length", self.lengths))

    @property
    def family(self) -> str:
        return config_fingerprint(self.config)

    def axis_names(self):
        return ("separation", "length")

    def axes(self):
        return (self.separations, self.lengths)

    def outputs(self):
        return (JobOutput(self.name, "mutual_loop_inductance"),)

    def builder_spec(self):
        return {
            "builder": "MutualLoopTableBuilder",
            "config": config_spec(self.config),
            "n_width": self.n_width,
            "n_thickness": self.n_thickness,
        }

    def solve_point(self, point):
        separation, length = point
        problem = self.config.pair_problem(
            float(separation), float(length),
            n_width=self.n_width, n_thickness=self.n_thickness,
        )
        solution = problem.solve(self.frequency)
        try:
            return (float(solution.mutual_loop_inductances["VICTIM"]),)
        except KeyError:
            raise TableError(
                "pair problem must contain an open trace named 'VICTIM'"
            ) from None

    def table_metadata(self):
        return {"frequency": self.frequency, "model": "loop_pair"}


@dataclass(frozen=True)
class PartialSelfInductanceJob(CharacterizationJob):
    """Partial self-L table over (width, length) for one layer."""

    thickness: float = 0.0
    widths: Tuple[float, ...] = ()
    lengths: Tuple[float, ...] = ()
    frequency: Optional[float] = None
    resistivity: float = RHO_CU
    layer: str = ""
    name: str = "self_partial_inductance"

    kind = "partial_self"

    def __post_init__(self):
        # builder constructor validates thickness/frequency
        PartialInductanceTableBuilder(
            self.thickness, self.frequency, self.resistivity)
        object.__setattr__(self, "widths", _axis_tuple("width", self.widths))
        object.__setattr__(self, "lengths", _axis_tuple("length", self.lengths))

    def _builder(self) -> PartialInductanceTableBuilder:
        return PartialInductanceTableBuilder(
            self.thickness, self.frequency, self.resistivity)

    def axis_names(self):
        return ("width", "length")

    def axes(self):
        return (self.widths, self.lengths)

    def outputs(self):
        return (JobOutput(self.name, "self_inductance"),)

    def builder_spec(self):
        return {
            "builder": "PartialInductanceTableBuilder",
            "mode": "self",
            "thickness": self.thickness,
            "resistivity": self.resistivity,
        }

    def solve_point(self, point):
        width, length = point
        return (float(self._builder()._self_value(float(width), float(length))),)

    def table_metadata(self):
        return {
            "thickness": self.thickness,
            "frequency": self.frequency,
            "model": "partial",
        }


@dataclass(frozen=True)
class PartialMutualInductanceJob(CharacterizationJob):
    """Partial mutual-L table over (width1, width2, spacing, length)."""

    thickness: float = 0.0
    widths1: Tuple[float, ...] = ()
    widths2: Tuple[float, ...] = ()
    spacings: Tuple[float, ...] = ()
    lengths: Tuple[float, ...] = ()
    frequency: Optional[float] = None
    resistivity: float = RHO_CU
    layer: str = ""
    name: str = "mutual_partial_inductance"

    kind = "partial_mutual"

    def __post_init__(self):
        PartialInductanceTableBuilder(
            self.thickness, self.frequency, self.resistivity)
        object.__setattr__(self, "widths1", _axis_tuple("width1", self.widths1))
        object.__setattr__(self, "widths2", _axis_tuple("width2", self.widths2))
        object.__setattr__(self, "spacings", _axis_tuple("spacing", self.spacings))
        object.__setattr__(self, "lengths", _axis_tuple("length", self.lengths))

    def _builder(self) -> PartialInductanceTableBuilder:
        return PartialInductanceTableBuilder(
            self.thickness, self.frequency, self.resistivity)

    def axis_names(self):
        return ("width1", "width2", "spacing", "length")

    def axes(self):
        return (self.widths1, self.widths2, self.spacings, self.lengths)

    def outputs(self):
        return (JobOutput(self.name, "mutual_inductance"),)

    def builder_spec(self):
        return {
            "builder": "PartialInductanceTableBuilder",
            "mode": "mutual",
            "thickness": self.thickness,
            "resistivity": self.resistivity,
        }

    def solve_point(self, point):
        w1, w2, spacing, length = (float(v) for v in point)
        return (float(self._builder()._mutual_value(w1, w2, spacing, length)),)

    def table_metadata(self):
        return {
            "thickness": self.thickness,
            "frequency": self.frequency,
            "model": "partial",
        }


@dataclass(frozen=True)
class ThreeTraceCapacitanceJob(CharacterizationJob):
    """Ground + coupling capacitance from 3-trace FD solves (Sec. II)."""

    height_below: float = 0.0
    thickness: float = 0.0
    widths: Tuple[float, ...] = ()
    spacings: Tuple[float, ...] = ()
    eps_r: float = 3.9
    nx: int = 140
    nz: int = 100
    layer: str = ""
    name_prefix: str = "three_trace"

    kind = "three_trace_cap"
    frequency = None

    def __post_init__(self):
        ThreeTraceCapacitanceBuilder(
            self.height_below, self.thickness, self.eps_r, self.nx, self.nz)
        object.__setattr__(self, "widths", _axis_tuple("width", self.widths))
        object.__setattr__(self, "spacings", _axis_tuple("spacing", self.spacings))

    def _builder(self) -> ThreeTraceCapacitanceBuilder:
        return ThreeTraceCapacitanceBuilder(
            self.height_below, self.thickness, self.eps_r, self.nx, self.nz)

    def axis_names(self):
        return ("width", "spacing")

    def axes(self):
        return (self.widths, self.spacings)

    def outputs(self):
        return (
            JobOutput(f"{self.name_prefix}_ground_capacitance",
                      "capacitance_per_length"),
            JobOutput(f"{self.name_prefix}_coupling_capacitance",
                      "capacitance_per_length"),
        )

    def builder_spec(self):
        return {
            "builder": "ThreeTraceCapacitanceBuilder",
            "height_below": self.height_below,
            "thickness": self.thickness,
            "eps_r": self.eps_r,
            "nx": self.nx,
            "nz": self.nz,
        }

    def solve_point(self, point):
        width, spacing = point
        ground, coupling = self._builder()._solve_point(
            float(width), float(spacing))
        return (float(ground), float(coupling))

    def table_metadata(self):
        return {
            "height_below": self.height_below,
            "thickness": self.thickness,
            "eps_r": self.eps_r,
            "nx": self.nx,
            "nz": self.nz,
            "model": "fd2d_three_trace",
        }


@dataclass(frozen=True)
class TotalCapacitanceJob(CharacterizationJob):
    """Per-unit-length total signal capacitance for a structure config.

    The pool-safe counterpart of
    :class:`~repro.tables.builder.CapacitanceTableBuilder`: instead of a
    (possibly lambda) cross-section factory it holds the structure
    config itself and calls its ``cross_section()`` method per point.
    """

    config: object = None
    widths: Tuple[float, ...] = ()
    spacings: Tuple[float, ...] = ()
    nx: int = 160
    nz: int = 120
    layer: str = ""
    name: str = "signal_capacitance_per_length"
    signal_name: str = "SIG"

    kind = "total_cap"
    frequency = None

    def __post_init__(self):
        if self.config is None or not hasattr(self.config, "cross_section"):
            raise TableError(
                "TotalCapacitanceJob needs a config with cross_section()")
        object.__setattr__(self, "widths", _axis_tuple("width", self.widths))
        object.__setattr__(self, "spacings", _axis_tuple("spacing", self.spacings))

    @property
    def family(self) -> str:
        return config_fingerprint(self.config)

    def axis_names(self):
        return ("width", "spacing")

    def axes(self):
        return (self.widths, self.spacings)

    def outputs(self):
        return (JobOutput(self.name, "capacitance_per_length"),)

    def builder_spec(self):
        return {
            "builder": "CapacitanceTableBuilder",
            "config": config_spec(self.config),
            "nx": self.nx,
            "nz": self.nz,
            "signal_name": self.signal_name,
        }

    def solve_point(self, point):
        width, spacing = point
        cross_section = self.config.cross_section(
            signal_width=float(width), spacing=float(spacing))
        names = [c.name for c in cross_section.conductors]
        if self.signal_name not in names:
            raise TableError(
                f"cross-section has conductors {names}, "
                f"no signal {self.signal_name!r}"
            )
        solver = FieldSolver2D(cross_section, nx=self.nx, nz=self.nz)
        matrix = solver.capacitance_matrix()
        index = names.index(self.signal_name)
        return (float(matrix[index, index]),)

    def table_metadata(self):
        return {"nx": self.nx, "nz": self.nz, "model": "fd2d"}


def standard_clocktree_jobs(
    config,
    frequency: float,
    widths: Sequence[float],
    lengths: Sequence[float],
    spacings: Optional[Sequence[float]] = None,
    layer: str = "",
    name_prefix: str = "loop",
    capacitance_grid: Optional[Tuple[int, int]] = None,
) -> List[CharacterizationJob]:
    """The job set a clocktree extractor needs for one structure family.

    Loop L/R over (width, length), plus -- when *spacings* is given --
    the per-unit-length total-capacitance table over (width, spacing).
    """
    jobs: List[CharacterizationJob] = [
        LoopTableJob(
            config=config, frequency=frequency,
            widths=tuple(widths), lengths=tuple(lengths),
            layer=layer, name_prefix=name_prefix,
        )
    ]
    if spacings is not None:
        nx, nz = capacitance_grid if capacitance_grid else (160, 120)
        jobs.append(TotalCapacitanceJob(
            config=config, widths=tuple(widths), spacings=tuple(spacings),
            nx=nx, nz=nz, layer=layer,
            name=f"{name_prefix}_capacitance_per_length",
        ))
    return jobs
