"""Parallel, resumable characterization builds.

:class:`BuildRunner` drives a list of
:class:`~repro.library.jobs.CharacterizationJob` specs into a
:class:`~repro.library.store.TableLibrary`:

* **Skip what is built.** A job whose output tables are all present in
  the library (by content key) costs one manifest lookup.
* **Fan out.** Remaining grid points are solved concurrently on a
  ``ProcessPoolExecutor`` (each point is an independent field solve, so
  the problem is embarrassingly parallel).  Points are submitted in
  contiguous *chunks* so the per-task dispatch cost is amortized and
  neighboring grid points land in the same worker, where the PEEC
  kernel's partial-inductance memo cache reuses their shared geometry.
  ``workers=1`` (explicitly or effectively, e.g. a 1-CPU machine) or
  ``parallel=False`` degrades to a deterministic in-process loop with
  no pool at all.
* **Checkpoint.** Every completed point is appended as one JSON line to
  ``<library>/checkpoints/<job_id>.jsonl`` and flushed, so a build
  killed mid-grid resumes from exactly the solved set -- only the
  missing points are solved again, and a torn trailing line (the crash
  case) is ignored.
* **Report.** :class:`BuildStats` carries per-job and total counts and
  wall times, and a ``progress`` callback streams live completion.

The checkpoint granularity is the *point*, not the table, because one
field solve can take seconds to minutes while a line append is
microseconds -- the durability overhead is negligible against the work
it protects.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TableError
from repro.library.jobs import CharacterizationJob
from repro.library.store import TableLibrary, open_library

ProgressFn = Callable[["JobProgress"], None]


@dataclass(frozen=True)
class JobProgress:
    """One progress tick: *done* of *total* points for *job*."""

    job: CharacterizationJob
    done: int
    total: int
    resumed: int
    elapsed: float

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0


@dataclass
class JobStats:
    """Build accounting for one job."""

    job_id: str
    kind: str
    points_total: int = 0
    points_solved: int = 0
    points_resumed: int = 0
    skipped: bool = False
    wall_time: float = 0.0
    table_keys: Dict[str, str] = field(default_factory=dict)


@dataclass
class BuildStats:
    """Build accounting for a whole run."""

    jobs: List[JobStats] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def jobs_total(self) -> int:
        return len(self.jobs)

    @property
    def jobs_skipped(self) -> int:
        return sum(1 for j in self.jobs if j.skipped)

    @property
    def points_total(self) -> int:
        return sum(j.points_total for j in self.jobs)

    @property
    def points_solved(self) -> int:
        return sum(j.points_solved for j in self.jobs)

    @property
    def points_resumed(self) -> int:
        return sum(j.points_resumed for j in self.jobs)

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.jobs_total} job(s): {self.jobs_skipped} warm-skipped, "
            f"{self.points_solved} point(s) solved, "
            f"{self.points_resumed} resumed from checkpoint, "
            f"{self.wall_time:.2f} s"
        )


def _solve_point_task(
    job: CharacterizationJob, index: int, point: Tuple[float, ...]
) -> Tuple[int, Tuple[float, ...]]:
    """Module-level worker entry point (picklable for the process pool)."""
    return index, job.solve_point(point)


def _solve_chunk_task(
    job: CharacterizationJob,
    indices: Sequence[int],
    points: Sequence[Tuple[float, ...]],
) -> List[Tuple[int, Tuple[float, ...]]]:
    """Solve a chunk of grid points in one worker task.

    Chunking amortizes the per-task pickle/dispatch overhead and --
    more importantly -- keeps neighboring grid points in the same
    process so the kernel's partial-inductance memo cache can reuse
    shared filament-pair geometry across them
    (:meth:`CharacterizationJob.solve_points`).
    """
    values = job.solve_points(points)
    return list(zip(indices, values))


def _chunk_indices(remaining: Sequence[int], n_chunks: int) -> List[List[int]]:
    """Split *remaining* into at most *n_chunks* contiguous runs.

    Contiguity matters: ``points()`` is row-major over the axis grid, so
    contiguous index runs are geometric neighbors -- the layout the memo
    cache profits from.
    """
    n = len(remaining)
    n_chunks = max(1, min(n_chunks, n))
    bounds = [round(i * n / n_chunks) for i in range(n_chunks + 1)]
    return [
        list(remaining[bounds[i]:bounds[i + 1]])
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def _load_checkpoint(path: Path, n_outputs: int) -> Dict[int, List[float]]:
    """Read completed points from a JSONL checkpoint, tolerating torn tails.

    A crash can leave the final line truncated; any undecodable or
    malformed line is skipped (its point simply gets re-solved).
    """
    done: Dict[int, List[float]] = {}
    if not path.exists():
        return done
    try:
        text = path.read_text()
    except OSError:
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            index = int(record["i"])
            values = [float(v) for v in record["v"]]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue
        if len(values) == n_outputs and index >= 0:
            done[index] = values
    return done


class BuildRunner:
    """Execute characterization jobs against a library.

    Parameters
    ----------
    library:
        Target :class:`TableLibrary` (or its root path; created if
        missing).
    workers:
        Process count for parallel builds; ``None`` uses the CPU count.
    parallel:
        ``False`` forces the in-process serial path (deterministic, no
        fork -- what the tests use).
    progress:
        Optional callback receiving a :class:`JobProgress` after every
        completed point.  Raising from the callback aborts the build;
        everything already solved is safely checkpointed first.
    """

    #: Target number of chunks handed to each worker over a build; more
    #: chunks -> finer progress/checkpoint granularity, fewer chunks ->
    #: less dispatch overhead and better memo-cache locality.
    CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        library: Union[TableLibrary, str, Path],
        workers: Optional[int] = None,
        parallel: bool = True,
        progress: Optional[ProgressFn] = None,
        chunk_size: Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise TableError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise TableError("chunk_size must be >= 1")
        self.library = open_library(library, create=True)
        self.workers = workers
        self.chunk_size = chunk_size
        # Resolve the worker count up front: requesting a pool of one
        # process buys no concurrency but still pays fork + pickle per
        # task, so an effective single worker degrades to the serial
        # in-process path.
        self.effective_workers = (
            workers if workers is not None else (os.cpu_count() or 1)
        )
        self.parallel = parallel and self.effective_workers > 1
        self.progress = progress

    # ------------------------------------------------------------------
    def build(self, jobs: Sequence[CharacterizationJob]) -> BuildStats:
        """Run every job, reusing library content and checkpoints."""
        stats = BuildStats()
        t0 = time.perf_counter()
        for job in jobs:
            stats.jobs.append(self._build_job(job))
        stats.wall_time = time.perf_counter() - t0
        return stats

    # ------------------------------------------------------------------
    def _build_job(self, job: CharacterizationJob) -> JobStats:
        keys = job.table_keys()
        job_stats = JobStats(
            job_id=job.job_id,
            kind=job.kind,
            points_total=job.num_points(),
            table_keys=dict(keys),
        )
        t0 = time.perf_counter()
        if all(key in self.library for key in keys.values()):
            job_stats.skipped = True
            job_stats.wall_time = time.perf_counter() - t0
            return job_stats

        points = job.points()
        n_outputs = len(job.outputs())
        checkpoint = self.library.checkpoint_path(job.job_id)
        done = {
            i: v for i, v in _load_checkpoint(checkpoint, n_outputs).items()
            if i < len(points)
        }
        job_stats.points_resumed = len(done)
        remaining = [i for i in range(len(points)) if i not in done]

        if remaining:
            checkpoint.parent.mkdir(parents=True, exist_ok=True)
            with open(checkpoint, "a", encoding="utf-8") as log:
                def record(index: int, values: Tuple[float, ...]) -> None:
                    values = [float(v) for v in values]
                    done[index] = values
                    log.write(json.dumps({"i": index, "v": values}) + "\n")
                    log.flush()
                    os.fsync(log.fileno())
                    job_stats.points_solved += 1
                    if self.progress is not None:
                        self.progress(JobProgress(
                            job=job,
                            done=len(done),
                            total=len(points),
                            resumed=job_stats.points_resumed,
                            elapsed=time.perf_counter() - t0,
                        ))

                if self.parallel:
                    self._run_parallel(job, points, remaining, record)
                else:
                    for index in remaining:
                        record(index, job.solve_point(points[index]))

        self._finalize_job(job, keys, [done[i] for i in range(len(points))],
                           checkpoint)
        job_stats.wall_time = time.perf_counter() - t0
        return job_stats

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        job: CharacterizationJob,
        points: Sequence[Tuple[float, ...]],
        remaining: Sequence[int],
        record: Callable[[int, Tuple[float, ...]], None],
    ) -> None:
        """Fan chunked point solves over a process pool, recording as they land.

        Grid points are submitted in contiguous chunks rather than one
        task per point: each task then amortizes its dispatch cost over
        many solves, and neighboring points stay in one worker where the
        kernel memo cache turns their shared filament-pair geometry into
        cache hits.  Checkpointing still happens per *point* as each
        chunk's results are recorded.
        """
        if self.chunk_size is not None:
            n_chunks = -(-len(remaining) // self.chunk_size)  # ceil div
        else:
            n_chunks = self.effective_workers * self.CHUNKS_PER_WORKER
        chunks = _chunk_indices(list(remaining), n_chunks)
        try:
            executor = ProcessPoolExecutor(max_workers=self.workers)
        except (OSError, ValueError):  # pragma: no cover - constrained envs
            for index in remaining:
                record(index, job.solve_point(points[index]))
            return
        with executor:
            pending = {
                executor.submit(
                    _solve_chunk_task, job, chunk,
                    [points[i] for i in chunk],
                )
                for chunk in chunks
            }
            try:
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        for index, values in future.result():
                            record(index, values)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise

    # ------------------------------------------------------------------
    def _finalize_job(
        self,
        job: CharacterizationJob,
        keys: Dict[str, str],
        values_by_point: List[List[float]],
        checkpoint: Path,
    ) -> None:
        tables = job.assemble(values_by_point)
        for table in tables:
            self.library.put(
                table,
                key=keys[table.name],
                layer=job.layer,
                family=job.family,
                frequency=job.frequency,
                job_id=job.job_id,
                metadata={"kind": job.kind},
            )
        try:
            checkpoint.unlink()
        except OSError:
            pass


def build_library(
    library: Union[TableLibrary, str, Path],
    jobs: Sequence[CharacterizationJob],
    workers: Optional[int] = None,
    parallel: bool = True,
    progress: Optional[ProgressFn] = None,
) -> BuildStats:
    """Convenience wrapper: run *jobs* into *library* and return stats."""
    runner = BuildRunner(library, workers=workers, parallel=parallel,
                         progress=progress)
    return runner.build(jobs)
