"""Parallel, resumable characterization builds.

:class:`BuildRunner` drives a list of
:class:`~repro.library.jobs.CharacterizationJob` specs into a
:class:`~repro.library.store.TableLibrary`:

* **Skip what is built.** A job whose output tables are all present in
  the library (by content key) costs one manifest lookup.
* **Fan out.** Remaining grid points are solved concurrently on a
  ``ProcessPoolExecutor`` (each point is an independent field solve, so
  the problem is embarrassingly parallel).  Points are submitted in
  contiguous *chunks* so the per-task dispatch cost is amortized and
  neighboring grid points land in the same worker, where the PEEC
  kernel's partial-inductance memo cache reuses their shared geometry.
  ``workers=1`` (explicitly or effectively, e.g. a 1-CPU machine) or
  ``parallel=False`` degrades to a deterministic in-process loop with
  no pool at all.
* **Checkpoint.** Every completed point is appended as one JSON line to
  ``<library>/checkpoints/<job_id>.jsonl`` and flushed, so a build
  killed mid-grid resumes from exactly the solved set -- only the
  missing points are solved again, and a torn trailing line (the crash
  case) is ignored.
* **Report.** :class:`BuildStats` carries per-job and total counts and
  wall times, and a ``progress`` callback streams live completion
  (fraction done, points/sec, ETA, memo hit rate).
* **Aggregate.** Counters tick in whichever process does the work, so a
  parallel build's solver activity would be invisible to the parent.
  Each pool task therefore ships back the worker's
  :class:`~repro.telemetry.MetricsSnapshot` *delta* and drained span
  tree along with its results; the parent folds them into
  :class:`JobStats` / :class:`BuildStats` (``worker_metrics``,
  ``worker_spans``) -- *not* into its own registry, so "this process
  performed zero solves" assertions keep meaning exactly that.  A
  compact telemetry summary of every finalized job is embedded in the
  library manifest entry of each table it produces.

The checkpoint granularity is the *point*, not the table, because one
field solve can take seconds to minutes while a line append is
microseconds -- the durability overhead is negligible against the work
it protects.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TableError
from repro.library.jobs import CharacterizationJob
from repro.library.store import TableLibrary, open_library
from repro.telemetry import (
    BUILD_CHUNK_SECONDS,
    MetricsSnapshot,
    get_registry,
    get_tracer,
    span,
)

ProgressFn = Callable[["JobProgress"], None]


@dataclass(frozen=True)
class JobProgress:
    """One progress tick: *done* of *total* points for *job*.

    Carries enough for a live status line: completion fraction,
    throughput, an ETA extrapolated from it, and the build's memo-cache
    hit rate so far (parent and worker activity combined).
    """

    job: CharacterizationJob
    done: int
    total: int
    resumed: int
    elapsed: float
    #: Memo-cache hit rate over the job so far (workers included).
    memo_hit_rate: float = 0.0

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def points_per_second(self) -> float:
        """Fresh solves per wall second so far (0.0 before the first)."""
        solved = self.done - self.resumed
        if solved <= 0 or self.elapsed <= 0.0:
            return 0.0
        return solved / self.elapsed

    @property
    def eta_seconds(self) -> float:
        """Projected seconds to completion at the current throughput."""
        rate = self.points_per_second
        if rate <= 0.0:
            return float("inf") if self.done < self.total else 0.0
        return (self.total - self.done) / rate


@dataclass
class JobStats:
    """Build accounting for one job."""

    job_id: str
    kind: str
    points_total: int = 0
    points_solved: int = 0
    points_resumed: int = 0
    skipped: bool = False
    wall_time: float = 0.0
    table_keys: Dict[str, str] = field(default_factory=dict)
    #: Wall seconds of every completed work unit (pool chunk, or single
    #: point on the serial path), in completion order.
    chunk_wall_times: List[float] = field(default_factory=list)
    #: Parent-process metric delta attributable to this job.
    metrics: Optional[MetricsSnapshot] = None
    #: Merged pool-worker metric deltas for this job (parallel builds).
    worker_metrics: Optional[MetricsSnapshot] = None
    #: Span trees drained from pool workers (serialized dicts).
    worker_spans: List[dict] = field(default_factory=list)
    #: Table-health reports from an audited build, keyed by table name
    #: (serialized :class:`~repro.quality.audit.TableHealthReport`).
    health: Dict[str, dict] = field(default_factory=dict)

    def add_worker_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold one worker chunk's metric delta into this job's totals."""
        if self.worker_metrics is None:
            self.worker_metrics = snapshot
        else:
            self.worker_metrics = self.worker_metrics.merged(snapshot)

    def combined_metrics(self) -> MetricsSnapshot:
        """Parent + worker metric deltas: the job's true totals."""
        combined = self.metrics if self.metrics is not None else MetricsSnapshot()
        if self.worker_metrics is not None:
            combined = combined.merged(self.worker_metrics)
        return combined

    def telemetry_summary(self) -> Dict[str, object]:
        """Compact build provenance embedded into library manifests."""
        totals = self.combined_metrics()
        return {
            "build_seconds": round(self.wall_time, 6),
            "points_solved": self.points_solved,
            "points_resumed": self.points_resumed,
            "chunks": len(self.chunk_wall_times),
            "loop_solve": totals.counter("loop_solve"),
            "partial_inductance_solve": totals.counter(
                "partial_inductance_solve"
            ),
            "field_solve_2d": totals.counter("field_solve_2d"),
            "lp_pair_eval": totals.counter("lp_pair_eval"),
            "lp_pair_total": totals.counter("lp_pair_total"),
            "memo_hit_rate": round(totals.memo_hit_rate, 6),
            "dedup_factor": round(totals.dedup_factor, 4),
        }


@dataclass
class BuildStats:
    """Build accounting for a whole run."""

    jobs: List[JobStats] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def jobs_total(self) -> int:
        return len(self.jobs)

    @property
    def jobs_skipped(self) -> int:
        return sum(1 for j in self.jobs if j.skipped)

    @property
    def points_total(self) -> int:
        return sum(j.points_total for j in self.jobs)

    @property
    def points_solved(self) -> int:
        return sum(j.points_solved for j in self.jobs)

    @property
    def points_resumed(self) -> int:
        return sum(j.points_resumed for j in self.jobs)

    @property
    def chunk_wall_times(self) -> List[float]:
        """Every job's work-unit wall times, concatenated."""
        return [t for j in self.jobs for t in j.chunk_wall_times]

    @property
    def worker_metrics(self) -> Optional[MetricsSnapshot]:
        """Merged pool-worker metric deltas of the whole run (or None)."""
        merged: Optional[MetricsSnapshot] = None
        for job in self.jobs:
            if job.worker_metrics is not None:
                merged = (job.worker_metrics if merged is None
                          else merged.merged(job.worker_metrics))
        return merged

    @property
    def worker_spans(self) -> List[dict]:
        """Span trees shipped back from pool workers, all jobs."""
        return [sp for j in self.jobs for sp in j.worker_spans]

    @property
    def health(self) -> Dict[str, dict]:
        """All jobs' table-health reports, keyed by table name."""
        merged: Dict[str, dict] = {}
        for job in self.jobs:
            merged.update(job.health)
        return merged

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.jobs_total} job(s): {self.jobs_skipped} warm-skipped, "
            f"{self.points_solved} point(s) solved, "
            f"{self.points_resumed} resumed from checkpoint, "
            f"{self.wall_time:.2f} s"
        )


@dataclass(frozen=True)
class ChunkResult:
    """What one pool task ships back to the build parent.

    Everything is plain picklable data: the solved ``(index, values)``
    pairs, the chunk's wall time and worker pid, the worker-registry
    metric *delta* accumulated while solving (serialized via
    :meth:`~repro.telemetry.MetricsSnapshot.to_dict`), and the span
    trees the chunk produced.
    """

    results: List[Tuple[int, List[float]]]
    wall_time: float
    pid: int
    metrics: dict
    spans: List[dict]


def _solve_point_task(
    job: CharacterizationJob, index: int, point: Tuple[float, ...]
) -> Tuple[int, Tuple[float, ...]]:
    """Module-level worker entry point (picklable for the process pool)."""
    return index, job.solve_point(point)


#: Disk-memo shard paths this worker process has already warmed from;
#: keeps a long-lived pool worker from re-reading the shard every chunk.
_WORKER_MEMO_WARMED: set = set()


def _warm_worker_memo(disk_memo: str) -> None:
    """Warm the worker's global Lp memo from *disk_memo* once per process."""
    if disk_memo not in _WORKER_MEMO_WARMED:
        _WORKER_MEMO_WARMED.add(disk_memo)
        from repro.peec.diskmemo import warm_lp_memo

        warm_lp_memo(disk_memo)


def _solve_chunk_task(
    job: CharacterizationJob,
    indices: Sequence[int],
    points: Sequence[Tuple[float, ...]],
    disk_memo: Optional[str] = None,
) -> ChunkResult:
    """Solve a chunk of grid points in one worker task.

    Chunking amortizes the per-task pickle/dispatch overhead and --
    more importantly -- keeps neighboring grid points in the same
    process so the kernel's partial-inductance memo cache can reuse
    shared filament-pair geometry across them
    (:meth:`CharacterizationJob.solve_points`).

    The chunk is wrapped in a ``library.chunk`` span, and the worker
    registry's metric delta over the chunk travels back with the
    results -- the parent merges it into the build totals without ever
    polluting its own registry.
    """
    from repro.telemetry.logs import correlation_scope, get_logger

    registry = get_registry()
    tracer = get_tracer()
    # A forked worker inherits the parent's completed roots and -- when
    # the fork happened inside an open span -- its open-span stack.
    # Drop both so this chunk's trace is exactly this chunk's work.
    tracer.clear_stack()
    tracer.reset()
    start = registry.snapshot()
    t0 = time.perf_counter()
    if disk_memo is not None:
        _warm_worker_memo(disk_memo)
    # The chunk id (job prefix + index range) is this chunk's
    # correlation id: it rides on the ``library.chunk`` span shipped
    # back to the parent and on every log record the chunk emits.
    chunk_id = f"{job.job_id[:12]}.{indices[0]}-{indices[-1]}"
    with correlation_scope(chunk_id=chunk_id):
        with tracer.span("library.chunk", job=job.kind, points=len(indices)):
            values = job.solve_points(points)
        wall = time.perf_counter() - t0
        get_logger("repro.library.chunk").info(
            "chunk_done",
            job=job.kind,
            points=len(indices),
            wall_seconds=round(wall, 4),
            pid=os.getpid(),
        )
    if disk_memo is not None:
        from repro.peec.diskmemo import flush_lp_memo

        flush_lp_memo(disk_memo)
    wall = time.perf_counter() - t0
    delta = registry.snapshot().minus(start)
    return ChunkResult(
        results=[
            (int(i), [float(v) for v in vals])
            for i, vals in zip(indices, values)
        ],
        wall_time=wall,
        pid=os.getpid(),
        metrics=delta.to_dict(),
        spans=[sp.to_dict() for sp in tracer.drain()],
    )


def _chunk_indices(remaining: Sequence[int], n_chunks: int) -> List[List[int]]:
    """Split *remaining* into at most *n_chunks* contiguous runs.

    Contiguity matters: ``points()`` is row-major over the axis grid, so
    contiguous index runs are geometric neighbors -- the layout the memo
    cache profits from.
    """
    n = len(remaining)
    n_chunks = max(1, min(n_chunks, n))
    bounds = [round(i * n / n_chunks) for i in range(n_chunks + 1)]
    return [
        list(remaining[bounds[i]:bounds[i + 1]])
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def _load_checkpoint(path: Path, n_outputs: int) -> Dict[int, List[float]]:
    """Read completed points from a JSONL checkpoint, tolerating torn tails.

    A crash can leave the final line truncated; any undecodable or
    malformed line is skipped (its point simply gets re-solved).
    """
    done: Dict[int, List[float]] = {}
    if not path.exists():
        return done
    try:
        text = path.read_text()
    except OSError:
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            index = int(record["i"])
            values = [float(v) for v in record["v"]]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue
        if len(values) == n_outputs and index >= 0:
            done[index] = values
    return done


class BuildRunner:
    """Execute characterization jobs against a library.

    Parameters
    ----------
    library:
        Target :class:`TableLibrary` (or its root path; created if
        missing).
    workers:
        Process count for parallel builds; ``None`` uses the CPU count.
    parallel:
        ``False`` forces the in-process serial path (deterministic, no
        fork -- what the tests use).
    progress:
        Optional callback receiving a :class:`JobProgress` after every
        completed point.  Raising from the callback aborts the build;
        everything already solved is safely checkpointed first.
    disk_memo:
        Optional path to a persistent Lp memo shard
        (:class:`~repro.peec.diskmemo.DiskMemoShard`).  The build warms
        the process-wide memo from it up front (workers warm once per
        process) and flushes freshly computed Hoer-Love values back, so
        a *second* build -- even in a fresh process -- reuses every pair
        evaluation ever made.
    auditor:
        Optional :class:`~repro.quality.audit.TableAuditor`.  When
        given, every *freshly built* job is spot-checked right after
        assembly -- a seeded off-grid sample is re-solved directly and
        the resulting :class:`~repro.quality.audit.TableHealthReport`
        is embedded as ``metadata["health"]`` in each table's manifest
        entry (and surfaced on :attr:`JobStats.health`).  Warm-skipped
        jobs keep the health report of the build that made them.
        Auditing runs field solves, so it is strictly opt-in.
    """

    #: Target number of chunks handed to each worker over a build; more
    #: chunks -> finer progress/checkpoint granularity, fewer chunks ->
    #: less dispatch overhead and better memo-cache locality.
    CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        library: Union[TableLibrary, str, Path],
        workers: Optional[int] = None,
        parallel: bool = True,
        progress: Optional[ProgressFn] = None,
        chunk_size: Optional[int] = None,
        auditor=None,
        disk_memo: Optional[Union[str, Path]] = None,
    ):
        if workers is not None and workers < 1:
            raise TableError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise TableError("chunk_size must be >= 1")
        self.library = open_library(library, create=True)
        self.workers = workers
        self.chunk_size = chunk_size
        self.auditor = auditor
        self.disk_memo = str(disk_memo) if disk_memo is not None else None
        # Resolve the worker count up front: requesting a pool of one
        # process buys no concurrency but still pays fork + pickle per
        # task, so an effective single worker degrades to the serial
        # in-process path.
        self.effective_workers = (
            workers if workers is not None else (os.cpu_count() or 1)
        )
        self.parallel = parallel and self.effective_workers > 1
        self.progress = progress

    # ------------------------------------------------------------------
    def build(self, jobs: Sequence[CharacterizationJob]) -> BuildStats:
        """Run every job, reusing library content and checkpoints."""
        stats = BuildStats()
        t0 = time.perf_counter()
        if self.disk_memo is not None:
            from repro.peec.diskmemo import warm_lp_memo

            warm_lp_memo(self.disk_memo)
        for job in jobs:
            stats.jobs.append(self._build_job(job))
        if self.disk_memo is not None:
            from repro.peec.diskmemo import flush_lp_memo

            flush_lp_memo(self.disk_memo)
        stats.wall_time = time.perf_counter() - t0
        return stats

    # ------------------------------------------------------------------
    def _build_job(self, job: CharacterizationJob) -> JobStats:
        keys = job.table_keys()
        job_stats = JobStats(
            job_id=job.job_id,
            kind=job.kind,
            points_total=job.num_points(),
            table_keys=dict(keys),
        )
        registry = get_registry()
        start_snapshot = registry.snapshot()
        t0 = time.perf_counter()
        if all(key in self.library for key in keys.values()):
            job_stats.skipped = True
            job_stats.wall_time = time.perf_counter() - t0
            return job_stats

        points = job.points()
        n_outputs = len(job.outputs())
        checkpoint = self.library.checkpoint_path(job.job_id)
        done = {
            i: v for i, v in _load_checkpoint(checkpoint, n_outputs).items()
            if i < len(points)
        }
        job_stats.points_resumed = len(done)
        remaining = [i for i in range(len(points)) if i not in done]

        with span("library.job", job=job.kind, points=len(points),
                  resumed=job_stats.points_resumed):
            if remaining:
                checkpoint.parent.mkdir(parents=True, exist_ok=True)
                with open(checkpoint, "a", encoding="utf-8") as log:
                    def record(index: int, values: Tuple[float, ...]) -> None:
                        values = [float(v) for v in values]
                        done[index] = values
                        log.write(json.dumps({"i": index, "v": values}) + "\n")
                        log.flush()
                        os.fsync(log.fileno())
                        job_stats.points_solved += 1
                        if self.progress is not None:
                            job_stats.metrics = registry.snapshot().minus(
                                start_snapshot
                            )
                            self.progress(JobProgress(
                                job=job,
                                done=len(done),
                                total=len(points),
                                resumed=job_stats.points_resumed,
                                elapsed=time.perf_counter() - t0,
                                memo_hit_rate=(
                                    job_stats.combined_metrics().memo_hit_rate
                                ),
                            ))

                    if self.parallel:
                        self._run_parallel(job, points, remaining, record,
                                           job_stats)
                    else:
                        self._run_serial(job, points, remaining, record,
                                         job_stats)

            job_stats.metrics = registry.snapshot().minus(start_snapshot)
            # Fix wall time before finalization so the manifest summary
            # records the real build duration (finalization is cheap;
            # the final update below only adds its tail).
            job_stats.wall_time = time.perf_counter() - t0
            self._finalize_job(
                job, keys, [done[i] for i in range(len(points))],
                checkpoint, job_stats,
            )
        job_stats.wall_time = time.perf_counter() - t0
        return job_stats

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        job: CharacterizationJob,
        points: Sequence[Tuple[float, ...]],
        remaining: Sequence[int],
        record: Callable[[int, Tuple[float, ...]], None],
        job_stats: JobStats,
    ) -> None:
        """In-process deterministic loop; each point is a work unit."""
        from repro.telemetry.logs import correlation_scope

        registry = get_registry()
        for index in remaining:
            # Same correlation shape as the pool path, one point wide.
            with correlation_scope(chunk_id=f"{job.job_id[:12]}.{index}"):
                t0 = time.perf_counter()
                values = job.solve_point(points[index])
                wall = time.perf_counter() - t0
            job_stats.chunk_wall_times.append(wall)
            registry.observe(BUILD_CHUNK_SECONDS, wall)
            record(index, values)

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        job: CharacterizationJob,
        points: Sequence[Tuple[float, ...]],
        remaining: Sequence[int],
        record: Callable[[int, Tuple[float, ...]], None],
        job_stats: JobStats,
    ) -> None:
        """Fan chunked point solves over a process pool, recording as they land.

        Grid points are submitted in contiguous chunks rather than one
        task per point: each task then amortizes its dispatch cost over
        many solves, and neighboring points stay in one worker where the
        kernel memo cache turns their shared filament-pair geometry into
        cache hits.  Checkpointing still happens per *point* as each
        chunk's results are recorded.

        Each :class:`ChunkResult` also carries the worker's metric delta
        and span tree for the chunk; they are folded into *job_stats*
        (not the parent registry -- per-process counter semantics stay
        intact) and the chunk wall time lands in both
        ``job_stats.chunk_wall_times`` and the parent's
        ``build_chunk_seconds`` histogram.
        """
        if self.chunk_size is not None:
            n_chunks = -(-len(remaining) // self.chunk_size)  # ceil div
        else:
            n_chunks = self.effective_workers * self.CHUNKS_PER_WORKER
        chunks = _chunk_indices(list(remaining), n_chunks)
        try:
            executor = ProcessPoolExecutor(max_workers=self.workers)
        except (OSError, ValueError):  # pragma: no cover - constrained envs
            self._run_serial(job, points, remaining, record, job_stats)
            return
        registry = get_registry()
        with executor:
            pending = {
                executor.submit(
                    _solve_chunk_task, job, chunk,
                    [points[i] for i in chunk],
                    self.disk_memo,
                )
                for chunk in chunks
            }
            try:
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        chunk_result = future.result()
                        job_stats.chunk_wall_times.append(
                            chunk_result.wall_time
                        )
                        registry.observe(BUILD_CHUNK_SECONDS,
                                         chunk_result.wall_time)
                        job_stats.add_worker_snapshot(
                            MetricsSnapshot.from_dict(chunk_result.metrics)
                        )
                        job_stats.worker_spans.extend(chunk_result.spans)
                        for index, values in chunk_result.results:
                            record(index, values)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise

    # ------------------------------------------------------------------
    def _finalize_job(
        self,
        job: CharacterizationJob,
        keys: Dict[str, str],
        values_by_point: List[List[float]],
        checkpoint: Path,
        job_stats: Optional[JobStats] = None,
    ) -> None:
        metadata: Dict[str, object] = {"kind": job.kind}
        if job_stats is not None:
            metadata["telemetry"] = job_stats.telemetry_summary()
        tables = job.assemble(values_by_point)
        health: Dict[str, dict] = {}
        if self.auditor is not None:
            # Audit after the metrics snapshot above was taken, so the
            # manifest telemetry summary records the *build* cost only;
            # the audit's own direct solves tick audit_direct_solve.
            reports = self.auditor.audit_job(job, tables)
            health = {name: r.to_dict() for name, r in reports.items()}
            if job_stats is not None:
                job_stats.health.update(health)
        for table in tables:
            table_metadata = dict(metadata)
            if table.name in health:
                table_metadata["health"] = health[table.name]
            self.library.put(
                table,
                key=keys[table.name],
                layer=job.layer,
                family=job.family,
                frequency=job.frequency,
                job_id=job.job_id,
                metadata=table_metadata,
            )
        try:
            checkpoint.unlink()
        except OSError:
            pass


def build_library(
    library: Union[TableLibrary, str, Path],
    jobs: Sequence[CharacterizationJob],
    workers: Optional[int] = None,
    parallel: bool = True,
    progress: Optional[ProgressFn] = None,
    auditor=None,
    disk_memo: Optional[Union[str, Path]] = None,
) -> BuildStats:
    """Convenience wrapper: run *jobs* into *library* and return stats."""
    runner = BuildRunner(library, workers=workers, parallel=parallel,
                         progress=progress, auditor=auditor,
                         disk_memo=disk_memo)
    return runner.build(jobs)
