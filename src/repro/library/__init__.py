"""Characterization library: durable table storage + parallel builds.

The design-kit half of the paper's methodology ("the tables can be
built into the design kit"): a content-addressed
:class:`~repro.library.store.TableLibrary` persists characterized
:class:`~repro.tables.lookup.ExtractionTable` blobs keyed by the sha256
of what was solved, declarative
:class:`~repro.library.jobs.CharacterizationJob` specs describe what to
build, and :class:`~repro.library.runner.BuildRunner` fans the field
solves out over a process pool with point-level resume checkpoints.

Build once::

    from repro.library import (TableLibrary, BuildRunner,
                               standard_clocktree_jobs)

    jobs = standard_clocktree_jobs(cpw, frequency=GHz(6.4),
                                   widths=[...], lengths=[...])
    BuildRunner("kit/").build(jobs)          # minutes of field solving

then every extraction run is warm::

    extractor = ClocktreeRLCExtractor(cpw, frequency=GHz(6.4),
                                      library="kit/")   # zero solves
"""

from repro.library.jobs import (
    CharacterizationJob,
    LoopTableJob,
    MutualLoopJob,
    PartialMutualInductanceJob,
    PartialSelfInductanceJob,
    ThreeTraceCapacitanceJob,
    TotalCapacitanceJob,
    config_fingerprint,
    standard_clocktree_jobs,
)
from repro.library.runner import (
    BuildRunner,
    BuildStats,
    JobProgress,
    JobStats,
    build_library,
)
from repro.library.store import (
    SCHEMA_VERSION,
    LibraryEntry,
    TableLibrary,
    cache_key,
    canonical_json,
    open_library,
)

__all__ = [
    "CharacterizationJob",
    "LoopTableJob",
    "MutualLoopJob",
    "PartialMutualInductanceJob",
    "PartialSelfInductanceJob",
    "ThreeTraceCapacitanceJob",
    "TotalCapacitanceJob",
    "config_fingerprint",
    "standard_clocktree_jobs",
    "BuildRunner",
    "BuildStats",
    "JobProgress",
    "JobStats",
    "build_library",
    "SCHEMA_VERSION",
    "LibraryEntry",
    "TableLibrary",
    "cache_key",
    "canonical_json",
    "open_library",
]
