"""Persistent on-disk shard for the Lp memo cache.

The Hoer-Love values the dedup assembly memoizes are pure functions of
their canonical 9-float signature, so they are reusable *forever* --
across processes, across builds, across daemon restarts.  This module
persists the process-wide :class:`~repro.peec.kernel.LpMemoCache` as a
content-addressed shard file:

* **Format** -- one JSON document ``{"version", "sha256", "entries"}``
  where ``entries`` is a list of ``[key_hex, value]`` pairs in LRU ->
  MRU order (the MRU tail survives a capacity-bounded load) and
  ``sha256`` is the digest of the canonical JSON encoding of
  ``entries``.  Keys are the raw 72-byte signature bytes, hex-encoded;
  values round-trip exactly because ``repr`` of a float is its shortest
  exact decimal.
* **Crash safety** -- writes go through
  :func:`repro.ioutil.atomic_write_text` (tempfile + fsync +
  ``os.replace``), so a reader never observes a torn shard: it sees
  either the old complete file or the new complete file.
* **Corruption tolerance** -- a missing, truncated, version-skewed or
  digest-mismatched shard loads as *empty* (ticking
  ``lp_disk_memo_corrupt``); the cache then simply re-warms from
  scratch.  A bad shard can cost time, never correctness.
* **Concurrent writers** -- :meth:`DiskMemoShard.flush` re-reads the
  shard and merges the in-memory entries on top before the atomic
  replace.  Two racing flushes still last-win on the *file*, but every
  observable state is a valid shard and no flush can truncate another
  writer's entries it has already read.

Usage: :func:`warm_lp_memo` at process start, :func:`flush_lp_memo`
after assembly work -- both operate on the global
:func:`~repro.peec.kernel.lp_memo_cache`.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import SolverError
from repro.ioutil import atomic_write_text
from repro.peec.kernel import LpMemoCache, lp_memo_cache
from repro.telemetry import (
    LP_DISK_MEMO_CORRUPT,
    LP_DISK_MEMO_FLUSH,
    LP_DISK_MEMO_WARM,
    get_registry,
)

__all__ = [
    "SHARD_VERSION",
    "DiskMemoShard",
    "warm_lp_memo",
    "flush_lp_memo",
]

#: On-disk shard format version; mismatched shards load as empty.
SHARD_VERSION = 1


def _entries_digest(entries: List[List]) -> str:
    """sha256 over the canonical JSON encoding of the entry list."""
    canonical = json.dumps(entries, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskMemoShard:
    """One persistent shard file backing an :class:`LpMemoCache`.

    Parameters
    ----------
    path:
        Shard file location (created on first flush; parent directories
        are created as needed).
    capacity:
        Maximum entries retained on load and flush; the MRU tail wins.
        Defaults to :attr:`LpMemoCache.DEFAULT_CAPACITY` so a shard
        never outgrows the in-memory cache it feeds.
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = LpMemoCache.DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise SolverError("disk memo capacity must be >= 1")
        self.path = Path(path)
        self.capacity = int(capacity)

    # ------------------------------------------------------------------
    def load_entries(self) -> List[Tuple[bytes, float]]:
        """Entries from disk in LRU -> MRU order (empty when unusable).

        Every way a shard can be bad -- absent, unreadable, truncated
        mid-write by a crash without atomic replace, version-skewed,
        digest-mismatched, malformed keys -- degrades to an empty load
        plus an ``lp_disk_memo_corrupt`` tick (absent files are simply
        cold, not corrupt).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        except OSError:
            get_registry().inc(LP_DISK_MEMO_CORRUPT)
            return []
        try:
            document = json.loads(text)
            if not isinstance(document, dict):
                raise ValueError("shard is not a JSON object")
            if document.get("version") != SHARD_VERSION:
                raise ValueError(f"shard version {document.get('version')!r}")
            entries = document["entries"]
            if document["sha256"] != _entries_digest(entries):
                raise ValueError("shard digest mismatch")
            decoded = [
                (bytes.fromhex(key_hex), float(value))
                for key_hex, value in entries
            ]
        except (KeyError, TypeError, ValueError):
            get_registry().inc(LP_DISK_MEMO_CORRUPT)
            return []
        if len(decoded) > self.capacity:
            decoded = decoded[-self.capacity:]  # keep the MRU tail
        return decoded

    def warm(self, cache: Optional[LpMemoCache] = None) -> int:
        """Load the shard into *cache* (default: the global memo).

        Returns the number of entries warmed (0 for a cold or corrupt
        shard) and ticks ``lp_disk_memo_warm`` by that amount.  Entries
        are stored in LRU -> MRU order so the cache's own eviction order
        matches the shard's.
        """
        cache = cache if cache is not None else lp_memo_cache()
        entries = self.load_entries()
        if entries:
            keys, values = zip(*entries)
            cache.store(keys, values)
            get_registry().inc(LP_DISK_MEMO_WARM, len(entries))
        return len(entries)

    def flush(self, cache: Optional[LpMemoCache] = None) -> int:
        """Merge *cache* (default: the global memo) onto the shard.

        Read-merge-write: existing on-disk entries are kept and the
        cache's entries land on top (refreshing their recency), the
        merged list is bounded to *capacity* keeping the MRU tail, and
        the file is atomically replaced.  Returns the number of entries
        written and ticks ``lp_disk_memo_flush`` by that amount.
        """
        cache = cache if cache is not None else lp_memo_cache()
        merged: "OrderedDict[bytes, float]" = OrderedDict(self.load_entries())
        for key, value in cache.items_snapshot():
            merged[key] = value
            merged.move_to_end(key)
        while len(merged) > self.capacity:
            merged.popitem(last=False)
        entries = [[key.hex(), value] for key, value in merged.items()]
        document = {
            "version": SHARD_VERSION,
            "sha256": _entries_digest(entries),
            "entries": entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, json.dumps(document))
        get_registry().inc(LP_DISK_MEMO_FLUSH, len(entries))
        return len(entries)


def warm_lp_memo(path: Union[str, Path]) -> int:
    """Warm the global Lp memo from the shard at *path* (0 if cold)."""
    return DiskMemoShard(path).warm()


def flush_lp_memo(path: Union[str, Path]) -> int:
    """Flush the global Lp memo to the shard at *path*."""
    return DiskMemoShard(path).flush()
