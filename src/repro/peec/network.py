"""Filament-level network solver for multi-node PEEC problems.

Loop-inductance questions beyond a single go-and-return pair -- the full
interconnect trees of the paper's Table I, or a trace array over a meshed
ground plane -- are circuit problems: conductors connect named nodes, every
filament of a conductor spans the conductor's two terminal nodes, and all
filaments couple through the dense partial-inductance matrix.

:class:`FilamentNetwork` assembles the nodal system
``(A Z^-1 A^T) v = j`` with ``Z = diag(R) + j omega Lp`` and answers input
impedance / transfer questions, from which loop resistance and inductance
follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import RHO_CU
from repro.errors import CircuitError, SolverError
from repro.geometry.primitives import RectBar
from repro.peec.mesh import FilamentMesh, mesh_bar
from repro.peec.solver import assemble_partial_inductance_matrix


@dataclass
class NetworkSolution:
    """Result of one frequency-domain network solve."""

    frequency: float
    node_voltages: Dict[str, complex]
    conductor_currents: Dict[str, complex]

    def voltage_between(self, node_plus: str, node_minus: str) -> complex:
        """Voltage of *node_plus* relative to *node_minus*."""
        return self.node_voltages[node_plus] - self.node_voltages[node_minus]


class FilamentNetwork:
    """A circuit of mutually coupled meshed conductors.

    Conductors are added between named nodes; the reference (ground) node
    is fixed at construction.  Current through a conductor is positive
    from ``node_a`` to ``node_b``.
    """

    def __init__(self, ground: str = "0"):
        self.ground = ground
        self._conductor_names: List[str] = []
        self._meshes: List[FilamentMesh] = []
        self._resistivities: List[float] = []
        self._terminals: List[Tuple[str, str]] = []
        self._resistor_names: List[str] = []
        self._resistor_values: List[float] = []
        self._resistor_terminals: List[Tuple[str, str]] = []
        self._lp: Optional[np.ndarray] = None

    def add_conductor(
        self,
        name: str,
        bar: RectBar,
        node_a: str,
        node_b: str,
        resistivity: float = RHO_CU,
        n_width: int = 1,
        n_thickness: int = 1,
        grading: float = 1.0,
        mesh: Optional[FilamentMesh] = None,
    ) -> None:
        """Add a conductor between *node_a* and *node_b*.

        A pre-built *mesh* overrides the ``n_width``/``n_thickness``/
        ``grading`` meshing parameters.
        """
        if name in self._conductor_names:
            raise CircuitError(f"duplicate conductor name {name!r}")
        if node_a == node_b:
            raise CircuitError(f"conductor {name!r} connects a node to itself")
        if mesh is None:
            mesh = mesh_bar(bar, n_width=n_width, n_thickness=n_thickness, grading=grading)
        self._conductor_names.append(name)
        self._meshes.append(mesh)
        self._resistivities.append(resistivity)
        self._terminals.append((node_a, node_b))
        self._lp = None  # geometry changed; invalidate cache

    def add_resistor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        resistance: float = 1e-6,
    ) -> None:
        """Add an uncoupled resistive branch (e.g. a leaf short or a via).

        The branch carries no partial inductance; use a small resistance
        for a near-ideal short.
        """
        if name in self._conductor_names or name in self._resistor_names:
            raise CircuitError(f"duplicate conductor name {name!r}")
        if node_a == node_b:
            raise CircuitError(f"resistor {name!r} connects a node to itself")
        if resistance <= 0.0:
            raise CircuitError(f"resistor {name!r} must be positive")
        self._resistor_names.append(name)
        self._resistor_values.append(resistance)
        self._resistor_terminals.append((node_a, node_b))

    @property
    def num_conductors(self) -> int:
        """Number of conductors added so far."""
        return len(self._conductor_names)

    def node_names(self) -> List[str]:
        """All node names, ground first."""
        names = [self.ground]
        for a, b in list(self._terminals) + list(self._resistor_terminals):
            for node in (a, b):
                if node not in names:
                    names.append(node)
        return names

    def _check_connectivity(self, nodes: List[str]) -> None:
        """Every node must reach ground through branches (else singular)."""
        parent = {name: name for name in nodes}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in list(self._terminals) + list(self._resistor_terminals):
            parent[find(a)] = find(b)
        root = find(self.ground)
        floating = [n for n in nodes if find(n) != root]
        if floating:
            raise SolverError(
                f"nodes {floating} form a floating subnetwork with no path "
                "to the ground node; tie them or remove the conductors"
            )

    def _filament_system(self) -> Tuple[List[RectBar], np.ndarray, np.ndarray, List[int]]:
        """Flatten meshes: filaments, resistances, Lp matrix, owner index."""
        filaments: List[RectBar] = []
        resistances: List[float] = []
        owner: List[int] = []
        for ci, mesh in enumerate(self._meshes):
            filaments.extend(mesh.filaments)
            resistances.extend(mesh.resistances(self._resistivities[ci]))
            owner.extend([ci] * len(mesh))
        if self._lp is None:
            self._lp = assemble_partial_inductance_matrix(filaments)
        return filaments, np.array(resistances), self._lp, owner

    def solve(
        self,
        frequency: float,
        injections: Dict[str, complex],
    ) -> NetworkSolution:
        """Solve the network with current *injections* per node [A].

        Injections must sum (implicitly) to a return at the ground node.
        Returns node voltages (ground = 0) and per-conductor currents.
        """
        if self.num_conductors == 0:
            raise CircuitError("network has no conductors")
        if frequency < 0.0:
            raise SolverError("frequency must be non-negative")
        nodes = self.node_names()
        node_index = {name: i for i, name in enumerate(nodes)}
        for node in injections:
            if node not in node_index:
                raise CircuitError(f"injection at unknown node {node!r}")
        self._check_connectivity(nodes)

        filaments, resistances, lp, owner = self._filament_system()
        n_fil = len(filaments)
        n_res = len(self._resistor_names)
        n_branch = n_fil + n_res
        omega = 2.0 * np.pi * frequency
        z = np.zeros((n_branch, n_branch), dtype=complex)
        z[:n_fil, :n_fil] = np.diag(resistances)
        if omega > 0.0:
            z[:n_fil, :n_fil] += 1j * omega * lp
        for ri, value in enumerate(self._resistor_values):
            z[n_fil + ri, n_fil + ri] = value

        # Oriented incidence: +1 at node_a, -1 at node_b for each branch.
        a_full = np.zeros((len(nodes), n_branch))
        for fi in range(n_fil):
            na, nb = self._terminals[owner[fi]]
            a_full[node_index[na], fi] += 1.0
            a_full[node_index[nb], fi] -= 1.0
        for ri, (na, nb) in enumerate(self._resistor_terminals):
            a_full[node_index[na], n_fil + ri] += 1.0
            a_full[node_index[nb], n_fil + ri] -= 1.0

        a_red = a_full[1:, :]  # drop ground row
        try:
            y_branch = np.linalg.solve(z, a_red.T.astype(complex))
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"singular branch impedance matrix: {exc}") from exc
        y_nodal = a_red @ y_branch

        j = np.zeros(len(nodes) - 1, dtype=complex)
        for node, current in injections.items():
            idx = node_index[node]
            if idx > 0:
                j[idx - 1] = j[idx - 1] + current
        try:
            v_red = np.linalg.solve(y_nodal, j)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular nodal system (floating subnetwork or "
                f"zero-impedance loop): {exc}"
            ) from exc

        v_nodes = np.concatenate([[0.0 + 0.0j], v_red])
        branch_v = a_full.T @ v_nodes
        branch_i = np.linalg.solve(z, branch_v)

        currents: Dict[str, complex] = {}
        for ci, name in enumerate(self._conductor_names):
            mask = [fi for fi in range(n_fil) if owner[fi] == ci]
            currents[name] = complex(branch_i[mask].sum())
        for ri, name in enumerate(self._resistor_names):
            currents[name] = complex(branch_i[n_fil + ri])
        voltages = {name: complex(v_nodes[i]) for name, i in node_index.items()}
        return NetworkSolution(
            frequency=frequency,
            node_voltages=voltages,
            conductor_currents=currents,
        )

    def input_impedance(
        self,
        node_plus: str,
        node_minus: str,
        frequency: float,
    ) -> complex:
        """Driving-point impedance between two nodes at *frequency* [ohm].

        Injects a 1 A test current; ``node_minus`` need not be the ground
        node.
        """
        solution = self.solve(
            frequency, {node_plus: 1.0 + 0.0j, node_minus: -1.0 + 0.0j}
        )
        return solution.voltage_between(node_plus, node_minus)

    def loop_rl(
        self,
        node_plus: str,
        node_minus: str,
        frequency: float,
    ) -> Tuple[float, float]:
        """Loop resistance [ohm] and inductance [H] seen between two nodes."""
        if frequency <= 0.0:
            raise SolverError("frequency must be positive for an R/L split")
        z = self.input_impedance(node_plus, node_minus, frequency)
        omega = 2.0 * np.pi * frequency
        return z.real, z.imag / omega
