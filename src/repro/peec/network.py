"""Filament-level network solver for multi-node PEEC problems.

Loop-inductance questions beyond a single go-and-return pair -- the full
interconnect trees of the paper's Table I, or a trace array over a meshed
ground plane -- are circuit problems: conductors connect named nodes, every
filament of a conductor spans the conductor's two terminal nodes, and all
filaments couple through the dense partial-inductance matrix.

:class:`FilamentNetwork` assembles the nodal system
``(A Z^-1 A^T) v = j`` with ``Z = diag(R) + j omega Lp`` and answers input
impedance / transfer questions, from which loop resistance and inductance
follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import RHO_CU
from repro.errors import CircuitError, SolverError
from repro.geometry.primitives import RectBar
from repro.peec.kernel import ImpedanceFactorization
from repro.peec.mesh import FilamentMesh, mesh_bar
from repro.peec.solver import assemble_partial_inductance_matrix


@dataclass
class NetworkSolution:
    """Result of one frequency-domain network solve."""

    frequency: float
    node_voltages: Dict[str, complex]
    conductor_currents: Dict[str, complex]

    def voltage_between(self, node_plus: str, node_minus: str) -> complex:
        """Voltage of *node_plus* relative to *node_minus*."""
        return self.node_voltages[node_plus] - self.node_voltages[node_minus]


@dataclass
class _AssembledNetwork:
    """Frequency-independent precomputation shared by every solve.

    Built once per topology (invalidated whenever a conductor or
    resistor is added): the flattened filament system, incidence
    matrices, the factor-once filament impedance decomposition and its
    nodal projection, and the constant resistor-branch nodal admittance.
    """

    filaments: List[RectBar]
    resistances: np.ndarray
    lp: np.ndarray
    owner: np.ndarray
    nodes: List[str]
    node_index: Dict[str, int]
    a_full: np.ndarray
    a_red: np.ndarray
    n_fil: int
    factorization: ImpedanceFactorization
    #: ``A_f U`` -- reduced filament incidence in modal coordinates.
    modal_incidence: np.ndarray
    #: constant (real) nodal admittance of the uncoupled resistor branches
    resistor_nodal: np.ndarray
    resistor_values: np.ndarray
    #: (n_cond, n_fil) selector summing filament currents per conductor
    conductor_selector: np.ndarray


class FilamentNetwork:
    """A circuit of mutually coupled meshed conductors.

    Conductors are added between named nodes; the reference (ground) node
    is fixed at construction.  Current through a conductor is positive
    from ``node_a`` to ``node_b``.
    """

    def __init__(self, ground: str = "0"):
        self.ground = ground
        self._conductor_names: List[str] = []
        self._meshes: List[FilamentMesh] = []
        self._resistivities: List[float] = []
        self._terminals: List[Tuple[str, str]] = []
        self._resistor_names: List[str] = []
        self._resistor_values: List[float] = []
        self._resistor_terminals: List[Tuple[str, str]] = []
        self._lp: Optional[np.ndarray] = None
        self._system: Optional[_AssembledNetwork] = None

    def add_conductor(
        self,
        name: str,
        bar: RectBar,
        node_a: str,
        node_b: str,
        resistivity: float = RHO_CU,
        n_width: int = 1,
        n_thickness: int = 1,
        grading: float = 1.0,
        mesh: Optional[FilamentMesh] = None,
    ) -> None:
        """Add a conductor between *node_a* and *node_b*.

        A pre-built *mesh* overrides the ``n_width``/``n_thickness``/
        ``grading`` meshing parameters.
        """
        if name in self._conductor_names:
            raise CircuitError(f"duplicate conductor name {name!r}")
        if node_a == node_b:
            raise CircuitError(f"conductor {name!r} connects a node to itself")
        if mesh is None:
            mesh = mesh_bar(bar, n_width=n_width, n_thickness=n_thickness, grading=grading)
        self._conductor_names.append(name)
        self._meshes.append(mesh)
        self._resistivities.append(resistivity)
        self._terminals.append((node_a, node_b))
        self._lp = None  # geometry changed; invalidate caches
        self._system = None

    def add_resistor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        resistance: float = 1e-6,
    ) -> None:
        """Add an uncoupled resistive branch (e.g. a leaf short or a via).

        The branch carries no partial inductance; use a small resistance
        for a near-ideal short.
        """
        if name in self._conductor_names or name in self._resistor_names:
            raise CircuitError(f"duplicate conductor name {name!r}")
        if node_a == node_b:
            raise CircuitError(f"resistor {name!r} connects a node to itself")
        if resistance <= 0.0:
            raise CircuitError(f"resistor {name!r} must be positive")
        self._resistor_names.append(name)
        self._resistor_values.append(resistance)
        self._resistor_terminals.append((node_a, node_b))
        self._system = None  # topology changed; invalidate cache

    @property
    def num_conductors(self) -> int:
        """Number of conductors added so far."""
        return len(self._conductor_names)

    def node_names(self) -> List[str]:
        """All node names, ground first."""
        names = [self.ground]
        for a, b in list(self._terminals) + list(self._resistor_terminals):
            for node in (a, b):
                if node not in names:
                    names.append(node)
        return names

    def _check_connectivity(self, nodes: List[str]) -> None:
        """Every node must reach ground through branches (else singular)."""
        parent = {name: name for name in nodes}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in list(self._terminals) + list(self._resistor_terminals):
            parent[find(a)] = find(b)
        root = find(self.ground)
        floating = [n for n in nodes if find(n) != root]
        if floating:
            raise SolverError(
                f"nodes {floating} form a floating subnetwork with no path "
                "to the ground node; tie them or remove the conductors"
            )

    def _filament_system(self) -> Tuple[List[RectBar], np.ndarray, np.ndarray, List[int]]:
        """Flatten meshes: filaments, resistances, Lp matrix, owner index."""
        filaments: List[RectBar] = []
        resistances: List[float] = []
        owner: List[int] = []
        for ci, mesh in enumerate(self._meshes):
            filaments.extend(mesh.filaments)
            resistances.extend(mesh.resistances(self._resistivities[ci]))
            owner.extend([ci] * len(mesh))
        if self._lp is None:
            self._lp = assemble_partial_inductance_matrix(filaments)
        return filaments, np.array(resistances), self._lp, owner

    def _assembled(self) -> _AssembledNetwork:
        """Build (or reuse) every frequency-independent piece of the solve.

        This is the factor-once step: the filament Lp assembly, the
        eigendecomposition of ``diag(R) + j*w*Lp``, the incidence
        matrices and the constant resistor nodal admittance are computed
        on the first solve and shared by every subsequent frequency
        point and right-hand side.
        """
        if self._system is not None:
            return self._system
        nodes = self.node_names()
        node_index = {name: i for i, name in enumerate(nodes)}
        self._check_connectivity(nodes)

        filaments, resistances, lp, owner_list = self._filament_system()
        owner = np.array(owner_list, dtype=int)
        n_fil = len(filaments)
        n_res = len(self._resistor_names)
        n_branch = n_fil + n_res

        # Oriented incidence: +1 at node_a, -1 at node_b for each branch.
        a_full = np.zeros((len(nodes), n_branch))
        terminal_a = np.array(
            [node_index[self._terminals[ci][0]] for ci in owner], dtype=int
        ) if n_fil else np.zeros(0, dtype=int)
        terminal_b = np.array(
            [node_index[self._terminals[ci][1]] for ci in owner], dtype=int
        ) if n_fil else np.zeros(0, dtype=int)
        fil_cols = np.arange(n_fil)
        np.add.at(a_full, (terminal_a, fil_cols), 1.0)
        np.add.at(a_full, (terminal_b, fil_cols), -1.0)
        for ri, (na, nb) in enumerate(self._resistor_terminals):
            a_full[node_index[na], n_fil + ri] += 1.0
            a_full[node_index[nb], n_fil + ri] -= 1.0
        a_red = a_full[1:, :]  # drop ground row

        factorization = ImpedanceFactorization(resistances, lp)
        modal_incidence = a_red[:, :n_fil] @ factorization.u

        resistor_values = np.asarray(self._resistor_values, dtype=float)
        a_red_res = a_red[:, n_fil:]
        if n_res:
            resistor_nodal = (a_red_res / resistor_values[None, :]) @ a_red_res.T
        else:
            resistor_nodal = np.zeros((len(nodes) - 1, len(nodes) - 1))

        selector = np.zeros((len(self._conductor_names), n_fil))
        selector[owner, fil_cols] = 1.0

        self._system = _AssembledNetwork(
            filaments=filaments,
            resistances=resistances,
            lp=lp,
            owner=owner,
            nodes=nodes,
            node_index=node_index,
            a_full=a_full,
            a_red=a_red,
            n_fil=n_fil,
            factorization=factorization,
            modal_incidence=modal_incidence,
            resistor_nodal=resistor_nodal,
            resistor_values=resistor_values,
            conductor_selector=selector,
        )
        return self._system

    def _injection_vector(
        self, system: _AssembledNetwork, injections: Dict[str, complex]
    ) -> np.ndarray:
        j = np.zeros(len(system.nodes) - 1, dtype=complex)
        for node, current in injections.items():
            if node not in system.node_index:
                raise CircuitError(f"injection at unknown node {node!r}")
            idx = system.node_index[node]
            if idx > 0:
                j[idx - 1] = j[idx - 1] + current
        return j

    def _solve_factored(
        self, system: _AssembledNetwork, omega: float, j: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Nodal voltages and branch currents via the cached factorization.

        *j* may be a vector or an ``(n_nodes-1, k)`` stack of injection
        vectors -- the multi-RHS batch path: one nodal factorization
        serves every right-hand side.
        """
        scale = system.factorization.modal_scale(omega)
        g = system.modal_incidence
        y_nodal = (g * scale[None, :]) @ g.T + system.resistor_nodal
        try:
            v_red = np.linalg.solve(y_nodal, j)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular nodal system (floating subnetwork or "
                f"zero-impedance loop): {exc}"
            ) from exc
        # Filament branch currents: Z^{-1} A_f^T v = U (s * (G^T v)).
        modal_v = g.T @ v_red
        if v_red.ndim == 1:
            branch_fil = system.factorization.u @ (scale * modal_v)
        else:
            branch_fil = system.factorization.u @ (scale[:, None] * modal_v)
        if system.resistor_values.size:
            a_red_res = system.a_red[:, system.n_fil:]
            branch_v_res = a_red_res.T @ v_red
            if v_red.ndim == 1:
                branch_res = branch_v_res / system.resistor_values
            else:
                branch_res = branch_v_res / system.resistor_values[:, None]
            branch_i = np.concatenate([branch_fil, branch_res], axis=0)
        else:
            branch_i = branch_fil
        return v_red, branch_i

    def _solve_direct(
        self, system: _AssembledNetwork, omega: float, j: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-frequency LU reference path (the pre-kernel behavior)."""
        n_fil = system.n_fil
        n_branch = n_fil + system.resistor_values.size
        z = np.zeros((n_branch, n_branch), dtype=complex)
        z[:n_fil, :n_fil] = np.diag(system.resistances)
        if omega > 0.0:
            z[:n_fil, :n_fil] += 1j * omega * system.lp
        for ri, value in enumerate(system.resistor_values):
            z[n_fil + ri, n_fil + ri] = value
        try:
            y_branch = np.linalg.solve(z, system.a_red.T.astype(complex))
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"singular branch impedance matrix: {exc}") from exc
        y_nodal = system.a_red @ y_branch
        try:
            v_red = np.linalg.solve(y_nodal, j)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular nodal system (floating subnetwork or "
                f"zero-impedance loop): {exc}"
            ) from exc
        branch_v = system.a_red.T @ v_red
        branch_i = np.linalg.solve(z, branch_v)
        return v_red, branch_i

    def _package_solution(
        self,
        system: _AssembledNetwork,
        frequency: float,
        v_red: np.ndarray,
        branch_i: np.ndarray,
    ) -> NetworkSolution:
        v_nodes = np.concatenate([[0.0 + 0.0j], v_red])
        conductor_i = system.conductor_selector @ branch_i[: system.n_fil]
        currents: Dict[str, complex] = {
            name: complex(conductor_i[ci])
            for ci, name in enumerate(self._conductor_names)
        }
        for ri, name in enumerate(self._resistor_names):
            currents[name] = complex(branch_i[system.n_fil + ri])
        voltages = {
            name: complex(v_nodes[i]) for name, i in system.node_index.items()
        }
        return NetworkSolution(
            frequency=frequency,
            node_voltages=voltages,
            conductor_currents=currents,
        )

    def solve(
        self,
        frequency: float,
        injections: Dict[str, complex],
        factored: bool = True,
    ) -> NetworkSolution:
        """Solve the network with current *injections* per node [A].

        Injections must sum (implicitly) to a return at the ground node.
        Returns node voltages (ground = 0) and per-conductor currents.

        With ``factored=True`` (default) the filament impedance is
        diagonalized once and reused for every subsequent solve on this
        network -- a frequency sweep costs O(n^3) once plus O(n^2) per
        point.  ``factored=False`` keeps the per-frequency LU reference
        path (used by the golden equivalence tests and benchmarks).
        """
        if self.num_conductors == 0:
            raise CircuitError("network has no conductors")
        if frequency < 0.0:
            raise SolverError("frequency must be non-negative")
        system = self._assembled()
        j = self._injection_vector(system, injections)
        omega = 2.0 * np.pi * frequency
        if factored:
            v_red, branch_i = self._solve_factored(system, omega, j)
        else:
            v_red, branch_i = self._solve_direct(system, omega, j)
        return self._package_solution(system, frequency, v_red, branch_i)

    def solve_many(
        self,
        frequency: float,
        injection_sets: Sequence[Dict[str, complex]],
        factored: bool = True,
    ) -> List[NetworkSolution]:
        """Solve several injection patterns at one frequency in one batch.

        All right-hand sides share the assembled system, the impedance
        factorization *and* a single nodal matrix factorization --
        extracting a k-port impedance matrix costs one O(m^3) nodal
        solve instead of k of them.
        """
        if self.num_conductors == 0:
            raise CircuitError("network has no conductors")
        if frequency < 0.0:
            raise SolverError("frequency must be non-negative")
        if not injection_sets:
            return []
        system = self._assembled()
        j = np.column_stack([
            self._injection_vector(system, injections)
            for injections in injection_sets
        ])
        omega = 2.0 * np.pi * frequency
        if factored:
            v_red, branch_i = self._solve_factored(system, omega, j)
        else:
            v_red, branch_i = self._solve_direct(system, omega, j)
        return [
            self._package_solution(
                system, frequency, v_red[:, k], branch_i[:, k]
            )
            for k in range(len(injection_sets))
        ]

    def input_impedance(
        self,
        node_plus: str,
        node_minus: str,
        frequency: float,
    ) -> complex:
        """Driving-point impedance between two nodes at *frequency* [ohm].

        Injects a 1 A test current; ``node_minus`` need not be the ground
        node.
        """
        solution = self.solve(
            frequency, {node_plus: 1.0 + 0.0j, node_minus: -1.0 + 0.0j}
        )
        return solution.voltage_between(node_plus, node_minus)

    def loop_rl(
        self,
        node_plus: str,
        node_minus: str,
        frequency: float,
    ) -> Tuple[float, float]:
        """Loop resistance [ohm] and inductance [H] seen between two nodes."""
        if frequency <= 0.0:
            raise SolverError("frequency must be positive for an R/L split")
        z = self.input_impedance(node_plus, node_minus, frequency)
        omega = 2.0 * np.pi * frequency
        return z.real, z.imag / omega
