"""Fast-path PEEC kernel: dedup-aware assembly and factor-once sweeps.

The cold cost of table characterization is concentrated in two places:

1. **Assembly** -- filling the dense filament partial-inductance matrix
   costs one Hoer-Love closed-form evaluation (64 primitive calls) per
   filament pair, O(n^2) of them.  But the Neumann integral is symmetric
   and translation invariant: a pair is determined by its two
   cross-sections plus a relative offset.  On the regular / graded
   meshes produced by :func:`repro.peec.mesh.mesh_bar` and on
   strip-meshed ground planes, huge numbers of pairs are congruent.
   :func:`assemble_partial_inductance_matrix` canonicalizes every
   same-axis pair to a relative-geometry *signature*
   (:func:`repro.peec.hoer_love.canonical_pair_parameters`), evaluates
   one Hoer-Love call per bitwise-unique signature, and scatters the
   values back over the upper and (by exact symmetry) lower triangle.
   Because :func:`~repro.peec.hoer_love.mutual_inductance_batch` itself
   evaluates every pair in the same canonical frame with a per-pair
   scale, the dedup path reproduces the naive full-matrix path
   *bit-for-bit* -- no tolerance games, even where the closed form is
   badly conditioned.

2. **Frequency sweeps** -- ``Z(w) = diag(R) + j*w*Lp`` was LU-factored
   from scratch at every frequency.  :class:`ImpedanceFactorization`
   instead diagonalizes the symmetric-definite pencil ``(Lp, diag(R))``
   once: with ``S = R^{-1/2} Lp R^{-1/2} = V diag(tau) V^T`` and
   ``U = R^{-1/2} V``,

       ``Z(w)^{-1} = U diag(1 / (1 + j*w*tau)) U^T``

   for *every* frequency -- O(n^3) once, O(n^2) per frequency and per
   right-hand side.  The ``tau`` are the L/R modal time constants of the
   filament system, so the factorization doubles as a physical summary
   of the skin-effect dynamics.

3. **Memoization** -- signatures are content keys, so assembled values
   can be reused *across* solver instances.  :class:`LpMemoCache` is a
   process-wide LRU consulted by the dedup assembly; neighboring grid
   points of a table build share congruent sub-blocks (identical ground
   strips, shield traces, self terms) and hit the cache instead of
   re-integrating.  Hit/miss counters live in
   :mod:`repro.telemetry`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.errors import GeometryError, SolverError
from repro.geometry.primitives import RectBar
from repro.telemetry import (
    LP_DEDUP_BYPASS,
    LP_MEMO_HIT,
    LP_MEMO_MISS,
    LP_PAIR_EVAL,
    LP_PAIR_TOTAL,
    get_registry,
    span,
)
from repro.peec.hoer_love import (
    _bar_to_x_frame,
    canonical_pair_parameters,
    mutual_inductance_batch,
)

__all__ = [
    "DEDUP_MIN_FILAMENTS",
    "LpMemoCache",
    "ImpedanceFactorization",
    "assemble_partial_inductance_matrix",
    "signature_keys",
    "signature_stats",
    "lp_memo_cache",
    "lp_memo_disabled",
]

#: Below this many same-axis filaments (and without a memo cache to
#: feed) signature dedup costs more than it saves -- the unique-sort
#: plus scatter overhead exceeds the n^2 broadcast it avoids (BENCH
#: ``smoke.ratio_vs_naive`` measured 0.907 at n=18) -- so assembly falls
#: through to the direct batched call.  Memo-backed assemblies always
#: dedup: their values must land in the cache for cross-build reuse.
DEDUP_MIN_FILAMENTS = 32


# ----------------------------------------------------------------------
# memo cache
# ----------------------------------------------------------------------
class LpMemoCache:
    """Process-wide LRU of canonical pair signature -> Lp value [H].

    Keys are the raw bytes of the canonical 9-float signature (exact --
    no rounding), so a hit returns the bit-identical value a fresh
    evaluation would produce.  The cache is thread-safe and bounded:
    once *capacity* entries are stored, the least recently used are
    evicted.

    Statistics (``hits`` / ``misses`` / ``evictions``) accumulate per
    instance; the global instance additionally ticks the
    ``lp_memo_hit`` / ``lp_memo_miss`` counters in the
    :mod:`repro.telemetry` registry.
    """

    #: ~9 floats of key + 1 float of value per entry; the default bounds
    #: the cache around tens of MB.
    DEFAULT_CAPACITY = 200_000

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise SolverError("memo cache capacity must be >= 1")
        self._capacity = int(capacity)
        self._data: "OrderedDict[bytes, float]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def capacity(self) -> int:
        """Maximum number of cached pair values."""
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries if shrinking."""
        if capacity < 1:
            raise SolverError("memo cache capacity must be >= 1")
        with self._lock:
            self._capacity = int(capacity)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached value (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def lookup(self, keys: Sequence[bytes]) -> "tuple[Dict[int, float], List[int]]":
        """Split *keys* into ``(found, missing)``.

        Returns a dict mapping key index -> cached value, and the list
        of indices whose keys were absent.  Hit entries are refreshed in
        LRU order.
        """
        found: Dict[int, float] = {}
        missing: List[int] = []
        with self._lock:
            for i, key in enumerate(keys):
                value = self._data.get(key)
                if value is None:
                    missing.append(i)
                else:
                    self._data.move_to_end(key)
                    found[i] = value
            self.hits += len(found)
            self.misses += len(missing)
        registry = get_registry()
        if found:
            registry.inc(LP_MEMO_HIT, len(found))
        if missing:
            registry.inc(LP_MEMO_MISS, len(missing))
        return found, missing

    def store(self, keys: Sequence[bytes], values: Sequence[float]) -> None:
        """Insert freshly evaluated values, evicting LRU beyond capacity."""
        with self._lock:
            for key, value in zip(keys, values):
                self._data[key] = float(value)
                self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def items_snapshot(self) -> "List[tuple[bytes, float]]":
        """Entries in LRU -> MRU order (a consistent point-in-time copy)."""
        with self._lock:
            return list(self._data.items())


_GLOBAL_MEMO = LpMemoCache()
_MEMO_ENABLED = True


def lp_memo_cache() -> LpMemoCache:
    """The process-wide memo cache consulted by the dedup assembly."""
    return _GLOBAL_MEMO


@contextmanager
def lp_memo_disabled() -> Iterator[None]:
    """Context manager: bypass the global memo cache inside the block."""
    global _MEMO_ENABLED
    previous = _MEMO_ENABLED
    _MEMO_ENABLED = False
    try:
        yield
    finally:
        _MEMO_ENABLED = previous


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def _group_by_axis(bars: Sequence[RectBar]) -> Dict[str, List[int]]:
    groups: Dict[str, List[int]] = {}
    for i, bar in enumerate(bars):
        groups.setdefault(bar.axis, []).append(i)
    return groups


def _pair_signatures(frames: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Upper-triangle indices and canonical (m, 9) signature rows.

    *frames* is the (n, 6) array of x-frame parameters
    ``(x0, l, y0, w, z0, t)``.  Signature columns are
    ``(l1, w1, t1, l2, w2, t2, ox, oy, oz)`` after orientation
    canonicalization -- exactly the quantities
    :func:`~repro.peec.hoer_love.mutual_inductance_batch` reduces a pair
    to internally, so signature-equal pairs evaluate bit-identically.
    """
    n = frames.shape[0]
    iu, ju = np.triu_indices(n)
    f1 = frames[iu]
    f2 = frames[ju]
    ox = f2[:, 0] - f1[:, 0] + 0.0
    oy = f2[:, 2] - f1[:, 2] + 0.0
    oz = f2[:, 4] - f1[:, 4] + 0.0
    columns = canonical_pair_parameters(
        f1[:, 1], f1[:, 3], f1[:, 5],
        f2[:, 1], f2[:, 3], f2[:, 5],
        ox, oy, oz,
    )
    return iu, ju, np.column_stack(columns)


def _evaluate_signatures(signatures: np.ndarray) -> np.ndarray:
    """One Hoer-Love evaluation per canonical signature row."""
    if signatures.size == 0:
        return np.zeros(0)
    s = signatures
    zeros = np.zeros(s.shape[0])
    values = mutual_inductance_batch(
        zeros, s[:, 0], zeros, s[:, 1], zeros, s[:, 2],
        s[:, 6], s[:, 3], s[:, 7], s[:, 4], s[:, 8], s[:, 5],
    )
    return np.atleast_1d(np.asarray(values, dtype=float))


def signature_keys(signatures: np.ndarray) -> List[bytes]:
    """Memo keys (one ``bytes`` per row) for an (m, 9) signature array.

    Serializes the whole array in one ``tobytes`` pass and slices out the
    72-byte rows -- byte-identical to per-row ``row.tobytes()`` but
    without m separate numpy-scalar round trips, which dominated warm
    assembly at large unique-signature counts.
    """
    if signatures.size == 0:
        return []
    rows = np.ascontiguousarray(signatures)
    width = rows.shape[1] * rows.itemsize
    blob = rows.tobytes()
    return [blob[i * width:(i + 1) * width] for i in range(rows.shape[0])]


def _assemble_block_dedup(
    frames: np.ndarray,
    memo: Optional[LpMemoCache],
    dedup_min: Optional[int] = None,
) -> np.ndarray:
    """Dense Lp block for one same-axis filament group via signature dedup."""
    n = frames.shape[0]
    if dedup_min is None:
        dedup_min = DEDUP_MIN_FILAMENTS
    if memo is None and n < dedup_min:
        get_registry().inc(LP_DEDUP_BYPASS)
        return _assemble_block_naive(frames)
    iu, ju, signatures = _pair_signatures(frames)
    get_registry().inc(LP_PAIR_TOTAL, signatures.shape[0])
    unique, inverse = np.unique(signatures, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy >= 2.0 returns the input shape
    values = np.empty(unique.shape[0])
    if memo is not None:
        keys = signature_keys(unique)
        found, missing = memo.lookup(keys)
        for i, value in found.items():
            values[i] = value
        if missing:
            fresh = _evaluate_signatures(unique[missing])
            get_registry().inc(LP_PAIR_EVAL, len(missing))
            values[missing] = fresh
            memo.store([keys[i] for i in missing], fresh)
    else:
        values[:] = _evaluate_signatures(unique)
        get_registry().inc(LP_PAIR_EVAL, unique.shape[0])
    block = np.empty((n, n))
    flat = values[inverse]
    block[iu, ju] = flat
    block[ju, iu] = flat
    return block


def _assemble_block_naive(frames: np.ndarray) -> np.ndarray:
    """Dense Lp block via one full n x n Hoer-Love broadcast (baseline)."""
    x0, length, y0, width, z0, thickness = frames.T
    registry = get_registry()
    registry.inc(LP_PAIR_TOTAL, frames.shape[0] * frames.shape[0])
    registry.inc(LP_PAIR_EVAL, frames.shape[0] * frames.shape[0])
    return mutual_inductance_batch(
        x0[:, None], length[:, None], y0[:, None],
        width[:, None], z0[:, None], thickness[:, None],
        x0[None, :], length[None, :], y0[None, :],
        width[None, :], z0[None, :], thickness[None, :],
    )


def assemble_partial_inductance_matrix(
    bars: Sequence[RectBar],
    method: str = "dedup",
    memo: Union[LpMemoCache, bool, None] = True,
    dedup_min: Optional[int] = None,
) -> np.ndarray:
    """Exact partial-inductance matrix [H] over a list of bars.

    Bars with different current axes are mutually orthogonal and get an
    exactly zero entry (the PEEC property the paper uses to ignore
    adjacent routing layers); each same-axis block is filled by the
    selected assembly strategy.

    Parameters
    ----------
    bars:
        The (meshed) conductor filaments.
    method:
        ``"dedup"`` (default) evaluates one Hoer-Love call per unique
        canonical pair signature of the upper triangle and mirrors /
        scatters the results; ``"naive"`` evaluates the full ``n x n``
        broadcast (the pre-kernel behavior, kept as the benchmark and
        golden-test baseline).  Both produce bit-identical matrices.
    memo:
        ``True`` consults the process-wide :func:`lp_memo_cache` (unless
        suspended by :func:`lp_memo_disabled`), ``False`` / ``None``
        skips memoization, and an explicit :class:`LpMemoCache` instance
        uses that cache (dedup method only).
    dedup_min:
        Same-axis blocks smaller than this fall back to the direct
        batched evaluation when no memo cache is in play (dedup is a net
        loss on tiny assemblies); defaults to
        :data:`DEDUP_MIN_FILAMENTS`.  Pass ``1`` to force dedup
        regardless of block size.
    """
    n = len(bars)
    if n == 0:
        raise GeometryError("need at least one bar")
    if method not in ("dedup", "naive"):
        raise SolverError(f"unknown assembly method {method!r}")
    if memo is True:
        cache: Optional[LpMemoCache] = _GLOBAL_MEMO if _MEMO_ENABLED else None
    elif memo is False or memo is None:
        cache = None
    else:
        cache = memo
    lp = np.zeros((n, n))
    with span("peec.assemble", filaments=n, method=method):
        for indices in _group_by_axis(bars).values():
            frames = np.array([_bar_to_x_frame(bars[i]) for i in indices])
            if method == "dedup":
                block = _assemble_block_dedup(frames, cache, dedup_min)
            else:
                block = _assemble_block_naive(frames)
            lp[np.ix_(indices, indices)] = block
    return lp


def signature_stats(bars: Sequence[RectBar]) -> Dict[str, float]:
    """Dedup accounting for a bar set (no kernel evaluations performed).

    Returns the same-axis pair count of the upper triangle, the number
    of bitwise-unique canonical signatures, and their ratio -- the
    evaluation-count reduction the dedup assembly achieves before the
    memo cache is even consulted.
    """
    if not bars:
        raise GeometryError("need at least one bar")
    total = 0
    unique_total = 0
    for indices in _group_by_axis(bars).values():
        frames = np.array([_bar_to_x_frame(bars[i]) for i in indices])
        _, _, signatures = _pair_signatures(frames)
        total += signatures.shape[0]
        unique_total += np.unique(signatures, axis=0).shape[0]
    return {
        "pairs": float(total),
        "unique_signatures": float(unique_total),
        "dedup_factor": total / unique_total if unique_total else 1.0,
    }


# ----------------------------------------------------------------------
# factor-once frequency sweeps
# ----------------------------------------------------------------------
class ImpedanceFactorization:
    """Factor-once representation of ``Z(w) = diag(R) + j*w*Lp``.

    Diagonalizes the symmetric matrix ``R^{-1/2} Lp R^{-1/2}`` once
    (O(n^3)), after which a solve against ``Z(w)`` at *any* frequency
    costs two dense mat-vecs and a diagonal scale (O(n^2) per right-hand
    side):

        ``Z(w)^{-1} b = U diag(1 / (1 + j*w*tau)) U^T b``

    with ``U = R^{-1/2} V``.  The eigenvalues ``tau`` are the modal L/R
    time constants of the filament system; they are non-negative for any
    physical (positive semi-definite) Lp, so ``1 + j*w*tau`` never
    vanishes and the factored solve is unconditionally stable.

    Parameters
    ----------
    resistances:
        Positive filament resistances [ohm] (the diagonal of R).
    lp:
        Symmetric filament partial-inductance matrix [H].  A tiny
        asymmetry from assembly is symmetrized away.
    """

    def __init__(self, resistances: np.ndarray, lp: np.ndarray):
        r = np.asarray(resistances, dtype=float).reshape(-1)
        lp = np.asarray(lp, dtype=float)
        if lp.ndim != 2 or lp.shape[0] != lp.shape[1]:
            raise SolverError(f"Lp must be square, got shape {lp.shape}")
        if r.shape[0] != lp.shape[0]:
            raise SolverError(
                f"{r.shape[0]} resistances for a {lp.shape[0]}-filament Lp"
            )
        if not np.all(r > 0.0):
            raise SolverError("filament resistances must be positive")
        self.resistances = r
        root_inv = 1.0 / np.sqrt(r)
        symmetric = root_inv[:, None] * (0.5 * (lp + lp.T)) * root_inv[None, :]
        try:
            with span("peec.factorize", n=int(r.shape[0])):
                tau, vectors = np.linalg.eigh(symmetric)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - eigh on
            # symmetric input converges in practice
            raise SolverError(f"impedance factorization failed: {exc}") from exc
        #: Modal L/R time constants [s], ascending.
        self.tau = tau
        #: ``U = R^{-1/2} V``: maps modal to filament coordinates.
        self.u = root_inv[:, None] * vectors

    @property
    def n(self) -> int:
        """Number of filaments."""
        return self.resistances.shape[0]

    def modal_scale(self, omega: float) -> np.ndarray:
        """``1 / (1 + j*omega*tau)`` -- the modal admittance weights."""
        if omega < 0.0:
            raise SolverError("angular frequency must be non-negative")
        return 1.0 / (1.0 + 1j * omega * self.tau)

    def solve(self, omega: float, rhs: np.ndarray) -> np.ndarray:
        """``Z(omega)^{-1} rhs`` for a vector or (n, k) stack of RHS."""
        b = np.asarray(rhs)
        if b.shape[0] != self.n:
            raise SolverError(
                f"rhs has leading dimension {b.shape[0]}, expected {self.n}"
            )
        scale = self.modal_scale(omega)
        projected = self.u.T @ b
        if b.ndim == 1:
            return self.u @ (scale * projected)
        return self.u @ (scale[:, None] * projected)

    def reduced_admittance(self, omega: float, p: np.ndarray) -> np.ndarray:
        """``P^T Z(omega)^{-1} P`` without forming ``Z^{-1}`` (Schur step)."""
        projected = np.asarray(p).T @ self.u  # (k, n)
        scale = self.modal_scale(omega)
        return (projected * scale[None, :]) @ projected.T
