"""Cross-section filament meshing for skin-effect-aware extraction.

The paper extracts inductance at the *significant frequency* 0.32/t_r,
where current crowds toward conductor surfaces.  The volume-filament PEEC
method captures this by subdividing each conductor's cross-section into
filaments that each carry a uniform current; solving the coupled impedance
system then reproduces the frequency-dependent current distribution.
Edge-graded meshes put small filaments where the current crowds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar


def graded_intervals(total: float, count: int, ratio: float = 1.0) -> np.ndarray:
    """Split ``[0, total]`` into *count* cells graded toward both edges.

    With ``ratio > 1`` interior cells are *ratio* times wider per step away
    from the nearest edge, so edge cells are the smallest (skin-effect
    refinement).  ``ratio == 1`` gives a uniform split.  Returns the
    ``count + 1`` cell boundaries.
    """
    if count < 1:
        raise GeometryError("cell count must be >= 1")
    if total <= 0.0:
        raise GeometryError("total extent must be positive")
    if ratio <= 0.0:
        raise GeometryError("grading ratio must be positive")
    weights = np.array(
        [ratio ** min(i, count - 1 - i) for i in range(count)], dtype=float
    )
    widths = weights / weights.sum() * total
    return np.concatenate([[0.0], np.cumsum(widths)])


@dataclass
class FilamentMesh:
    """A conductor subdivided into parallel filaments (sub-bars).

    Attributes
    ----------
    parent:
        The original conductor bar.
    filaments:
        Sub-bars tiling the parent's cross-section, same axis and length.
    """

    parent: RectBar
    filaments: List[RectBar] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.filaments:
            raise GeometryError("a filament mesh needs at least one filament")

    def __len__(self) -> int:
        return len(self.filaments)

    @property
    def areas(self) -> np.ndarray:
        """Cross-section area of each filament [m^2]."""
        return np.array([f.cross_section_area for f in self.filaments])

    @property
    def total_area(self) -> float:
        """Total meshed cross-section area [m^2]."""
        return float(self.areas.sum())

    def resistances(self, resistivity: float) -> np.ndarray:
        """DC resistance of each filament [ohm]."""
        if resistivity <= 0.0:
            raise GeometryError("resistivity must be positive")
        return resistivity * self.parent.length / self.areas


def mesh_bar(
    bar: RectBar,
    n_width: int = 2,
    n_thickness: int = 2,
    grading: float = 1.0,
) -> FilamentMesh:
    """Mesh a bar's cross-section into ``n_width x n_thickness`` filaments.

    *grading* > 1 refines toward all four cross-section edges, which is
    where high-frequency current concentrates.
    """
    w_edges = graded_intervals(bar.width, n_width, grading)
    t_edges = graded_intervals(bar.thickness, n_thickness, grading)
    origin = bar.origin

    filaments: List[RectBar] = []
    for iw in range(n_width):
        for it in range(n_thickness):
            w0, w1 = w_edges[iw], w_edges[iw + 1]
            t0, t1 = t_edges[it], t_edges[it + 1]
            if bar.axis == "x":
                sub_origin = Point3D(origin.x, origin.y + w0, origin.z + t0)
            elif bar.axis == "y":
                sub_origin = Point3D(origin.x + w0, origin.y, origin.z + t0)
            else:
                sub_origin = Point3D(origin.x + w0, origin.y + t0, origin.z)
            filaments.append(
                RectBar(
                    origin=sub_origin,
                    length=bar.length,
                    width=w1 - w0,
                    thickness=t1 - t0,
                    axis=bar.axis,
                )
            )
    return FilamentMesh(parent=bar, filaments=filaments)


def skin_mesh_counts(
    width: float,
    thickness: float,
    skin_depth: float,
    max_per_side: int = 6,
) -> Tuple[int, int]:
    """Filament counts resolving the skin depth in each dimension.

    Aims for roughly one filament per skin depth across each cross-section
    dimension, clamped to ``[1, max_per_side]`` so table characterization
    stays cheap.
    """
    if skin_depth <= 0.0:
        raise GeometryError("skin depth must be positive")
    n_w = int(min(max_per_side, max(1, math.ceil(width / skin_depth))))
    n_t = int(min(max_per_side, max(1, math.ceil(thickness / skin_depth))))
    return n_w, n_t
