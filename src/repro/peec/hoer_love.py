"""Exact partial inductance of rectangular bars (Hoer-Love closed form).

This module is the numerical kernel of the RI3/FastHenry-equivalent field
solver: the six-fold Neumann volume integral between two parallel
rectangular conductors with uniform current density has an exact closed
form (C. Hoer and C. Love, *Exact inductance equations for rectangular
conductors with applications to more complicated geometries*, J. Res. NBS,
1965; restated by Ruehli 1972 and Zhong & Koh 2003).  The same expression
with both volumes coincident yields the exact self partial inductance.

All evaluations are vectorized over NumPy arrays so that the PEEC solver
can assemble full partial-inductance matrices in a handful of array
operations.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.constants import MU_0
from repro.errors import GeometryError
from repro.geometry.primitives import RectBar


def _log_term(a, b, c, rho):
    """(b^2 c^2/4 - b^4/24 - c^4/24) * a * ln((a + rho) / sqrt(b^2 + c^2)).

    Degenerate evaluation points (a == 0 or b == c == 0) contribute zero;
    they are masked out instead of letting log(0) poison the sum.
    """
    coeff = (b * b * c * c) / 4.0 - (b ** 4) / 24.0 - (c ** 4) / 24.0
    den_sq = b * b + c * c
    safe_den = np.where(den_sq > 0.0, np.sqrt(den_sq), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_part = np.log((a + rho) / safe_den)
        log_part = np.where(np.isfinite(log_part), log_part, 0.0)
        term = coeff * a * log_part
    return np.where((a > 0.0) & (den_sq > 0.0), term, 0.0)


def _atan_term(a, b, c, rho):
    """-(a b^3 c / 6) * atan(a c / (b rho)); zero when any factor vanishes."""
    mask = (a > 0.0) & (b > 0.0) & (c > 0.0)
    safe_b = np.where(mask, b, 1.0)
    safe_rho = np.where(rho > 0.0, rho, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        atan_part = np.arctan((a * c) / (safe_b * safe_rho))
        atan_part = np.where(np.isfinite(atan_part), atan_part, 0.0)
        term = -(a * b ** 3 * c) / 6.0 * atan_part
    return np.where(mask, term, 0.0)


def _primitive(x, y, z):
    """The Hoer-Love primitive f(x, y, z) (even in each argument)."""
    x = np.abs(np.asarray(x, dtype=float))
    y = np.abs(np.asarray(y, dtype=float))
    z = np.abs(np.asarray(z, dtype=float))
    rho = np.sqrt(x * x + y * y + z * z)
    result = (
        (x ** 4 + y ** 4 + z ** 4
         - 3.0 * (x * x * y * y + y * y * z * z + z * z * x * x))
        * rho / 60.0
    )
    result = result + _log_term(x, y, z, rho)
    result = result + _log_term(y, x, z, rho)
    result = result + _log_term(z, x, y, rho)
    result = result + _atan_term(x, y, z, rho)
    result = result + _atan_term(y, x, z, rho)
    result = result + _atan_term(x, z, y, rho)
    return result


#: Separation-to-size ratio above which the filament approximation is
#: used instead of the closed form.  The quadruple second-difference of
#: the Hoer-Love primitive cancels catastrophically when the
#: cross-sections are tiny compared to the separation (relative error
#: >1 % below ratio ~0.01 in float64), while the filament/GMD
#: approximation's error there is O((size/d)^2) < 1e-4 -- the same
#: switch-over FastHenry applies.
_FILAMENT_SWITCH_RATIO = 0.05


def _filament_mutual(x1, l1, x2, l2, distance):
    """Neumann mutual of two parallel filaments with longitudinal offset."""
    def primitive(u):
        root = np.sqrt(u * u + distance * distance)
        return u * np.arcsinh(u / np.maximum(distance, 1e-300)) - root

    total = (
        primitive(x1 + l1 - x2)
        - primitive(x1 - x2)
        - primitive(x1 + l1 - x2 - l2)
        + primitive(x1 - x2 - l2)
    )
    return (MU_0 / (4.0 * math.pi)) * total


def _axis_points(p, extent_p, q, extent_q):
    """Second-difference evaluation points and signs for one axis.

    The double integral over ``[p, p+P] x [q, q+Q]`` of a kernel g(u - v)
    equals ``G(p+P-q) - G(p-q) - G(p+P-q-Q) + G(p-q-Q)`` where G is the
    second antiderivative of g.
    """
    return (
        (p + extent_p - q, 1.0),
        (p - q, -1.0),
        (p + extent_p - q - extent_q, -1.0),
        (p - q - extent_q, 1.0),
    )


def canonical_pair_parameters(l1, w1, t1, l2, w2, t2, ox, oy, oz):
    """Canonical relative-geometry parameters of parallel-bar pairs.

    A pair of x-directed bars is fully described -- up to a translation
    the Neumann integral is invariant under -- by the two cross-section
    extents plus the offset ``(ox, oy, oz)`` of bar 2's origin relative
    to bar 1's.  The mutual inductance is also symmetric under swapping
    the bars, which maps ``(dims1, dims2, o)`` to ``(dims2, dims1, -o)``.
    This helper picks the lexicographically smaller of the two
    orientations (and normalizes ``-0.0`` offsets to ``+0.0``) so that

    * ``M(bar1, bar2)`` and ``M(bar2, bar1)`` evaluate bit-identical
      floating-point expressions (exactly symmetric Lp matrices), and
    * geometrically congruent pairs share one bitwise-unique parameter
      tuple -- the deduplication key of the fast assembly path in
      :mod:`repro.peec.kernel`.

    All nine arguments broadcast together; returns the nine canonical
    arrays in the same order.
    """
    args = np.broadcast_arrays(*(np.asarray(a, dtype=float) for a in
                                 (l1, w1, t1, l2, w2, t2, ox, oy, oz)))
    l1, w1, t1, l2, w2, t2, ox, oy, oz = args
    swap = np.zeros(np.shape(ox), dtype=bool)
    undecided = np.ones(np.shape(ox), dtype=bool)
    # Columns 4-6 of the swapped tuple mirror columns 1-3, so comparing
    # (dims2 vs dims1) then (-o vs o) decides the full lexicographic order.
    for a, b in ((l2, l1), (w2, w1), (t2, t1),
                 (-ox, ox), (-oy, oy), (-oz, oz)):
        less = undecided & (a < b)
        swap = swap | less
        undecided = undecided & ~(less | (a > b))
    out_l1 = np.where(swap, l2, l1)
    out_w1 = np.where(swap, w2, w1)
    out_t1 = np.where(swap, t2, t1)
    out_l2 = np.where(swap, l1, l2)
    out_w2 = np.where(swap, w1, w2)
    out_t2 = np.where(swap, t1, t2)
    out_ox = np.where(swap, -ox, ox) + 0.0
    out_oy = np.where(swap, -oy, oy) + 0.0
    out_oz = np.where(swap, -oz, oz) + 0.0
    return out_l1, out_w1, out_t1, out_l2, out_w2, out_t2, out_ox, out_oy, out_oz


def mutual_inductance_batch(
    x1, l1, y1, w1, z1, t1,
    x2, l2, y2, w2, z2, t2,
):
    """Exact mutual partial inductance for arrays of parallel-bar pairs [H].

    Both bars of every pair carry current along x; each bar ``i`` occupies
    ``[xi, xi+li] x [yi, yi+wi] x [zi, zi+ti]``.  All twelve arguments
    broadcast together, so a full Lp matrix can be assembled with one call
    on meshgrid-style inputs.  Passing the same geometry for both bars
    yields the exact self partial inductance.

    Every pair is evaluated in a canonical frame: bar 1 is re-anchored at
    the origin (the integral is translation invariant, and forming the
    relative offsets *first* keeps the second differences away from
    absolute-coordinate rounding noise), the two bars are ordered by
    :func:`canonical_pair_parameters` (so the result is exactly symmetric
    under operand swap), and each pair is scaled by its own largest
    extent.  The value therefore depends only on the pair's relative
    geometry -- bit-for-bit -- no matter how the surrounding batch is
    composed, which is what makes the deduplicating assembly and the memo
    cache of :mod:`repro.peec.kernel` exact rather than approximate.
    """
    args = [np.asarray(a, dtype=float) for a in
            (x1, l1, y1, w1, z1, t1, x2, l2, y2, w2, z2, t2)]
    x1, l1, y1, w1, z1, t1, x2, l2, y2, w2, z2, t2 = np.broadcast_arrays(*args)
    ox = x2 - x1 + 0.0
    oy = y2 - y1 + 0.0
    oz = z2 - z1 + 0.0
    l1, w1, t1, l2, w2, t2, ox, oy, oz = canonical_pair_parameters(
        l1, w1, t1, l2, w2, t2, ox, oy, oz)
    # Scale each pair to its characteristic length: f ~ length^5 over
    # areas ~ length^4, so M scales linearly and scaling improves
    # floating-point conditioning.  The scale is a per-pair quantity so
    # the result is independent of the batch composition.
    scale = np.maximum.reduce(
        [np.abs(a) for a in (l1, l2, w1, w2, t1, t2)])
    if not np.all(scale > 0.0):
        raise GeometryError("bars must have positive extents")
    inv = 1.0 / scale
    zero = np.zeros(np.shape(ox))
    x1, y1, z1 = zero, zero, zero
    l1, w1, t1 = l1 * inv, w1 * inv, t1 * inv
    x2, y2, z2 = ox * inv, oy * inv, oz * inv
    l2, w2, t2 = l2 * inv, w2 * inv, t2 * inv

    total = 0.0
    for vx, sx in _axis_points(x1, l1, x2, l2):
        for vy, sy in _axis_points(y1, w1, y2, w2):
            partial_sign = sx * sy
            for vz, sz in _axis_points(z1, t1, z2, t2):
                total = total + (partial_sign * sz) * _primitive(vx, vy, vz)

    area_product = w1 * t1 * w2 * t2
    exact = (MU_0 / (4.0 * math.pi)) * total / area_product * scale

    # Far pairs: the closed form cancels catastrophically, the filament
    # approximation (centre-to-centre distance) is essentially exact.
    dy = (y1 + w1 / 2.0) - (y2 + w2 / 2.0)
    dz = (z1 + t1 / 2.0) - (z2 + t2 / 2.0)
    distance = np.sqrt(dy * dy + dz * dz)
    size = np.maximum(w1 + t1, w2 + t2)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(distance > 0.0, size / np.maximum(distance, 1e-300), np.inf)
    use_filament = ratio < _FILAMENT_SWITCH_RATIO
    if np.any(use_filament):
        filament = _filament_mutual(x1, l1, x2, l2, distance) * scale
        exact = np.where(use_filament, filament, exact)
    if np.ndim(exact) == 0:
        return float(exact)
    return exact


def _bar_to_x_frame(bar: RectBar) -> Tuple[float, float, float, float, float, float]:
    """Map a bar to (x0, l, y0, w, z0, t) with current along x.

    Bars along y or z are rotated into the x-frame by a coordinate
    permutation, which leaves the Neumann integral invariant.
    """
    o = bar.origin
    if bar.axis == "x":
        return (o.x, bar.length, o.y, bar.width, o.z, bar.thickness)
    if bar.axis == "y":
        # current axis y -> x; transverse (x -> y, z -> z)
        return (o.y, bar.length, o.x, bar.width, o.z, bar.thickness)
    # axis z: current axis z -> x; transverse (x -> y, y -> z)
    return (o.z, bar.length, o.x, bar.width, o.y, bar.thickness)


def bar_mutual_inductance(bar1: RectBar, bar2: RectBar) -> float:
    """Exact mutual partial inductance between two parallel bars [H].

    Orthogonal bars have (exactly) zero mutual partial inductance under
    the PEEC model -- the property the paper uses to ignore adjacent
    orthogonal routing layers -- and this function returns 0.0 for them.
    """
    if bar1.is_orthogonal_to(bar2):
        return 0.0
    g1 = _bar_to_x_frame(bar1)
    g2 = _bar_to_x_frame(bar2)
    value = mutual_inductance_batch(
        g1[0], g1[1], g1[2], g1[3], g1[4], g1[5],
        g2[0], g2[1], g2[2], g2[3], g2[4], g2[5],
    )
    return float(value)


def bar_self_inductance(bar: RectBar) -> float:
    """Exact self partial inductance of a rectangular bar [H]."""
    return bar_mutual_inductance(bar, bar)
