"""Wideband R(f)/L(f) ladder synthesis for transient simulation.

The extraction tables hold loop R and L at one frequency, but skin and
proximity effects make both frequency-dependent (see
:mod:`repro.peec.sweep`).  The classic fix -- used alongside
FastHenry-style extractors -- synthesizes a passive ladder whose
impedance matches the swept Z(f): a series R_dc + L_inf plus parallel
R‖L branches, each branch contributing

    Z_k(w) = j w L_k / (1 + j w / w_k),     R_k = w_k L_k,

which is inductive below its corner w_k and resistive above it.  With
log-spaced corners the fit is *linear* in (R_dc, L_inf, L_k >= 0) and
solved by non-negative least squares, guaranteeing passivity.  The
resulting ladder drops into the MNA netlist, giving transient runs the
rising resistance and falling inductance a single-frequency model
cannot represent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.circuit.netlist import Circuit
from repro.errors import SolverError
from repro.peec.sweep import RLFrequencySweep


@dataclass
class WidebandLadder:
    """A passive ladder matching a swept loop impedance.

    ``r_dc`` and ``l_inf`` in series with ``len(branches)`` parallel
    R‖L sections; each branch is ``(R_k, L_k)``.
    """

    r_dc: float
    l_inf: float
    branches: List[Tuple[float, float]] = field(default_factory=list)

    def impedance(self, frequency) -> np.ndarray:
        """Ladder impedance at the given frequencies [ohm]."""
        omega = 2.0 * np.pi * np.asarray(frequency, dtype=float)
        z = self.r_dc + 1j * omega * self.l_inf
        for r_k, l_k in self.branches:
            if r_k <= 0.0 or l_k <= 0.0:
                continue
            z = z + (1j * omega * l_k * r_k) / (r_k + 1j * omega * l_k)
        return z

    def resistance(self, frequency) -> np.ndarray:
        """Effective series resistance R(f) of the ladder [ohm]."""
        return self.impedance(frequency).real

    def inductance(self, frequency) -> np.ndarray:
        """Effective series inductance L(f) of the ladder [H]."""
        omega = 2.0 * np.pi * np.asarray(frequency, dtype=float)
        return self.impedance(frequency).imag / omega

    @property
    def total_low_frequency_inductance(self) -> float:
        """L(0) = L_inf + sum of branch inductances."""
        return self.l_inf + sum(l for _, l in self.branches)

    @property
    def high_frequency_resistance(self) -> float:
        """R(infinity) = R_dc + sum of branch resistances."""
        return self.r_dc + sum(r for r, _ in self.branches)

    def stamp(self, circuit: Circuit, node_a: str, node_b: str,
              prefix: str) -> None:
        """Insert the ladder between two nodes of a circuit.

        Elements are named ``R{prefix}...`` / ``L{prefix}...``; internal
        nodes get the same prefix.
        """
        live_branches = [
            (r, l) for r, l in self.branches if r > 0.0 and l > 0.0
        ]
        chain = [node_a]
        chain += [f"{prefix}_w{k}" for k in range(1 + len(live_branches))]
        chain.append(node_b)
        # series R_dc
        circuit.add_resistor(f"R{prefix}_dc", chain[0], chain[1],
                             max(self.r_dc, 1e-9))
        # series L_inf
        circuit.add_inductor(f"L{prefix}_inf", chain[1], chain[2],
                             max(self.l_inf, 1e-18))
        # parallel R||L sections
        for k, (r_k, l_k) in enumerate(live_branches):
            n1, n2 = chain[2 + k], chain[3 + k]
            circuit.add_resistor(f"R{prefix}_b{k}", n1, n2, r_k)
            circuit.add_inductor(f"L{prefix}_b{k}", n1, n2, l_k)

    def fit_error(self, sweep: RLFrequencySweep) -> float:
        """Worst relative impedance-magnitude error against a sweep."""
        omega = 2.0 * np.pi * sweep.frequencies
        target = sweep.resistance + 1j * omega * sweep.inductance
        model = self.impedance(sweep.frequencies)
        return float(np.max(np.abs(model - target) / np.abs(target)))


def synthesize_ladder(
    sweep: RLFrequencySweep,
    n_branches: int = 4,
    corner_frequencies: Optional[np.ndarray] = None,
) -> WidebandLadder:
    """Fit a passive ladder to a swept loop impedance.

    Corners default to log-spaced frequencies across the sweep.  The fit
    is non-negative least squares on the stacked real/imaginary parts,
    so the result is passive by construction.
    """
    freqs = sweep.frequencies
    if freqs.size < n_branches + 2:
        raise SolverError(
            f"need at least {n_branches + 2} sweep points for "
            f"{n_branches} branches"
        )
    omega = 2.0 * np.pi * freqs
    target = sweep.resistance + 1j * omega * sweep.inductance

    if corner_frequencies is None:
        corner_frequencies = np.logspace(
            np.log10(freqs[0] * 2.0), np.log10(freqs[-1] * 0.8), n_branches
        )
    omega_k = 2.0 * np.pi * np.asarray(corner_frequencies, dtype=float)

    # columns: R_dc, L_inf, L_k...
    n_cols = 2 + omega_k.size
    basis = np.empty((freqs.size, n_cols), dtype=complex)
    basis[:, 0] = 1.0
    basis[:, 1] = 1j * omega
    for k, wk in enumerate(omega_k):
        basis[:, 2 + k] = 1j * omega / (1.0 + 1j * omega / wk)

    # weight rows by 1/|Z| so low- and high-frequency points count alike
    weights = 1.0 / np.abs(target)
    a_stack = np.vstack([
        (basis.real * weights[:, None]),
        (basis.imag * weights[:, None]),
    ])
    b_stack = np.concatenate([target.real * weights, target.imag * weights])
    solution, _ = nnls(a_stack, b_stack)

    r_dc, l_inf = float(solution[0]), float(solution[1])
    branches = [
        (float(wk * lk), float(lk))
        for wk, lk in zip(omega_k, solution[2:])
        if lk > 0.0
    ]
    return WidebandLadder(r_dc=r_dc, l_inf=l_inf, branches=branches)
