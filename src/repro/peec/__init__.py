"""PEEC inductance extraction: the numerical field-solver substrate.

This subpackage plays the role of Raphael RI3 / FastHenry in the paper: it
computes partial self and mutual inductances of rectangular conductors from
exact closed forms (:mod:`repro.peec.hoer_love`, :mod:`repro.peec.analytic`),
meshes conductor cross-sections into filaments to capture skin effect
(:mod:`repro.peec.mesh`), and solves frequency-domain loop problems with
designated return conductors and meshed ground planes
(:mod:`repro.peec.solver`, :mod:`repro.peec.loop`,
:mod:`repro.peec.ground_plane`).
"""

from repro.peec.analytic import (
    grover_self_inductance,
    mutual_inductance_filaments,
    mutual_inductance_parallel_segments,
    rectangle_self_gmd,
)
from repro.peec.hoer_love import (
    bar_mutual_inductance,
    bar_self_inductance,
)
from repro.peec.ground_plane import GroundPlane, plane_over_block, plane_under_block
from repro.peec.loop import LoopProblem, LoopSolution
from repro.peec.mesh import FilamentMesh, mesh_bar
from repro.peec.network import FilamentNetwork, NetworkSolution
from repro.peec.sweep import RLFrequencySweep, loop_frequency_sweep
from repro.peec.wideband import WidebandLadder, synthesize_ladder
from repro.peec.solver import (
    Conductor,
    PartialInductanceSolver,
    assemble_partial_inductance_matrix,
)

__all__ = [
    "GroundPlane",
    "plane_over_block",
    "plane_under_block",
    "FilamentNetwork",
    "NetworkSolution",
    "RLFrequencySweep",
    "loop_frequency_sweep",
    "WidebandLadder",
    "synthesize_ladder",
    "Conductor",
    "assemble_partial_inductance_matrix",
    "grover_self_inductance",
    "mutual_inductance_filaments",
    "mutual_inductance_parallel_segments",
    "rectangle_self_gmd",
    "bar_mutual_inductance",
    "bar_self_inductance",
    "FilamentMesh",
    "mesh_bar",
    "PartialInductanceSolver",
    "LoopProblem",
    "LoopSolution",
]
