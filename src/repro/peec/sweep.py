"""Frequency sweeps of loop resistance and inductance.

The extraction tables are characterized at one frequency -- the
significant frequency 0.32 / t_r of the switching edge.  These helpers
sweep R(f) and L(f) so the sensitivity of that choice can be quantified
(skin effect raises R and proximity crowding lowers L as frequency
grows), and estimate the error of characterizing at the wrong frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SolverError
from repro.peec.loop import LoopProblem


@dataclass
class RLFrequencySweep:
    """Loop R and L sampled over a frequency grid."""

    frequencies: np.ndarray
    resistance: np.ndarray
    inductance: np.ndarray

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.resistance = np.asarray(self.resistance, dtype=float)
        self.inductance = np.asarray(self.inductance, dtype=float)

    def resistance_at(self, frequency: float) -> float:
        """Log-frequency interpolation of R(f)."""
        return float(np.interp(np.log10(frequency),
                               np.log10(self.frequencies), self.resistance))

    def inductance_at(self, frequency: float) -> float:
        """Log-frequency interpolation of L(f)."""
        return float(np.interp(np.log10(frequency),
                               np.log10(self.frequencies), self.inductance))

    @property
    def resistance_ratio(self) -> float:
        """R at the highest frequency over R at the lowest."""
        return float(self.resistance[-1] / self.resistance[0])

    @property
    def inductance_drop(self) -> float:
        """Relative L decrease from the lowest to the highest frequency."""
        return float(1.0 - self.inductance[-1] / self.inductance[0])

    def characterization_error(self, used: float, actual: float) -> float:
        """Relative loop-L error from characterizing at the wrong frequency.

        ``used`` is the table's frequency, ``actual`` the frequency that
        matters for the waveform.
        """
        l_used = self.inductance_at(used)
        l_actual = self.inductance_at(actual)
        return abs(l_used - l_actual) / l_actual


def loop_frequency_sweep(
    problem: LoopProblem,
    frequencies: Sequence[float],
    factored: bool = True,
) -> RLFrequencySweep:
    """Solve a loop problem across a frequency grid.

    With ``factored=True`` (default) the problem's filament impedance is
    diagonalized once and reused across every grid point, so the sweep
    costs one O(n^3) eigendecomposition plus O(n^2) per frequency rather
    than a fresh LU factorization per point.  ``factored=False`` keeps
    the per-frequency reference path for equivalence checks.
    """
    freqs = np.asarray(sorted(frequencies), dtype=float)
    if freqs.size < 2:
        raise SolverError("sweep needs at least two frequencies")
    if freqs[0] <= 0.0:
        raise SolverError("frequencies must be positive")
    solutions = problem.solve_sweep(freqs, factored=factored)
    resistance = np.array([s.loop_resistance for s in solutions])
    inductance = np.array([s.loop_inductance for s in solutions])
    return RLFrequencySweep(
        frequencies=freqs, resistance=resistance, inductance=inductance
    )
