"""Loop inductance of trace blocks with designated returns.

This is the quantity the paper precomputes into tables for microstrip and
stripline structures: the loop inductance of a signal trace with its
return current carried by the AC-ground traces of the block and/or a
local ground plane, with all conductors merged at the far-end sink node
(Sec. II-B).  :class:`LoopProblem` builds the corresponding
:class:`~repro.peec.network.FilamentNetwork`, solves it at a chosen
frequency and also reports the open-circuit EMF-derived mutual loop
inductances to every non-return trace -- the quantities of the paper's
Fig. 5 matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.constants import RHO_CU
from repro.errors import GeometryError, SolverError
from repro.geometry.trace import Trace, TraceBlock
from repro.telemetry import LOOP_SOLVE, get_registry, span
from repro.peec.ground_plane import GroundPlane
from repro.peec.network import FilamentNetwork

#: Node names used by the canonical loop topology.
NODE_IN = "in"
NODE_RETURN = "ret"
NODE_FAR = "far"


@dataclass
class LoopSolution:
    """Loop extraction result at one frequency.

    Attributes
    ----------
    frequency:
        Solve frequency [Hz].
    loop_impedance:
        Driving-point impedance of the signal loop [ohm].
    mutual_loop_inductances:
        Open-circuit mutual loop inductance to each non-return trace,
        keyed by trace name [H].
    """

    frequency: float
    loop_impedance: complex
    mutual_loop_inductances: Dict[str, float] = field(default_factory=dict)

    @property
    def loop_resistance(self) -> float:
        """Loop resistance [ohm]."""
        return self.loop_impedance.real

    @property
    def loop_inductance(self) -> float:
        """Loop inductance [H]."""
        omega = 2.0 * np.pi * self.frequency
        return self.loop_impedance.imag / omega


class LoopProblem:
    """Loop inductance extraction for one signal trace of a block.

    Parameters
    ----------
    block:
        The n-trace block (paper Fig. 4).
    signal:
        Name or index of the driven trace.  Defaults to the single
        non-ground trace when unambiguous.
    plane:
        Optional local ground plane (microstrip); pass two planes for a
        stripline via *extra_planes*.
    extra_planes:
        Additional ground planes joining the return group.
    n_width, n_thickness, grading:
        Filament meshing parameters for the traces.
    resistivity:
        Trace metal resistivity [ohm*m].
    """

    def __init__(
        self,
        block: TraceBlock,
        signal: Union[str, int, None] = None,
        plane: Optional[GroundPlane] = None,
        extra_planes: Sequence[GroundPlane] = (),
        n_width: int = 4,
        n_thickness: int = 2,
        grading: float = 1.5,
        resistivity: float = RHO_CU,
    ):
        self.block = block
        self.signal_trace = self._resolve_signal(block, signal)
        self.planes: List[GroundPlane] = []
        if plane is not None:
            self.planes.append(plane)
        self.planes.extend(extra_planes)
        returns = [t for t in block.traces if t.is_ground]
        if not returns and not self.planes:
            raise GeometryError(
                "loop problem needs at least one return: a ground trace "
                "or a ground plane"
            )
        self.return_traces = returns
        self.open_traces = [
            t for t in block.traces
            if not t.is_ground and t is not self.signal_trace
        ]
        self._network = self._build_network(
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
            resistivity=resistivity,
        )

    @staticmethod
    def _resolve_signal(block: TraceBlock, signal) -> Trace:
        if isinstance(signal, int):
            return block.traces[signal]
        if isinstance(signal, str):
            for trace in block.traces:
                if trace.name == signal:
                    return trace
            raise GeometryError(f"no trace named {signal!r} in block")
        candidates = block.signal_traces
        if len(candidates) != 1:
            raise GeometryError(
                f"block has {len(candidates)} signal traces; "
                "specify which one to drive"
            )
        return candidates[0]

    @staticmethod
    def _near_node(trace: Trace) -> str:
        return f"near_{trace.name}"

    def _build_network(
        self, n_width: int, n_thickness: int, grading: float, resistivity: float
    ) -> FilamentNetwork:
        network = FilamentNetwork(ground=NODE_RETURN)
        network.add_conductor(
            self.signal_trace.name or "SIG",
            self.signal_trace.to_bar(),
            NODE_IN,
            NODE_FAR,
            resistivity=resistivity,
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
        )
        for trace in self.return_traces:
            network.add_conductor(
                trace.name,
                trace.to_bar(),
                NODE_RETURN,
                NODE_FAR,
                resistivity=resistivity,
                n_width=n_width,
                n_thickness=n_thickness,
                grading=grading,
            )
        for trace in self.open_traces:
            # Victim traces tie to the merged far node but float at the
            # near end, so they carry no net current and expose their
            # induced EMF at the floating terminal.
            network.add_conductor(
                trace.name,
                trace.to_bar(),
                self._near_node(trace),
                NODE_FAR,
                resistivity=resistivity,
                n_width=n_width,
                n_thickness=n_thickness,
                grading=grading,
            )
        for pi, plane in enumerate(self.planes):
            for si, strip in enumerate(plane.to_strips()):
                network.add_conductor(
                    f"plane{pi}_strip{si}",
                    strip,
                    NODE_RETURN,
                    NODE_FAR,
                    resistivity=plane.resistivity,
                    n_width=1,
                    n_thickness=1,
                )
        return network

    @property
    def network(self) -> FilamentNetwork:
        """The underlying filament network (for custom analyses)."""
        return self._network

    def solve(self, frequency: float, factored: bool = True) -> LoopSolution:
        """Extract loop R/L and victim EMF couplings at *frequency* [Hz].

        With ``factored=True`` (default) the network's factor-once
        impedance decomposition is built on the first call and reused by
        every subsequent solve of this problem, so a frequency sweep
        pays one O(n^3) eigendecomposition total instead of one LU
        factorization per point.  ``factored=False`` forces the
        per-frequency LU reference path.
        """
        if frequency <= 0.0:
            raise SolverError("frequency must be positive")
        get_registry().inc(LOOP_SOLVE)
        with span("peec.loop_solve", frequency=frequency):
            solution = self._network.solve(
                frequency, {NODE_IN: 1.0 + 0.0j}, factored=factored
            )
        return self._loop_solution(frequency, solution)

    def _loop_solution(self, frequency: float, solution) -> LoopSolution:
        z_loop = solution.node_voltages[NODE_IN]
        omega = 2.0 * np.pi * frequency
        mutuals: Dict[str, float] = {}
        for trace in self.open_traces:
            emf = solution.node_voltages[self._near_node(trace)]
            mutuals[trace.name] = emf.imag / omega
        return LoopSolution(
            frequency=frequency,
            loop_impedance=complex(z_loop),
            mutual_loop_inductances=mutuals,
        )

    def solve_sweep(
        self, frequencies: Sequence[float], factored: bool = True
    ) -> List[LoopSolution]:
        """Solve the loop problem at every frequency in *frequencies*.

        The filament impedance is diagonalized once (first call) and each
        frequency point then costs only an O(n^2) modal rescale plus a
        small nodal solve -- the factor-once sweep of the kernel layer.
        """
        freqs = [float(f) for f in frequencies]
        if not freqs:
            raise SolverError("sweep needs at least one frequency")
        if any(f <= 0.0 for f in freqs):
            raise SolverError("frequencies must be positive")
        get_registry().inc(LOOP_SOLVE, len(freqs))
        with span("peec.loop_sweep", points=len(freqs)):
            return [
                self._loop_solution(
                    f,
                    self._network.solve(
                        f, {NODE_IN: 1.0 + 0.0j}, factored=factored
                    ),
                )
                for f in freqs
            ]

    def loop_rl(self, frequency: float) -> Tuple[float, float]:
        """Convenience: (loop resistance [ohm], loop inductance [H])."""
        result = self.solve(frequency)
        return result.loop_resistance, result.loop_inductance
