"""Local ground planes for microstrip / stripline inductance extraction.

The paper's extension of the Foundations covers blocks with wide
power/ground wires in layer N+2 or N-2 acting as local ground planes.  A
continuous (or densely meshed) plane is modeled in the PEEC solver as an
array of parallel strips, all joining the merged return nodes at both
ends -- exactly the "merged ground nodes with the far end sink nodes"
construction of Sec. II-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.constants import RHO_CU, um
from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock


@dataclass(frozen=True)
class GroundPlane:
    """A rectangular ground plane, meshed into strips along the signal axis.

    Parameters
    ----------
    length:
        Extent along the current direction (x) [m].
    width:
        Transverse extent (y) [m].
    thickness:
        Metal thickness [m].
    z_bottom:
        Elevation of the bottom face [m].
    y_offset:
        Transverse position of the left edge [m].
    x_offset:
        Longitudinal position of the near edge [m].
    resistivity:
        Conductor resistivity [ohm*m].
    n_strips:
        Number of strips used to discretize the plane.
    """

    length: float
    width: float
    thickness: float
    z_bottom: float
    y_offset: float = 0.0
    x_offset: float = 0.0
    resistivity: float = RHO_CU
    n_strips: int = 11

    def __post_init__(self) -> None:
        if self.length <= 0.0 or self.width <= 0.0 or self.thickness <= 0.0:
            raise GeometryError("plane extents must be positive")
        if self.n_strips < 1:
            raise GeometryError("plane needs at least one strip")

    def to_strips(self) -> List[RectBar]:
        """Discretize the plane into equal-width strips carrying x current."""
        strip_width = self.width / self.n_strips
        strips = []
        for i in range(self.n_strips):
            strips.append(
                RectBar(
                    origin=Point3D(
                        self.x_offset,
                        self.y_offset + i * strip_width,
                        self.z_bottom,
                    ),
                    length=self.length,
                    width=strip_width,
                    thickness=self.thickness,
                    axis="x",
                )
            )
        return strips


def plane_under_block(
    block: TraceBlock,
    gap: float,
    margin: float = None,
    thickness: float = None,
    resistivity: float = RHO_CU,
    n_strips: int = 11,
) -> GroundPlane:
    """A local ground plane centred under a trace block (microstrip).

    Parameters
    ----------
    block:
        The trace block the plane shields.
    gap:
        Dielectric gap between the bottom of the block's traces and the
        top of the plane [m].
    margin:
        Extra plane width beyond each side of the block (defaults to the
        block's total width, i.e. the plane is three block-widths wide).
    thickness:
        Plane metal thickness (defaults to the trace thickness).
    """
    if gap <= 0.0:
        raise GeometryError("plane gap must be positive")
    first = block.traces[0]
    if margin is None:
        margin = block.total_width
    if thickness is None:
        thickness = first.thickness
    z_top = first.z_bottom - gap
    z_bottom = z_top - thickness
    if z_bottom < -1.0:  # sanity: planes metres below the die are a bug
        raise GeometryError("plane ends up implausibly far below the block")
    return GroundPlane(
        length=block.length,
        width=block.total_width + 2.0 * margin,
        thickness=thickness,
        z_bottom=z_bottom,
        y_offset=first.y_offset - margin,
        x_offset=first.x_offset,
        resistivity=resistivity,
        n_strips=n_strips,
    )


def plane_over_block(
    block: TraceBlock,
    gap: float,
    margin: float = None,
    thickness: float = None,
    resistivity: float = RHO_CU,
    n_strips: int = 11,
) -> GroundPlane:
    """A local ground plane centred above a trace block.

    Combine with :func:`plane_under_block` for a stripline configuration.
    """
    if gap <= 0.0:
        raise GeometryError("plane gap must be positive")
    first = block.traces[0]
    if margin is None:
        margin = block.total_width
    if thickness is None:
        thickness = first.thickness
    z_bottom = first.z_bottom + first.thickness + gap
    return GroundPlane(
        length=block.length,
        width=block.total_width + 2.0 * margin,
        thickness=thickness,
        z_bottom=z_bottom,
        y_offset=first.y_offset - margin,
        x_offset=first.x_offset,
        resistivity=resistivity,
        n_strips=n_strips,
    )
