"""Closed-form partial inductance formulas (Grover / Ruehli / GMD).

These are the textbook formulas the paper's Foundations rest on: the partial
self inductance of a trace depends only on its own (length, width,
thickness) and the partial mutual inductance of two parallel traces depends
only on the pair geometry.  They provide fast approximations and serve as
independent cross-checks for the exact Hoer-Love volume integrals in
:mod:`repro.peec.hoer_love`.

References: F. W. Grover, *Inductance Calculations*; A. E. Ruehli,
"Inductance calculations in a complex integrated circuit environment",
IBM J. Res. Dev., 1972 (the paper's ref [7]).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import MU_0
from repro.errors import GeometryError

#: Self geometric-mean-distance coefficient of a rectangular cross-section.
#: Grover's classic approximation GMD = 0.2235 (w + t), accurate to better
#: than 1 % for the aspect ratios of on-chip wiring.
SELF_GMD_COEFFICIENT = 0.2235


def rectangle_self_gmd(width: float, thickness: float) -> float:
    """Self geometric mean distance of a rectangular cross-section [m].

    The self partial inductance of a bar equals the mutual inductance of
    two fictitious filaments separated by this distance.
    """
    if width <= 0.0 or thickness <= 0.0:
        raise GeometryError("width and thickness must be positive")
    return SELF_GMD_COEFFICIENT * (width + thickness)


def mutual_inductance_filaments(length: float, distance: float) -> float:
    """Mutual partial inductance of two aligned parallel filaments [H].

    Both filaments have the same *length* and zero longitudinal offset;
    *distance* is the centre-to-centre separation.  Exact Neumann result:

        M = (mu0 / 2 pi) [ l ln((l + sqrt(l^2 + d^2)) / d)
                           - sqrt(l^2 + d^2) + d ]
    """
    if length <= 0.0:
        raise GeometryError("length must be positive")
    if distance <= 0.0:
        raise GeometryError("distance must be positive")
    l, d = length, distance
    root = math.hypot(l, d)
    return (MU_0 / (2.0 * math.pi)) * (l * math.log((l + root) / d) - root + d)


def _neumann_primitive(u, d):
    """Second antiderivative of 1/sqrt(u^2 + d^2): u asinh(u/d) - sqrt(u^2+d^2)."""
    u = np.asarray(u, dtype=float)
    root = np.sqrt(u * u + d * d)
    return u * np.arcsinh(u / d) - root


def mutual_inductance_parallel_segments(
    start1: float,
    end1: float,
    start2: float,
    end2: float,
    distance: float,
) -> float:
    """Mutual inductance of two parallel filaments with longitudinal offset [H].

    The filaments run along the same axis; filament 1 spans
    ``[start1, end1]``, filament 2 spans ``[start2, end2]`` and *distance*
    is the (perpendicular) separation between their axes.  Handles partial
    overlap, full overlap and collinear-but-offset arrangements exactly via
    the Neumann double integral.
    """
    if distance <= 0.0:
        raise GeometryError("distance must be positive")
    if end1 <= start1 or end2 <= start2:
        raise GeometryError("segment ends must exceed their starts")
    g = _neumann_primitive
    total = (
        g(end1 - start2, distance)
        - g(start1 - start2, distance)
        - g(end1 - end2, distance)
        + g(start1 - end2, distance)
    )
    return float(MU_0 / (4.0 * math.pi) * total)


def grover_self_inductance(length: float, width: float, thickness: float) -> float:
    """Grover/Ruehli approximate self partial inductance of a bar [H].

        L = (mu0 / 2 pi) l [ ln(2 l / (w + t)) + 0.50049 + (w + t) / (3 l) ]

    Accurate to about 1 % against the exact volume integral for on-chip
    aspect ratios; used for sanity-checking the exact kernel and for quick
    estimates (e.g. the super-linear length-scaling study of Sec. V).
    """
    if length <= 0.0 or width <= 0.0 or thickness <= 0.0:
        raise GeometryError("length, width and thickness must be positive")
    l = length
    wt = width + thickness
    return (MU_0 / (2.0 * math.pi)) * l * (
        math.log(2.0 * l / wt) + 0.50049 + wt / (3.0 * l)
    )


def grover_mutual_inductance(length: float, pitch: float) -> float:
    """Grover approximate mutual partial inductance of two equal bars [H].

    Treats each bar as a filament on its axis (valid when the pitch is not
    much smaller than the bar width):

        M = (mu0 / 2 pi) l [ ln(2 l / d) - 1 + d / l ]

    which is the large ``l/d`` expansion of
    :func:`mutual_inductance_filaments`.
    """
    if length <= 0.0 or pitch <= 0.0:
        raise GeometryError("length and pitch must be positive")
    l, d = length, pitch
    return (MU_0 / (2.0 * math.pi)) * l * (math.log(2.0 * l / d) - 1.0 + d / l)


def self_inductance_via_gmd(length: float, width: float, thickness: float) -> float:
    """Self partial inductance from the self-GMD filament equivalence [H].

    Replaces the bar by two filaments a self-GMD apart and evaluates the
    exact filament mutual; agrees with :func:`grover_self_inductance`
    to within a fraction of a percent.
    """
    gmd = rectangle_self_gmd(width, thickness)
    return mutual_inductance_filaments(length, gmd)


def skin_depth(resistivity: float, frequency: float, mu_r: float = 1.0) -> float:
    """Skin depth [m] of a conductor at *frequency* [Hz].

        delta = sqrt(rho / (pi f mu))
    """
    if resistivity <= 0.0:
        raise GeometryError("resistivity must be positive")
    if frequency <= 0.0:
        raise GeometryError("frequency must be positive")
    return math.sqrt(resistivity / (math.pi * frequency * MU_0 * mu_r))
