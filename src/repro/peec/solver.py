"""Partial-inductance matrix assembly and conductor-level reduction.

:class:`PartialInductanceSolver` is the table-characterization engine: it
assembles the exact filament partial-inductance matrix for a set of
conductors and reduces it to conductor-level quantities, either with a
uniform current assumption (the low-frequency Lp of the paper's
Foundations) or with the frequency-dependent current redistribution that
captures skin and proximity effects at the significant frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import RHO_CU
from repro.errors import GeometryError, SolverError
from repro.telemetry import PARTIAL_SOLVE, get_registry, span
from repro.geometry.primitives import RectBar
from repro.peec.kernel import (
    ImpedanceFactorization,
    assemble_partial_inductance_matrix,
)
from repro.peec.mesh import FilamentMesh, mesh_bar

__all__ = [
    "assemble_partial_inductance_matrix",
    "Conductor",
    "PartialInductanceSolver",
]


@dataclass
class Conductor:
    """A named conductor participating in an extraction problem."""

    name: str
    mesh: FilamentMesh
    resistivity: float = RHO_CU

    @classmethod
    def from_bar(
        cls,
        name: str,
        bar: RectBar,
        resistivity: float = RHO_CU,
        n_width: int = 1,
        n_thickness: int = 1,
        grading: float = 1.0,
    ) -> "Conductor":
        """Mesh *bar* and wrap it as a conductor."""
        return cls(
            name=name,
            mesh=mesh_bar(bar, n_width=n_width, n_thickness=n_thickness, grading=grading),
            resistivity=resistivity,
        )

    @property
    def bar(self) -> RectBar:
        """The unmeshed conductor volume."""
        return self.mesh.parent


class PartialInductanceSolver:
    """Filament-level PEEC solver for a set of parallel conductors.

    Parameters
    ----------
    conductors:
        The conductors of the problem.  Names must be unique.
    """

    def __init__(self, conductors: Sequence[Conductor]):
        if not conductors:
            raise GeometryError("need at least one conductor")
        names = [c.name for c in conductors]
        if len(set(names)) != len(names):
            raise GeometryError(f"conductor names must be unique, got {names}")
        self.conductors = list(conductors)
        self._names = names
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self._lp: Optional[np.ndarray] = None
        self._factorization: Optional[ImpedanceFactorization] = None
        self._projected_incidence: Optional[np.ndarray] = None

        self._filaments: List[RectBar] = []
        owner: List[int] = []
        self._resistance = []
        for ci, cond in enumerate(self.conductors):
            for fil in cond.mesh.filaments:
                self._filaments.append(fil)
                owner.append(ci)
            self._resistance.extend(cond.mesh.resistances(cond.resistivity))
        self._resistance = np.array(self._resistance, dtype=float)
        self._owner = np.array(owner, dtype=int)

    @property
    def names(self) -> List[str]:
        """Conductor names in problem order."""
        return list(self._names)

    @property
    def num_filaments(self) -> int:
        """Total number of filaments in the meshed problem."""
        return len(self._filaments)

    def index_of(self, name: str) -> int:
        """Position of the named conductor (O(1) dict lookup)."""
        try:
            return self._index[name]
        except KeyError:
            raise GeometryError(f"unknown conductor {name!r}") from None

    def filament_lp_matrix(self) -> np.ndarray:
        """Exact filament partial-inductance matrix [H] (cached)."""
        if self._lp is None:
            self._lp = assemble_partial_inductance_matrix(self._filaments)
        return self._lp

    def filament_resistances(self) -> np.ndarray:
        """DC resistance of every filament [ohm]."""
        return self._resistance.copy()

    def incidence(self) -> np.ndarray:
        """Filament-to-conductor incidence matrix (n_fil x n_cond)."""
        p = np.zeros((self.num_filaments, len(self.conductors)))
        p[np.arange(self.num_filaments), self._owner] = 1.0
        return p

    def factorization(self) -> ImpedanceFactorization:
        """Factor-once decomposition of ``diag(R) + j*w*Lp`` (cached).

        Built on first use; every subsequent frequency point reuses it,
        turning an m-point impedance sweep from m LU factorizations into
        one eigendecomposition plus m diagonal scalings.
        """
        if self._factorization is None:
            self._factorization = ImpedanceFactorization(
                self._resistance, self.filament_lp_matrix()
            )
        return self._factorization

    def conductor_lp_matrix(self) -> np.ndarray:
        """Conductor partial-inductance matrix under uniform current [H].

        ``Lp[i, j] = sum_{f in i, g in j} (a_f / A_i)(a_g / A_j) lp[f, g]``
        -- the low-frequency limit where current fills the cross-section
        uniformly.  For single-filament meshes this is the exact bar Lp.
        """
        lp = self.filament_lp_matrix()
        incidence = self.incidence()
        areas = np.array([f.cross_section_area for f in self._filaments])
        conductor_areas = incidence.T @ areas
        weights = incidence * areas[:, None] / conductor_areas[None, :]
        return weights.T @ lp @ weights

    def _conductor_modal_projection(self) -> np.ndarray:
        """``P^T U``: incidence projected onto the impedance modes (cached)."""
        if self._projected_incidence is None:
            self._projected_incidence = (
                self.incidence().T @ self.factorization().u
            )
        return self._projected_incidence

    def conductor_impedance_matrix(self, frequency: float) -> np.ndarray:
        """Frequency-dependent conductor impedance matrix [ohm].

        All filaments of a conductor are connected in parallel between its
        two terminals, so the conductor-level impedance is the Schur
        reduction ``Z_cond = (P^T Z^-1 P)^-1`` with
        ``Z = diag(R) + j omega Lp``.  Captures skin and proximity
        current redistribution.

        ``Z^-1`` is applied through the cached factor-once
        eigendecomposition (see :meth:`factorization`), so repeated calls
        at different frequencies cost O(n_cond^2 * n_fil) each instead of
        a fresh O(n_fil^3) LU factorization.
        """
        if frequency < 0.0:
            raise SolverError("frequency must be non-negative")
        omega = 2.0 * np.pi * frequency
        projected = self._conductor_modal_projection()
        scale = self.factorization().modal_scale(omega)
        y_cond = (projected * scale[None, :]) @ projected.T
        identity = np.eye(y_cond.shape[0], dtype=complex)
        try:
            # Solve against the identity instead of forming an explicit
            # inverse: one triangular backsubstitution per column and
            # better conditioning.
            return np.linalg.solve(y_cond, identity)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"singular conductor admittance matrix: {exc}") from exc

    def effective_rl(self, frequency: float) -> Tuple[np.ndarray, np.ndarray]:
        """Conductor resistance and inductance matrices at *frequency*.

        Returns ``(R, L)`` with ``R = Re(Z_cond)`` [ohm] and
        ``L = Im(Z_cond) / omega`` [H].
        """
        if frequency <= 0.0:
            raise SolverError("frequency must be positive for an R/L split")
        get_registry().inc(PARTIAL_SOLVE)
        with span("peec.partial_solve", frequency=frequency):
            z = self.conductor_impedance_matrix(frequency)
        omega = 2.0 * np.pi * frequency
        return z.real, z.imag / omega

    def effective_rl_sweep(
        self, frequencies: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Conductor R and L matrices across a frequency grid.

        Returns ``(R, L)`` stacked as ``(n_freq, n_cond, n_cond)``
        arrays.  The filament impedance is factored once and reused for
        every frequency -- the factor-once sweep of the kernel layer.
        """
        freqs = np.asarray(list(frequencies), dtype=float)
        if freqs.size == 0:
            raise SolverError("sweep needs at least one frequency")
        if np.any(freqs <= 0.0):
            raise SolverError("frequencies must be positive for an R/L split")
        get_registry().inc(PARTIAL_SOLVE, int(freqs.size))
        n_cond = len(self.conductors)
        resistance = np.empty((freqs.size, n_cond, n_cond))
        inductance = np.empty_like(resistance)
        with span("peec.partial_sweep", points=int(freqs.size)):
            for k, frequency in enumerate(freqs):
                z = self.conductor_impedance_matrix(float(frequency))
                omega = 2.0 * np.pi * frequency
                resistance[k] = z.real
                inductance[k] = z.imag / omega
        return resistance, inductance
