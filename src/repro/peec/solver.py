"""Partial-inductance matrix assembly and conductor-level reduction.

:class:`PartialInductanceSolver` is the table-characterization engine: it
assembles the exact filament partial-inductance matrix for a set of
conductors and reduces it to conductor-level quantities, either with a
uniform current assumption (the low-frequency Lp of the paper's
Foundations) or with the frequency-dependent current redistribution that
captures skin and proximity effects at the significant frequency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import RHO_CU
from repro.errors import GeometryError, SolverError
from repro.instrumentation import PARTIAL_SOLVE, count_solver_call
from repro.geometry.primitives import RectBar
from repro.peec.hoer_love import _bar_to_x_frame, mutual_inductance_batch
from repro.peec.mesh import FilamentMesh, mesh_bar


def assemble_partial_inductance_matrix(bars: Sequence[RectBar]) -> np.ndarray:
    """Exact partial-inductance matrix [H] over a list of bars.

    Bars with different current axes are mutually orthogonal and get an
    exactly zero entry (the PEEC property the paper uses to ignore
    adjacent routing layers); same-axis blocks are filled with one
    vectorized Hoer-Love evaluation each.
    """
    n = len(bars)
    if n == 0:
        raise GeometryError("need at least one bar")
    lp = np.zeros((n, n))
    by_axis: Dict[str, List[int]] = defaultdict(list)
    for i, bar in enumerate(bars):
        by_axis[bar.axis].append(i)
    for indices in by_axis.values():
        frames = np.array([_bar_to_x_frame(bars[i]) for i in indices])
        x0, length, y0, width, z0, thickness = frames.T
        block = mutual_inductance_batch(
            x0[:, None], length[:, None], y0[:, None],
            width[:, None], z0[:, None], thickness[:, None],
            x0[None, :], length[None, :], y0[None, :],
            width[None, :], z0[None, :], thickness[None, :],
        )
        lp[np.ix_(indices, indices)] = block
    return lp


@dataclass
class Conductor:
    """A named conductor participating in an extraction problem."""

    name: str
    mesh: FilamentMesh
    resistivity: float = RHO_CU

    @classmethod
    def from_bar(
        cls,
        name: str,
        bar: RectBar,
        resistivity: float = RHO_CU,
        n_width: int = 1,
        n_thickness: int = 1,
        grading: float = 1.0,
    ) -> "Conductor":
        """Mesh *bar* and wrap it as a conductor."""
        return cls(
            name=name,
            mesh=mesh_bar(bar, n_width=n_width, n_thickness=n_thickness, grading=grading),
            resistivity=resistivity,
        )

    @property
    def bar(self) -> RectBar:
        """The unmeshed conductor volume."""
        return self.mesh.parent


class PartialInductanceSolver:
    """Filament-level PEEC solver for a set of parallel conductors.

    Parameters
    ----------
    conductors:
        The conductors of the problem.  Names must be unique.
    """

    def __init__(self, conductors: Sequence[Conductor]):
        if not conductors:
            raise GeometryError("need at least one conductor")
        names = [c.name for c in conductors]
        if len(set(names)) != len(names):
            raise GeometryError(f"conductor names must be unique, got {names}")
        self.conductors = list(conductors)
        self._lp: Optional[np.ndarray] = None

        self._filaments: List[RectBar] = []
        self._owner: List[int] = []
        self._resistance = []
        for ci, cond in enumerate(self.conductors):
            for fil in cond.mesh.filaments:
                self._filaments.append(fil)
                self._owner.append(ci)
            self._resistance.extend(cond.mesh.resistances(cond.resistivity))
        self._resistance = np.array(self._resistance, dtype=float)

    @property
    def names(self) -> List[str]:
        """Conductor names in problem order."""
        return [c.name for c in self.conductors]

    @property
    def num_filaments(self) -> int:
        """Total number of filaments in the meshed problem."""
        return len(self._filaments)

    def index_of(self, name: str) -> int:
        """Position of the named conductor."""
        try:
            return self.names.index(name)
        except ValueError:
            raise GeometryError(f"unknown conductor {name!r}") from None

    def filament_lp_matrix(self) -> np.ndarray:
        """Exact filament partial-inductance matrix [H] (cached)."""
        if self._lp is None:
            self._lp = assemble_partial_inductance_matrix(self._filaments)
        return self._lp

    def filament_resistances(self) -> np.ndarray:
        """DC resistance of every filament [ohm]."""
        return self._resistance.copy()

    def incidence(self) -> np.ndarray:
        """Filament-to-conductor incidence matrix (n_fil x n_cond)."""
        p = np.zeros((self.num_filaments, len(self.conductors)))
        for fi, ci in enumerate(self._owner):
            p[fi, ci] = 1.0
        return p

    def conductor_lp_matrix(self) -> np.ndarray:
        """Conductor partial-inductance matrix under uniform current [H].

        ``Lp[i, j] = sum_{f in i, g in j} (a_f / A_i)(a_g / A_j) lp[f, g]``
        -- the low-frequency limit where current fills the cross-section
        uniformly.  For single-filament meshes this is the exact bar Lp.
        """
        lp = self.filament_lp_matrix()
        incidence = self.incidence()
        areas = np.array([f.cross_section_area for f in self._filaments])
        conductor_areas = incidence.T @ areas
        weights = incidence * areas[:, None] / conductor_areas[None, :]
        return weights.T @ lp @ weights

    def conductor_impedance_matrix(self, frequency: float) -> np.ndarray:
        """Frequency-dependent conductor impedance matrix [ohm].

        All filaments of a conductor are connected in parallel between its
        two terminals, so the conductor-level impedance is the Schur
        reduction ``Z_cond = (P^T Z^-1 P)^-1`` with
        ``Z = diag(R) + j omega Lp``.  Captures skin and proximity
        current redistribution.
        """
        if frequency < 0.0:
            raise SolverError("frequency must be non-negative")
        omega = 2.0 * np.pi * frequency
        z = np.diag(self._resistance).astype(complex)
        if omega > 0.0:
            z = z + 1j * omega * self.filament_lp_matrix()
        p = self.incidence()
        try:
            y_fil_p = np.linalg.solve(z, p)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"singular filament impedance matrix: {exc}") from exc
        y_cond = p.T @ y_fil_p
        try:
            return np.linalg.inv(y_cond)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"singular conductor admittance matrix: {exc}") from exc

    def effective_rl(self, frequency: float) -> Tuple[np.ndarray, np.ndarray]:
        """Conductor resistance and inductance matrices at *frequency*.

        Returns ``(R, L)`` with ``R = Re(Z_cond)`` [ohm] and
        ``L = Im(Z_cond) / omega`` [H].
        """
        if frequency <= 0.0:
            raise SolverError("frequency must be positive for an R/L split")
        count_solver_call(PARTIAL_SOLVE)
        z = self.conductor_impedance_matrix(frequency)
        omega = 2.0 * np.pi * frequency
        return z.real, z.imag / omega
