"""Traces and trace blocks (the n-trace structure of the paper's Fig. 4).

A :class:`TraceBlock` is the unit the extraction methodology operates on: n
equal-length parallel traces in one layer, where by convention the two
outermost traces can be dedicated AC-ground (shield) traces.  A block with
three traces and grounded outer traces is a co-planar waveguide; a wide
block models a bus with shield wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.stackup import Layer


@dataclass(frozen=True)
class Trace:
    """One straight routing trace in a metal layer.

    Coordinates follow the block convention: current flows along x, the
    trace occupies ``[y_offset, y_offset + width]`` transversally and the
    layer's z-range vertically.
    """

    width: float
    length: float
    thickness: float
    y_offset: float = 0.0
    z_bottom: float = 0.0
    x_offset: float = 0.0
    name: str = ""
    is_ground: bool = False

    def __post_init__(self) -> None:
        for attr in ("width", "length", "thickness"):
            value = getattr(self, attr)
            if value <= 0.0:
                raise GeometryError(f"trace {self.name!r}: {attr} must be positive")

    @property
    def y_center(self) -> float:
        """Transverse centre coordinate [m]."""
        return self.y_offset + self.width / 2.0

    def to_bar(self) -> RectBar:
        """The trace volume as a :class:`RectBar` with current along x."""
        return RectBar(
            origin=Point3D(self.x_offset, self.y_offset, self.z_bottom),
            length=self.length,
            width=self.width,
            thickness=self.thickness,
            axis="x",
        )

    def edge_to_edge_spacing(self, other: "Trace") -> float:
        """Clear spacing between this trace and *other* (same layer) [m]."""
        if self.y_offset <= other.y_offset:
            left, right = self, other
        else:
            left, right = other, self
        spacing = right.y_offset - (left.y_offset + left.width)
        if spacing < 0.0:
            raise GeometryError(
                f"traces {left.name!r} and {right.name!r} overlap (spacing {spacing})"
            )
        return spacing


@dataclass
class TraceBlock:
    """n equal-length parallel traces in one layer (paper Fig. 4).

    Construct either directly from a list of :class:`Trace` objects or with
    :meth:`from_widths_and_spacings`, which lays traces out left-to-right.

    Attributes
    ----------
    traces:
        Traces ordered by increasing transverse position.
    layer:
        Optional metal layer providing thickness/elevation context.
    """

    traces: List[Trace] = field(default_factory=list)
    layer: Optional[Layer] = None

    def __post_init__(self) -> None:
        if not self.traces:
            raise GeometryError("a trace block needs at least one trace")
        lengths = {t.length for t in self.traces}
        if len(lengths) != 1:
            raise GeometryError("all traces in a block must have equal length")
        ordered = sorted(self.traces, key=lambda t: t.y_offset)
        for left, right in zip(ordered, ordered[1:]):
            left.edge_to_edge_spacing(right)  # raises on overlap
        self.traces = ordered

    @classmethod
    def from_widths_and_spacings(
        cls,
        widths: Sequence[float],
        spacings: Sequence[float],
        length: float,
        thickness: float,
        z_bottom: float = 0.0,
        ground_flags: Optional[Sequence[bool]] = None,
        names: Optional[Sequence[str]] = None,
        layer: Optional[Layer] = None,
    ) -> "TraceBlock":
        """Lay out a block from per-trace widths and inter-trace spacings.

        ``len(spacings)`` must be ``len(widths) - 1``.  When *ground_flags*
        is omitted and there are three or more traces, the two outermost
        traces are marked as AC-ground shields (the paper's convention).
        """
        if len(widths) == 0:
            raise GeometryError("widths must not be empty")
        if len(spacings) != len(widths) - 1:
            raise GeometryError(
                f"need {len(widths) - 1} spacings for {len(widths)} traces, "
                f"got {len(spacings)}"
            )
        if ground_flags is None:
            if len(widths) >= 3:
                ground_flags = [True] + [False] * (len(widths) - 2) + [True]
            else:
                ground_flags = [False] * len(widths)
        if len(ground_flags) != len(widths):
            raise GeometryError("ground_flags length must match widths")
        if names is None:
            names = [f"T{i + 1}" for i in range(len(widths))]
        if len(names) != len(widths):
            raise GeometryError("names length must match widths")

        traces: List[Trace] = []
        y = 0.0
        for i, width in enumerate(widths):
            traces.append(
                Trace(
                    width=width,
                    length=length,
                    thickness=thickness,
                    y_offset=y,
                    z_bottom=z_bottom,
                    name=names[i],
                    is_ground=bool(ground_flags[i]),
                )
            )
            y += width
            if i < len(spacings):
                if spacings[i] <= 0.0:
                    raise GeometryError(f"spacing {i} must be positive")
                y += spacings[i]
        return cls(traces=traces, layer=layer)

    @classmethod
    def coplanar_waveguide(
        cls,
        signal_width: float,
        ground_width: float,
        spacing: float,
        length: float,
        thickness: float,
        z_bottom: float = 0.0,
        layer: Optional[Layer] = None,
    ) -> "TraceBlock":
        """A ground-signal-ground co-planar waveguide block (paper Fig. 8)."""
        return cls.from_widths_and_spacings(
            widths=[ground_width, signal_width, ground_width],
            spacings=[spacing, spacing],
            length=length,
            thickness=thickness,
            z_bottom=z_bottom,
            ground_flags=[True, False, True],
            names=["GND_L", "SIG", "GND_R"],
            layer=layer,
        )

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    @property
    def length(self) -> float:
        """Common trace length [m]."""
        return self.traces[0].length

    @property
    def signal_traces(self) -> List[Trace]:
        """Traces that carry signals (not marked as AC ground)."""
        return [t for t in self.traces if not t.is_ground]

    @property
    def ground_traces(self) -> List[Trace]:
        """Traces marked as AC-ground shields."""
        return [t for t in self.traces if t.is_ground]

    @property
    def total_width(self) -> float:
        """Transverse extent from the left edge of T1 to the right edge of Tn."""
        first = self.traces[0]
        last = self.traces[-1]
        return (last.y_offset + last.width) - first.y_offset

    def spacing(self, i: int) -> float:
        """Clear spacing between trace *i* and trace *i+1* [m]."""
        return self.traces[i].edge_to_edge_spacing(self.traces[i + 1])

    def pitch(self, i: int) -> float:
        """Centre-to-centre distance between trace *i* and trace *i+1* [m]."""
        return abs(self.traces[i + 1].y_center - self.traces[i].y_center)

    def subblock(self, indices: Sequence[int]) -> "TraceBlock":
        """A block containing only the selected traces (geometry preserved).

        This is the reduction step of the paper's Foundations: the n-trace
        problem is split into 1-trace and 2-trace subproblems by extracting
        sub-blocks while keeping each trace's absolute position.
        """
        picked = [self.traces[i] for i in indices]
        if not picked:
            raise GeometryError("subblock needs at least one trace index")
        return TraceBlock(traces=list(picked), layer=self.layer)
