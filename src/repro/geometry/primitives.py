"""Geometric primitives for conductor modeling.

The fundamental volume element of the PEEC formulation is the axis-aligned
rectangular bar (:class:`RectBar`): a straight conductor with a rectangular
cross-section carrying current along one coordinate axis.  All on-chip
interconnect handled by the paper (clocktree traces, shield wires, ground
plane strips) is a union of such bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError

#: Axis labels accepted for the current-flow direction of a bar.
AXES = ("x", "y", "z")


@dataclass(frozen=True)
class Point3D:
    """A point in 3-D space, in metres."""

    x: float
    y: float
    z: float

    def translated(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Point3D":
        """Return a copy shifted by the given offsets."""
        return Point3D(self.x + dx, self.y + dy, self.z + dz)

    def distance_to(self, other: "Point3D") -> float:
        """Euclidean distance to *other*."""
        return math.sqrt(
            (self.x - other.x) ** 2 + (self.y - other.y) ** 2 + (self.z - other.z) ** 2
        )


@dataclass(frozen=True)
class RectBar:
    """A straight conductor bar with rectangular cross-section.

    Parameters
    ----------
    origin:
        Corner of the bar with the smallest coordinates (metres).
    length:
        Extent along the current-flow ``axis`` (metres).
    width:
        Cross-section extent along the first transverse axis (metres).
        For an ``axis='x'`` bar the width runs along y.
    thickness:
        Cross-section extent along the second transverse axis (metres).
        For bars in a metal layer this is the metal thickness (z extent).
    axis:
        Current-flow direction: ``'x'``, ``'y'`` or ``'z'``.
    """

    origin: Point3D
    length: float
    width: float
    thickness: float
    axis: str = "x"

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise GeometryError(f"axis must be one of {AXES}, got {self.axis!r}")
        for name in ("length", "width", "thickness"):
            value = getattr(self, name)
            if not (value > 0.0) or not math.isfinite(value):
                raise GeometryError(f"{name} must be positive and finite, got {value!r}")

    @property
    def cross_section_area(self) -> float:
        """Cross-section area [m^2]."""
        return self.width * self.thickness

    @property
    def volume(self) -> float:
        """Conductor volume [m^3]."""
        return self.length * self.cross_section_area

    def _extents(self) -> tuple[float, float, float]:
        """Extents along (x, y, z) derived from axis orientation."""
        if self.axis == "x":
            return (self.length, self.width, self.thickness)
        if self.axis == "y":
            return (self.width, self.length, self.thickness)
        return (self.width, self.thickness, self.length)

    @property
    def far_corner(self) -> Point3D:
        """Corner diagonally opposite :attr:`origin`."""
        ex, ey, ez = self._extents()
        return self.origin.translated(ex, ey, ez)

    @property
    def center(self) -> Point3D:
        """Geometric centre of the bar."""
        ex, ey, ez = self._extents()
        return self.origin.translated(ex / 2.0, ey / 2.0, ez / 2.0)

    @property
    def start(self) -> Point3D:
        """Centre of the cross-section at the low-coordinate end."""
        ex, ey, ez = self._extents()
        if self.axis == "x":
            return self.origin.translated(0.0, ey / 2.0, ez / 2.0)
        if self.axis == "y":
            return self.origin.translated(ex / 2.0, 0.0, ez / 2.0)
        return self.origin.translated(ex / 2.0, ey / 2.0, 0.0)

    @property
    def end(self) -> Point3D:
        """Centre of the cross-section at the high-coordinate end."""
        delta = {self.axis: self.length}
        return self.start.translated(
            delta.get("x", 0.0), delta.get("y", 0.0), delta.get("z", 0.0)
        )

    def is_parallel_to(self, other: "RectBar") -> bool:
        """True when both bars carry current along the same axis."""
        return self.axis == other.axis

    def is_orthogonal_to(self, other: "RectBar") -> bool:
        """True when the bars carry current along different axes."""
        return self.axis != other.axis

    def overlaps(self, other: "RectBar") -> bool:
        """True when the two bar volumes intersect (open intervals)."""
        a_lo, a_hi = self.origin, self.far_corner
        b_lo, b_hi = other.origin, other.far_corner
        return (
            a_lo.x < b_hi.x
            and b_lo.x < a_hi.x
            and a_lo.y < b_hi.y
            and b_lo.y < a_hi.y
            and a_lo.z < b_hi.z
            and b_lo.z < a_hi.z
        )
