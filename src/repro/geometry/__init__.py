"""Conductor geometry: primitives, traces, blocks and technology stackups."""

from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.stackup import Layer, Stackup, default_stackup
from repro.geometry.trace import Trace, TraceBlock

__all__ = [
    "Point3D",
    "RectBar",
    "Layer",
    "Stackup",
    "default_stackup",
    "Trace",
    "TraceBlock",
]
