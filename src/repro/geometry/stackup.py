"""Technology stackup: metal layers, dielectric environment, materials.

The paper assumes a standard multi-level metal VLSI process in which traces
in adjacent layers run orthogonally (so only same-layer traces couple
inductively) and wide power/ground wires in layer N+2 / N-2 act as local
ground planes.  :class:`Stackup` captures exactly the parameters the
extraction needs: per-layer thickness and elevation, conductor resistivity
and the dielectric constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.constants import EPS_R_SIO2, RHO_CU, um
from repro.errors import StackupError


@dataclass(frozen=True)
class Layer:
    """A metal routing layer.

    Parameters
    ----------
    name:
        Layer identifier, e.g. ``"M5"``.
    index:
        Integer level; adjacent integers route orthogonally.
    z_bottom:
        Elevation of the bottom face above the substrate reference [m].
    thickness:
        Nominal metal thickness [m].
    resistivity:
        Conductor resistivity [ohm*m].
    """

    name: str
    index: int
    z_bottom: float
    thickness: float
    resistivity: float = RHO_CU

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise StackupError(f"layer {self.name!r}: thickness must be positive")
        if self.resistivity <= 0.0:
            raise StackupError(f"layer {self.name!r}: resistivity must be positive")
        if self.z_bottom < 0.0:
            raise StackupError(f"layer {self.name!r}: z_bottom must be non-negative")

    @property
    def z_top(self) -> float:
        """Elevation of the top face [m]."""
        return self.z_bottom + self.thickness

    @property
    def z_center(self) -> float:
        """Elevation of the layer mid-plane [m]."""
        return self.z_bottom + self.thickness / 2.0

    def sheet_resistance(self) -> float:
        """Sheet resistance [ohm/square] at the nominal thickness."""
        return self.resistivity / self.thickness


@dataclass
class Stackup:
    """An ordered collection of metal layers plus the dielectric constant."""

    layers: List[Layer] = field(default_factory=list)
    eps_r: float = EPS_R_SIO2

    def __post_init__(self) -> None:
        if self.eps_r < 1.0:
            raise StackupError("relative permittivity must be >= 1")
        seen_names: Dict[str, Layer] = {}
        seen_indices: Dict[int, Layer] = {}
        for layer in self.layers:
            if layer.name in seen_names:
                raise StackupError(f"duplicate layer name {layer.name!r}")
            if layer.index in seen_indices:
                raise StackupError(f"duplicate layer index {layer.index}")
            seen_names[layer.name] = layer
            seen_indices[layer.index] = layer
        self._by_name = seen_names
        self._by_index = seen_indices

    def __iter__(self):
        return iter(sorted(self.layers, key=lambda layer: layer.index))

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, key) -> Layer:
        """Look a layer up by name (str) or index (int)."""
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise StackupError(f"unknown layer {key!r}") from None
        try:
            return self._by_index[int(key)]
        except KeyError:
            raise StackupError(f"unknown layer index {key!r}") from None

    def add(self, layer: Layer) -> None:
        """Add a layer, enforcing unique names and indices."""
        if layer.name in self._by_name:
            raise StackupError(f"duplicate layer name {layer.name!r}")
        if layer.index in self._by_index:
            raise StackupError(f"duplicate layer index {layer.index}")
        self.layers.append(layer)
        self._by_name[layer.name] = layer
        self._by_index[layer.index] = layer

    def vertical_separation(self, upper, lower) -> float:
        """Dielectric gap between the bottom of *upper* and top of *lower* [m]."""
        hi = self.layer(upper)
        lo = self.layer(lower)
        if hi.z_bottom < lo.z_top:
            hi, lo = lo, hi
        return hi.z_bottom - lo.z_top

    def plane_layers_for(self, key) -> List[Layer]:
        """Layers two levels away (N+2 / N-2) that can host local ground planes."""
        layer = self.layer(key)
        result = []
        for offset in (-2, 2):
            candidate = self._by_index.get(layer.index + offset)
            if candidate is not None:
                result.append(candidate)
        return result


def default_stackup(num_layers: int = 6, eps_r: float = EPS_R_SIO2) -> Stackup:
    """A representative late-1990s copper process stackup.

    Thin lower metals (0.5 um) for local routing, progressively thicker
    upper metals (up to 2 um) for clock and power distribution, 1 um
    inter-layer dielectric gaps.  This matches the regime of the paper's
    examples (2 um-thick clock routing layer, orthogonal layer below).
    """
    if num_layers < 1:
        raise StackupError("stackup needs at least one layer")
    layers: List[Layer] = []
    z = um(1.0)
    for i in range(1, num_layers + 1):
        if i <= 2:
            thickness = um(0.5)
        elif i <= 4:
            thickness = um(1.0)
        else:
            thickness = um(2.0)
        layers.append(
            Layer(name=f"M{i}", index=i, z_bottom=z, thickness=thickness)
        )
        z += thickness + um(1.0)
    return Stackup(layers=layers, eps_r=eps_r)
