"""Process-wide solver-invocation counters.

The paper's headline claim is economic: characterize once, then answer
every extraction query by table lookup, with *zero* field-solver calls
on the hot path.  These counters make that claim testable -- the
expensive entry points (:class:`~repro.peec.loop.LoopProblem` solves,
:class:`~repro.peec.solver.PartialInductanceSolver` reductions, and 2-D
:class:`~repro.rc.fieldsolver2d.FieldSolver2D` capacitance solves) tick
a named counter, and tests/benchmarks assert e.g. that a warm-library
H-tree extraction performs no solves at all.

Counters are per-process: worker processes of a parallel build count
their own solves, which keeps the parent's view focused on the calls
*it* made (exactly what the zero-solve assertions need).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

_LOCK = threading.Lock()
_COUNTS: Dict[str, int] = {}

#: Canonical counter names used by the solvers.
LOOP_SOLVE = "loop_solve"
PARTIAL_SOLVE = "partial_inductance_solve"
FIELD_SOLVE_2D = "field_solve_2d"

#: Kernel-layer counters (see :mod:`repro.peec.kernel`): Hoer-Love pair
#: evaluations actually performed, and memo-cache hits/misses observed by
#: the deduplicating assembly.  ``lp_pair_eval`` vs the raw pair count of
#: a problem is the measured assembly dedup factor; a nonzero
#: ``lp_memo_hit`` during a table build proves cross-grid-point reuse.
LP_PAIR_EVAL = "lp_pair_eval"
LP_MEMO_HIT = "lp_memo_hit"
LP_MEMO_MISS = "lp_memo_miss"


def memo_hit_rate() -> float:
    """Fraction of memo-cache lookups that hit (0.0 when none recorded)."""
    hits = solver_call_count(LP_MEMO_HIT)
    misses = solver_call_count(LP_MEMO_MISS)
    total = hits + misses
    return hits / total if total else 0.0


def count_solver_call(kind: str, n: int = 1) -> None:
    """Record *n* invocations of the solver class *kind*."""
    with _LOCK:
        _COUNTS[kind] = _COUNTS.get(kind, 0) + n


def solver_call_count(kind: Optional[str] = None) -> int:
    """Total recorded calls for *kind*, or across every kind when None."""
    with _LOCK:
        if kind is not None:
            return _COUNTS.get(kind, 0)
        return sum(_COUNTS.values())


def solver_call_counts() -> Dict[str, int]:
    """A snapshot of every counter."""
    with _LOCK:
        return dict(_COUNTS)


def reset_solver_calls() -> None:
    """Zero every counter (tests call this before a measured region)."""
    with _LOCK:
        _COUNTS.clear()


class solver_call_meter:
    """Context manager measuring solver calls inside a ``with`` block.

    Does not reset the global counters; it differences snapshots, so
    meters nest and co-exist with other measurements::

        with solver_call_meter() as meter:
            extractor.segment_rlc(length)
        assert meter.total == 0
    """

    def __init__(self) -> None:
        self._start: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    def __enter__(self) -> "solver_call_meter":
        self._start = solver_call_counts()
        return self

    def __exit__(self, *exc_info) -> None:
        end = solver_call_counts()
        keys = set(end) | set(self._start)
        self.counts = {
            k: end.get(k, 0) - self._start.get(k, 0)
            for k in keys
            if end.get(k, 0) - self._start.get(k, 0)
        }

    @property
    def total(self) -> int:
        """Solver calls observed inside the block (so far recorded)."""
        return sum(self.counts.values())
