"""Deprecated shim over :mod:`repro.telemetry` (kept for compatibility).

This module used to own the process-wide solver-invocation counters.
PR 3 moved them into the :class:`~repro.telemetry.MetricsRegistry`
(which adds gauges, histograms, atomic snapshots and cross-process
aggregation); every public name here now delegates to the registry so
existing tests, benchmarks and downstream code keep working unchanged.

Prefer the richer API for new code::

    from repro.telemetry import get_registry, metrics_meter

    with metrics_meter() as meter:
        ...
    meter.delta.counter("loop_solve")
    meter.delta.memo_hit_rate          # race-free single-snapshot rate

Counters remain per-process; the parallel build runner aggregates
worker snapshots explicitly (see :mod:`repro.library.runner`), which
keeps the zero-solve warm-path assertions focused on the calls *this*
process made.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.registry import (  # noqa: F401  (re-exported names)
    FIELD_SOLVE_2D,
    LOOP_SOLVE,
    LP_MEMO_HIT,
    LP_MEMO_MISS,
    LP_PAIR_EVAL,
    LP_PAIR_TOTAL,
    PARTIAL_SOLVE,
    get_registry,
    is_solver_counter as _is_solver_counter,
)

__all__ = [
    "LOOP_SOLVE",
    "PARTIAL_SOLVE",
    "FIELD_SOLVE_2D",
    "LP_PAIR_EVAL",
    "LP_PAIR_TOTAL",
    "LP_MEMO_HIT",
    "LP_MEMO_MISS",
    "memo_hit_rate",
    "count_solver_call",
    "solver_call_count",
    "solver_call_counts",
    "reset_solver_calls",
    "solver_call_meter",
]


# The observational-counter filter (``table_lookup*``, ``circuit_*``,
# ``netlist_lint*``) lives in :mod:`repro.telemetry.registry` as
# :func:`~repro.telemetry.registry.is_solver_counter`, shared with
# ``metrics_meter`` so both meters agree on what "solver work" means.


def memo_hit_rate() -> float:
    """Fraction of memo-cache lookups that hit (0.0 when none recorded).

    Computed from **one** atomic registry snapshot: the historical
    implementation read hits and misses in two separate lock
    acquisitions, so a concurrent assembly could land between the reads
    and skew the rate.  Snapshot semantics make that race impossible.
    """
    return get_registry().snapshot().memo_hit_rate


def count_solver_call(kind: str, n: int = 1) -> None:
    """Record *n* invocations of the solver class *kind*."""
    get_registry().inc(kind, n)


def solver_call_count(kind: Optional[str] = None) -> int:
    """Total recorded calls for *kind*, or across every kind when None.

    The ``None`` total counts *solver work* only: purely observational
    counters (the ``table_lookup*`` coverage family) are excluded, so a
    warm spline lookup still counts as zero solver calls.
    """
    if kind is not None:
        return get_registry().counter_value(kind)
    counts = get_registry().counters_snapshot()
    return sum(v for k, v in counts.items() if _is_solver_counter(k))


def solver_call_counts() -> Dict[str, int]:
    """A snapshot of every counter (one lock acquisition)."""
    return get_registry().counters_snapshot()


def reset_solver_calls() -> None:
    """Zero every metric (tests call this before a measured region)."""
    get_registry().reset()


class solver_call_meter:
    """Context manager measuring solver calls inside a ``with`` block.

    Does not reset the global counters; it differences snapshots, so
    meters nest and co-exist with other measurements::

        with solver_call_meter() as meter:
            extractor.segment_rlc(length)
        assert meter.total == 0

    New code should use :class:`repro.telemetry.metrics_meter`, which
    also carries gauge and histogram deltas.
    """

    def __init__(self) -> None:
        self._start: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    def __enter__(self) -> "solver_call_meter":
        self._start = solver_call_counts()
        return self

    def __exit__(self, *exc_info) -> None:
        end = solver_call_counts()
        keys = set(end) | set(self._start)
        self.counts = {
            k: end.get(k, 0) - self._start.get(k, 0)
            for k in keys
            if end.get(k, 0) - self._start.get(k, 0)
        }

    @property
    def total(self) -> int:
        """Solver calls observed inside the block (so far recorded).

        Excludes the observational ``table_lookup*`` coverage counters:
        a warm lookup classifies its query domain without doing any
        solver work, and must not fail a zero-solve assertion.
        """
        return sum(
            v for k, v in self.counts.items() if _is_solver_counter(k)
        )
