"""Natural cubic and bicubic splines (Numerical Recipes 3.3 / 3.6).

The paper interpolates its inductance tables with "a bi-cubic spline
algorithm [10]" citing Numerical Recipes; this module implements exactly
those routines: a natural cubic spline (``spline``/``splint``) and the
successive-1-D bicubic construction (``splie2``/``splin2``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TableError


class CubicSpline1D:
    """Natural cubic spline through ``(x, y)`` knots.

    Outside the knot range the cubic of the nearest interval is used,
    which for a natural spline degrades gracefully toward linear
    extrapolation.
    """

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 1 or y.ndim != 1 or x.size != y.size:
            raise TableError("x and y must be 1-D arrays of equal length")
        if x.size < 2:
            raise TableError("need at least two knots")
        if not np.all(np.diff(x) > 0.0):
            raise TableError("knots must be strictly increasing")
        self.x = x
        self.y = y
        self.y2 = self._second_derivatives(x, y)

    @staticmethod
    def _second_derivatives(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Tridiagonal solve for natural-spline second derivatives."""
        n = x.size
        y2 = np.zeros(n)
        if n == 2:
            return y2  # natural spline through two points is a line
        u = np.zeros(n)
        for i in range(1, n - 1):
            sig = (x[i] - x[i - 1]) / (x[i + 1] - x[i - 1])
            p = sig * y2[i - 1] + 2.0
            y2[i] = (sig - 1.0) / p
            u[i] = (
                (y[i + 1] - y[i]) / (x[i + 1] - x[i])
                - (y[i] - y[i - 1]) / (x[i] - x[i - 1])
            )
            u[i] = (6.0 * u[i] / (x[i + 1] - x[i - 1]) - sig * u[i - 1]) / p
        for k in range(n - 2, -1, -1):
            y2[k] = y2[k] * y2[k + 1] + u[k]
        return y2

    def __call__(self, x_query):
        """Evaluate the spline (scalar or array input)."""
        xq = np.asarray(x_query, dtype=float)
        scalar = xq.ndim == 0
        xq = np.atleast_1d(xq)
        # locate intervals; clip so extrapolation reuses the edge cubics
        hi = np.clip(np.searchsorted(self.x, xq), 1, self.x.size - 1)
        lo = hi - 1
        h = self.x[hi] - self.x[lo]
        a = (self.x[hi] - xq) / h
        b = (xq - self.x[lo]) / h
        result = (
            a * self.y[lo]
            + b * self.y[hi]
            + ((a ** 3 - a) * self.y2[lo] + (b ** 3 - b) * self.y2[hi])
            * (h ** 2) / 6.0
        )
        return float(result[0]) if scalar else result

    def in_range(self, x_query: float) -> bool:
        """True when *x_query* lies inside the knot range."""
        return bool(self.x[0] <= x_query <= self.x[-1])


class BicubicSpline:
    """Bicubic spline on a rectangular grid (NR ``splie2``/``splin2``).

    Precomputes a row of 1-D splines along the second axis; evaluation
    splines the row results along the first axis.
    """

    def __init__(self, x1: Sequence[float], x2: Sequence[float], values):
        values = np.asarray(values, dtype=float)
        x1 = np.asarray(x1, dtype=float)
        x2 = np.asarray(x2, dtype=float)
        if values.shape != (x1.size, x2.size):
            raise TableError(
                f"values shape {values.shape} does not match grid "
                f"({x1.size}, {x2.size})"
            )
        self.x1 = x1
        self.x2 = x2
        self.values = values
        self._row_splines = [CubicSpline1D(x2, row) for row in values]

    def __call__(self, q1: float, q2: float) -> float:
        """Evaluate at ``(q1, q2)``."""
        column = np.array([spline(q2) for spline in self._row_splines])
        return float(CubicSpline1D(self.x1, column)(q1))

    def in_range(self, q1: float, q2: float) -> bool:
        """True when the query lies inside the characterized grid."""
        return bool(
            self.x1[0] <= q1 <= self.x1[-1] and self.x2[0] <= q2 <= self.x2[-1]
        )
