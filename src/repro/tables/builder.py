"""Table builders: sweep the field solvers over geometry grids.

Three builders mirror the paper's characterization flows:

* :class:`PartialInductanceTableBuilder` -- self Lp(width, length) and
  mutual Lp(w1, w2, spacing, length) tables for blocks *without* ground
  planes, where the Foundations make partial inductance exact under the
  1-/2-trace reduction (Sec. II-A / III).
* :class:`LoopInductanceTableBuilder` -- loop L(width, length) tables for
  microstrip/stripline structures where the extended Foundations store
  *loop* inductance with the plane return folded in (Sec. II-B).
* :class:`CapacitanceTableBuilder` -- per-unit-length total-capacitance
  tables from the 2-D finite-difference extractor (the paper's
  pre-characterized capacitance of ref [4]).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.constants import RHO_CU
from repro.errors import TableError
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.analytic import skin_depth
from repro.peec.hoer_love import bar_self_inductance, mutual_inductance_batch
from repro.peec.loop import LoopProblem
from repro.peec.mesh import skin_mesh_counts
from repro.peec.solver import Conductor, PartialInductanceSolver
from repro.rc.fieldsolver2d import CrossSection2D, FieldSolver2D
from repro.tables.lookup import ExtractionTable
from repro.telemetry import TABLE_BUILD_POINT, get_registry, span


def _observe_point(t0: float) -> None:
    """Record one grid-point solve duration in the build histogram."""
    get_registry().observe(TABLE_BUILD_POINT, time.perf_counter() - t0)


def _validated_axis(name: str, values: Sequence[float]) -> np.ndarray:
    axis = np.asarray(values, dtype=float)
    if axis.ndim != 1 or axis.size < 2:
        raise TableError(f"axis {name!r} needs at least two points")
    if not np.all(np.diff(axis) > 0.0):
        raise TableError(f"axis {name!r} must be strictly increasing")
    if axis[0] <= 0.0:
        raise TableError(f"axis {name!r} must be positive")
    return axis


class PartialInductanceTableBuilder:
    """Characterize partial self/mutual inductance for one metal layer.

    Parameters
    ----------
    thickness:
        Nominal layer thickness [m] (the paper builds one table set per
        layer at its nominal thickness).
    frequency:
        Significant frequency for the characterization.  ``None`` uses
        the exact uniform-current (low-frequency) closed form; a positive
        value meshes the cross-section and solves the skin-effect
        current distribution at that frequency.
    resistivity:
        Metal resistivity (only matters for frequency-dependent solves).
    """

    def __init__(
        self,
        thickness: float,
        frequency: Optional[float] = None,
        resistivity: float = RHO_CU,
    ):
        if thickness <= 0.0:
            raise TableError("thickness must be positive")
        if frequency is not None and frequency <= 0.0:
            raise TableError("frequency must be positive when given")
        self.thickness = thickness
        self.frequency = frequency
        self.resistivity = resistivity

    def _self_value(self, width: float, length: float) -> float:
        bar = RectBar(Point3D(0, 0, 0), length=length, width=width,
                      thickness=self.thickness)
        if self.frequency is None:
            return bar_self_inductance(bar)
        delta = skin_depth(self.resistivity, self.frequency)
        n_w, n_t = skin_mesh_counts(width, self.thickness, delta)
        solver = PartialInductanceSolver([
            Conductor.from_bar("T", bar, self.resistivity, n_w, n_t, grading=1.5)
        ])
        _, l_matrix = solver.effective_rl(self.frequency)
        return float(l_matrix[0, 0])

    def _mutual_value(self, w1: float, w2: float, spacing: float, length: float) -> float:
        bar1 = RectBar(Point3D(0, 0, 0), length=length, width=w1,
                       thickness=self.thickness)
        bar2 = RectBar(Point3D(0, w1 + spacing, 0), length=length, width=w2,
                       thickness=self.thickness)
        if self.frequency is None:
            return float(mutual_inductance_batch(
                0.0, length, 0.0, w1, 0.0, self.thickness,
                0.0, length, w1 + spacing, w2, 0.0, self.thickness,
            ))
        delta = skin_depth(self.resistivity, self.frequency)
        n_w1, n_t = skin_mesh_counts(w1, self.thickness, delta)
        n_w2, _ = skin_mesh_counts(w2, self.thickness, delta)
        solver = PartialInductanceSolver([
            Conductor.from_bar("T1", bar1, self.resistivity, n_w1, n_t, grading=1.5),
            Conductor.from_bar("T2", bar2, self.resistivity, n_w2, n_t, grading=1.5),
        ])
        _, l_matrix = solver.effective_rl(self.frequency)
        return float(l_matrix[0, 1])

    def build_self_table(
        self,
        widths: Sequence[float],
        lengths: Sequence[float],
        name: str = "self_partial_inductance",
    ) -> ExtractionTable:
        """Self Lp table over (width, length) [H]."""
        width_axis = _validated_axis("width", widths)
        length_axis = _validated_axis("length", lengths)
        with span(
            "tables.build_partial_self",
            points=int(width_axis.size * length_axis.size),
        ):
            values = np.array([
                [self._self_value(w, l) for l in length_axis]
                for w in width_axis
            ])
        return ExtractionTable(
            name=name,
            quantity="self_inductance",
            axis_names=("width", "length"),
            axes=[width_axis, length_axis],
            values=values,
            metadata={
                "thickness": self.thickness,
                "frequency": self.frequency,
                "model": "partial",
            },
        )

    def build_mutual_table(
        self,
        widths1: Sequence[float],
        widths2: Sequence[float],
        spacings: Sequence[float],
        lengths: Sequence[float],
        name: str = "mutual_partial_inductance",
    ) -> ExtractionTable:
        """Mutual Lp table over (width1, width2, spacing, length) [H]."""
        w1_axis = _validated_axis("width1", widths1)
        w2_axis = _validated_axis("width2", widths2)
        s_axis = _validated_axis("spacing", spacings)
        l_axis = _validated_axis("length", lengths)
        n_points = int(w1_axis.size * w2_axis.size * s_axis.size * l_axis.size)
        with span("tables.build_partial_mutual", points=n_points):
            values = np.array([
                [
                    [
                        [self._mutual_value(w1, w2, s, l) for l in l_axis]
                        for s in s_axis
                    ]
                    for w2 in w2_axis
                ]
                for w1 in w1_axis
            ])
        return ExtractionTable(
            name=name,
            quantity="mutual_inductance",
            axis_names=("width1", "width2", "spacing", "length"),
            axes=[w1_axis, w2_axis, s_axis, l_axis],
            values=values,
            metadata={
                "thickness": self.thickness,
                "frequency": self.frequency,
                "model": "partial",
            },
        )


class LoopInductanceTableBuilder:
    """Characterize loop R/L for a shielded structure family.

    Parameters
    ----------
    problem_factory:
        Callable ``(signal_width, length) -> LoopProblem`` describing the
        structure (e.g. a co-planar waveguide with its ground rules, or a
        microstrip over a local plane).  The clocktree configuration
        classes in :mod:`repro.clocktree.configs` provide these.
    frequency:
        The significant frequency the structure is characterized at.
    """

    def __init__(
        self,
        problem_factory: Callable[[float, float], LoopProblem],
        frequency: float,
    ):
        if frequency <= 0.0:
            raise TableError("frequency must be positive")
        self.problem_factory = problem_factory
        self.frequency = frequency

    def build_loop_tables(
        self,
        widths: Sequence[float],
        lengths: Sequence[float],
        name_prefix: str = "loop",
    ):
        """Loop inductance and resistance tables over (width, length).

        Returns ``(l_table, r_table)``.
        """
        width_axis = _validated_axis("width", widths)
        length_axis = _validated_axis("length", lengths)
        l_values = np.empty((width_axis.size, length_axis.size))
        r_values = np.empty_like(l_values)
        with span("tables.build_loop", points=int(l_values.size)):
            for i, width in enumerate(width_axis):
                for j, length in enumerate(length_axis):
                    t0 = time.perf_counter()
                    problem = self.problem_factory(float(width), float(length))
                    resistance, inductance = problem.loop_rl(self.frequency)
                    _observe_point(t0)
                    l_values[i, j] = inductance
                    r_values[i, j] = resistance
        metadata = {"frequency": self.frequency, "model": "loop"}
        l_table = ExtractionTable(
            name=f"{name_prefix}_inductance",
            quantity="loop_inductance",
            axis_names=("width", "length"),
            axes=[width_axis, length_axis],
            values=l_values,
            metadata=dict(metadata),
        )
        r_table = ExtractionTable(
            name=f"{name_prefix}_resistance",
            quantity="loop_resistance",
            axis_names=("width", "length"),
            axes=[width_axis, length_axis],
            values=r_values,
            metadata=dict(metadata),
        )
        return l_table, r_table


class MutualLoopTableBuilder:
    """Characterize mutual loop inductance of trace pairs (Fig. 5(c)).

    Foundation 2's extension: the mutual loop inductance of two traces
    over a shared plane depends only on the pair, so it tabulates on a
    (separation, length) grid from 2-trace solves.  Used to add
    neighbour coupling to microstrip clocktree netlists (Sec. V: "the
    coupling effect ... can be taken care of by simply adding them in
    the clocktree simulation").

    Parameters
    ----------
    pair_problem_factory:
        Callable ``(separation, length) -> LoopProblem`` building a
        2-signal structure with the first trace driven and the second
        open; the open trace's name must be ``"VICTIM"``.
    frequency:
        Characterization frequency [Hz].
    """

    def __init__(
        self,
        pair_problem_factory: Callable[[float, float], LoopProblem],
        frequency: float,
    ):
        if frequency <= 0.0:
            raise TableError("frequency must be positive")
        self.pair_problem_factory = pair_problem_factory
        self.frequency = frequency

    def build_mutual_loop_table(
        self,
        separations: Sequence[float],
        lengths: Sequence[float],
        name: str = "mutual_loop_inductance",
    ) -> ExtractionTable:
        """Mutual loop inductance over (separation, length) [H]."""
        sep_axis = _validated_axis("separation", separations)
        length_axis = _validated_axis("length", lengths)
        values = np.empty((sep_axis.size, length_axis.size))
        with span("tables.build_mutual_loop", points=int(values.size)):
            for i, separation in enumerate(sep_axis):
                for j, length in enumerate(length_axis):
                    t0 = time.perf_counter()
                    problem = self.pair_problem_factory(float(separation),
                                                        float(length))
                    solution = problem.solve(self.frequency)
                    _observe_point(t0)
                    try:
                        values[i, j] = solution.mutual_loop_inductances["VICTIM"]
                    except KeyError:
                        raise TableError(
                            "pair problem must contain an open trace named "
                            "'VICTIM'"
                        ) from None
        return ExtractionTable(
            name=name,
            quantity="mutual_loop_inductance",
            axis_names=("separation", "length"),
            axes=[sep_axis, length_axis],
            values=values,
            metadata={"frequency": self.frequency, "model": "loop_pair"},
        )


class ThreeTraceCapacitanceBuilder:
    """Characterize ground and coupling capacitance from 3-trace solves.

    The paper's capacitance prescription verbatim: "for any trace, it is
    sufficient to solve the trace and its two adjacent traces via
    numerical extraction".  For each (width, spacing) grid point a
    3-equal-trace cross-section is solved with the 2-D FD extractor and
    the middle trace's ground and coupling capacitances per unit length
    are tabulated.

    Parameters
    ----------
    height_below:
        Dielectric gap to the grounded reference under the traces [m].
    thickness:
        Trace metal thickness [m].
    """

    def __init__(
        self,
        height_below: float,
        thickness: float,
        eps_r: float = 3.9,
        nx: int = 140,
        nz: int = 100,
    ):
        if height_below <= 0.0 or thickness <= 0.0:
            raise TableError("height_below and thickness must be positive")
        self.height_below = height_below
        self.thickness = thickness
        self.eps_r = eps_r
        self.nx = nx
        self.nz = nz

    def _solve_point(self, width: float, spacing: float):
        # NOTE: the TraceBlock import lives at module top (not here) so
        # builder instances stay cleanly picklable for the process-pool
        # build runner in repro.library.runner.
        block = TraceBlock.from_widths_and_spacings(
            widths=[width] * 3, spacings=[spacing] * 2, length=1.0,
            thickness=self.thickness, ground_flags=[False] * 3,
        )
        cross_section = CrossSection2D.from_block(
            block, plane_gap=self.height_below, eps_r=self.eps_r
        )
        solver = FieldSolver2D(cross_section, nx=self.nx, nz=self.nz)
        matrix = solver.capacitance_matrix()
        coupling = -matrix[1, 0]
        ground = matrix[1, 1] + matrix[1, 0] + matrix[1, 2]
        return max(ground, 0.0), max(coupling, 0.0)

    def build_tables(
        self,
        widths: Sequence[float],
        spacings: Sequence[float],
        name_prefix: str = "three_trace",
    ):
        """Ground and coupling per-unit-length tables over (width, spacing).

        Returns ``(ground_table, coupling_table)``.
        """
        width_axis = _validated_axis("width", widths)
        spacing_axis = _validated_axis("spacing", spacings)
        ground = np.empty((width_axis.size, spacing_axis.size))
        coupling = np.empty_like(ground)
        with span("tables.build_three_trace", points=int(ground.size)):
            for i, w in enumerate(width_axis):
                for j, s in enumerate(spacing_axis):
                    t0 = time.perf_counter()
                    ground[i, j], coupling[i, j] = self._solve_point(
                        float(w), float(s)
                    )
                    _observe_point(t0)
        metadata = {
            "height_below": self.height_below,
            "thickness": self.thickness,
            "eps_r": self.eps_r,
            "nx": self.nx,
            "nz": self.nz,
            "model": "fd2d_three_trace",
        }
        ground_table = ExtractionTable(
            name=f"{name_prefix}_ground_capacitance",
            quantity="capacitance_per_length",
            axis_names=("width", "spacing"),
            axes=[width_axis, spacing_axis],
            values=ground,
            metadata=dict(metadata),
        )
        coupling_table = ExtractionTable(
            name=f"{name_prefix}_coupling_capacitance",
            quantity="capacitance_per_length",
            axis_names=("width", "spacing"),
            axes=[width_axis, spacing_axis],
            values=coupling,
            metadata=dict(metadata),
        )
        return ground_table, coupling_table


class CapacitanceTableBuilder:
    """Characterize per-unit-length signal capacitance with the 2-D solver.

    Parameters
    ----------
    cross_section_factory:
        Callable ``(signal_width, spacing) -> CrossSection2D`` for the
        structure family; the signal conductor must be named ``"SIG"``.
    nx, nz:
        Finite-difference grid resolution per solve.
    """

    def __init__(
        self,
        cross_section_factory: Callable[[float, float], CrossSection2D],
        nx: int = 160,
        nz: int = 120,
    ):
        self.cross_section_factory = cross_section_factory
        self.nx = nx
        self.nz = nz

    def _total_cap_per_length(self, width: float, spacing: float) -> float:
        cross_section = self.cross_section_factory(width, spacing)
        names = [c.name for c in cross_section.conductors]
        if "SIG" not in names:
            raise TableError("cross-section factory must name the signal 'SIG'")
        solver = FieldSolver2D(cross_section, nx=self.nx, nz=self.nz)
        matrix = solver.capacitance_matrix()
        return float(matrix[names.index("SIG"), names.index("SIG")])

    def _timed_total_cap(self, width: float, spacing: float) -> float:
        """One grid-point solve, observed into the build histogram."""
        t0 = time.perf_counter()
        try:
            return self._total_cap_per_length(width, spacing)
        finally:
            _observe_point(t0)

    def build_total_cap_table(
        self,
        widths: Sequence[float],
        spacings: Sequence[float],
        name: str = "signal_capacitance_per_length",
    ) -> ExtractionTable:
        """Total signal capacitance per unit length over (width, spacing)."""
        width_axis = _validated_axis("width", widths)
        spacing_axis = _validated_axis("spacing", spacings)
        with span(
            "tables.build_total_cap",
            points=int(width_axis.size * spacing_axis.size),
        ):
            values = np.array([
                [self._timed_total_cap(w, s) for s in spacing_axis]
                for w in width_axis
            ])
        return ExtractionTable(
            name=name,
            quantity="capacitance_per_length",
            axis_names=("width", "spacing"),
            axes=[width_axis, spacing_axis],
            values=values,
            metadata={"nx": self.nx, "nz": self.nz, "model": "fd2d"},
        )
