"""Tensor-product spline interpolation on N-dimensional grids.

The mutual-inductance table has four dimensions (two widths, spacing,
length); the bicubic spline of Numerical Recipes generalizes to N
dimensions by applying the successive-1-D construction recursively, which
is what :class:`TensorSplineInterpolator` does.  Axes with fewer than
three knots automatically fall back to linear interpolation.
"""

from __future__ import annotations

import warnings
from typing import List, Sequence

import numpy as np

from repro.errors import ExtrapolationWarning, TableError
from repro.tables.spline import CubicSpline1D


def _interp_1d(x: np.ndarray, y: np.ndarray, q: float) -> float:
    """Cubic spline when enough knots, linear otherwise."""
    if x.size >= 3:
        return float(CubicSpline1D(x, y)(q))
    if x.size == 2:
        t = (q - x[0]) / (x[1] - x[0])
        return float((1.0 - t) * y[0] + t * y[1])
    return float(y[0])


class TensorSplineInterpolator:
    """Interpolate values on a rectangular N-D grid with cubic splines.

    Parameters
    ----------
    axes:
        One strictly increasing coordinate array per dimension.
    values:
        Array of shape ``tuple(len(axis) for axis in axes)``.
    warn_on_extrapolation:
        Emit :class:`~repro.errors.ExtrapolationWarning` when a query
        leaves the characterized grid (the spline still answers, using
        the edge polynomial).
    """

    def __init__(
        self,
        axes: Sequence[Sequence[float]],
        values,
        warn_on_extrapolation: bool = True,
    ):
        self.axes: List[np.ndarray] = [np.asarray(a, dtype=float) for a in axes]
        self.values = np.asarray(values, dtype=float)
        if not self.axes:
            raise TableError("need at least one axis")
        expected = tuple(a.size for a in self.axes)
        if self.values.shape != expected:
            raise TableError(
                f"values shape {self.values.shape} does not match axes {expected}"
            )
        for i, axis in enumerate(self.axes):
            if axis.ndim != 1 or axis.size < 1:
                raise TableError(f"axis {i} must be a 1-D array")
            if axis.size > 1 and not np.all(np.diff(axis) > 0.0):
                raise TableError(f"axis {i} must be strictly increasing")
        self.warn_on_extrapolation = warn_on_extrapolation

    @property
    def ndim(self) -> int:
        """Number of table dimensions."""
        return len(self.axes)

    def in_range(self, point: Sequence[float]) -> bool:
        """True when *point* lies inside the grid on every axis."""
        return all(
            axis[0] <= q <= axis[-1] for axis, q in zip(self.axes, point)
        )

    def __call__(self, *point: float) -> float:
        """Evaluate the interpolant at *point* (one coordinate per axis)."""
        if len(point) == 1 and isinstance(point[0], (tuple, list, np.ndarray)):
            point = tuple(point[0])
        if len(point) != self.ndim:
            raise TableError(
                f"expected {self.ndim} coordinates, got {len(point)}"
            )
        if self.warn_on_extrapolation and not self.in_range(point):
            warnings.warn(
                f"query {tuple(point)} outside characterized grid; "
                "extrapolating with the edge spline",
                ExtrapolationWarning,
                stacklevel=2,
            )
        return self._evaluate(self.values, 0, point)

    def _evaluate(self, values: np.ndarray, depth: int, point: Sequence[float]) -> float:
        axis = self.axes[depth]
        if depth == self.ndim - 1:
            return _interp_1d(axis, values, point[depth])
        reduced = np.array(
            [
                self._evaluate(values[i], depth + 1, point)
                for i in range(axis.size)
            ]
        )
        return _interp_1d(axis, reduced, point[depth])
