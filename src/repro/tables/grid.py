"""Tensor-product spline interpolation on N-dimensional grids.

The mutual-inductance table has four dimensions (two widths, spacing,
length); the bicubic spline of Numerical Recipes generalizes to N
dimensions by applying the successive-1-D construction recursively, which
is what :class:`TensorSplineInterpolator` does.  Axes with fewer than
three knots automatically fall back to linear interpolation.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExtrapolationWarning, TableError
from repro.quality.coverage import POINT_EXTRAPOLATED, classify_point, record_lookup
from repro.tables.spline import CubicSpline1D


def _interp_1d(x: np.ndarray, y: np.ndarray, q: float) -> float:
    """Cubic spline when enough knots, linear otherwise."""
    if x.size >= 3:
        return float(CubicSpline1D(x, y)(q))
    if x.size == 2:
        t = (q - x[0]) / (x[1] - x[0])
        return float((1.0 - t) * y[0] + t * y[1])
    return float(y[0])


class TensorSplineInterpolator:
    """Interpolate values on a rectangular N-D grid with cubic splines.

    Parameters
    ----------
    axes:
        One strictly increasing coordinate array per dimension.
    values:
        Array of shape ``tuple(len(axis) for axis in axes)``.
    warn_on_extrapolation:
        Emit :class:`~repro.errors.ExtrapolationWarning` when a query
        leaves the characterized grid (the spline still answers, using
        the edge polynomial).  The warning message is deliberately
        *stable* (no per-point coordinates), so the stdlib ``warnings``
        dedup shows it to a human once; the per-event record lives in
        the ``table_lookup_extrapolated`` telemetry counters and the
        coverage map, which see every occurrence.
    name:
        Optional table identity; when given, every lookup also feeds
        the process-wide coverage tracker
        (:mod:`repro.quality.coverage`) under this name.
    axis_names:
        Optional per-dimension names used for the per-axis extrapolation
        counters and the coverage map (default: ``axis0``, ``axis1``...).
    """

    def __init__(
        self,
        axes: Sequence[Sequence[float]],
        values,
        warn_on_extrapolation: bool = True,
        name: Optional[str] = None,
        axis_names: Optional[Sequence[str]] = None,
    ):
        self.axes: List[np.ndarray] = [np.asarray(a, dtype=float) for a in axes]
        self.values = np.asarray(values, dtype=float)
        if not self.axes:
            raise TableError("need at least one axis")
        expected = tuple(a.size for a in self.axes)
        if self.values.shape != expected:
            raise TableError(
                f"values shape {self.values.shape} does not match axes {expected}"
            )
        for i, axis in enumerate(self.axes):
            if axis.ndim != 1 or axis.size < 1:
                raise TableError(f"axis {i} must be a 1-D array")
            if axis.size > 1 and not np.all(np.diff(axis) > 0.0):
                raise TableError(f"axis {i} must be strictly increasing")
        self.warn_on_extrapolation = warn_on_extrapolation
        self.name = name
        if axis_names is not None and len(axis_names) != len(self.axes):
            raise TableError("axis_names and axes must have the same length")
        self.axis_names: Tuple[str, ...] = tuple(
            str(n) for n in axis_names
        ) if axis_names is not None else tuple(
            f"axis{i}" for i in range(len(self.axes))
        )

    @property
    def ndim(self) -> int:
        """Number of table dimensions."""
        return len(self.axes)

    def in_range(self, point: Sequence[float]) -> bool:
        """True when *point* lies inside the grid on every axis."""
        return all(
            axis[0] <= q <= axis[-1] for axis, q in zip(self.axes, point)
        )

    def classify(self, point: Sequence[float]) -> Tuple[str, Tuple[str, ...]]:
        """(overall, per-axis) domain classification of a query point.

        Overall is ``interior`` / ``edge`` / ``extrapolated``; per-axis
        entries are ``interior`` / ``edge`` / ``low`` / ``high``.  The
        classifier agrees exactly with :meth:`in_range` on boundary
        points: a query *on* the first or last knot is in range (edge),
        never extrapolated.
        """
        return classify_point(self.axes, point)

    def __call__(self, *point: float) -> float:
        """Evaluate the interpolant at *point* (one coordinate per axis)."""
        if len(point) == 1 and isinstance(point[0], (tuple, list, np.ndarray)):
            point = tuple(point[0])
        if len(point) != self.ndim:
            raise TableError(
                f"expected {self.ndim} coordinates, got {len(point)}"
            )
        overall, _ = record_lookup(
            self.axes, point, name=self.name, axis_names=self.axis_names
        )
        if overall == POINT_EXTRAPOLATED and self.warn_on_extrapolation:
            # Stable message (no coordinates): stdlib warnings dedup
            # keeps the human channel to one line per table while the
            # telemetry counters and coverage hot-spots record every
            # event with the offending geometry.
            warnings.warn(
                f"lookup outside the characterized grid of "
                f"{self.name or 'table'}; extrapolating with the edge "
                "spline (see table_lookup_extrapolated counters / "
                "coverage map for every occurrence)",
                ExtrapolationWarning,
                stacklevel=2,
            )
        return self._evaluate(self.values, 0, point)

    def _evaluate(self, values: np.ndarray, depth: int, point: Sequence[float]) -> float:
        axis = self.axes[depth]
        if depth == self.ndim - 1:
            return _interp_1d(axis, values, point[depth])
        reduced = np.array(
            [
                self._evaluate(values[i], depth + 1, point)
                for i in range(axis.size)
            ]
        )
        return _interp_1d(axis, reduced, point[depth])
