"""Table-based extraction: precompute, store, interpolate.

The paper's central efficiency idea (Sec. III): run the expensive field
solver offline over a grid of geometries, store self- and mutual-
inductance (and capacitance) tables, and answer extraction queries with
bicubic-spline interpolation -- orders of magnitude faster than a fresh
field solve with no loss of accuracy inside the characterized grid.
"""

from repro.tables.builder import (
    CapacitanceTableBuilder,
    LoopInductanceTableBuilder,
    PartialInductanceTableBuilder,
    ThreeTraceCapacitanceBuilder,
)
from repro.tables.grid import TensorSplineInterpolator
from repro.tables.lookup import ExtractionTable
from repro.tables.spline import BicubicSpline, CubicSpline1D

__all__ = [
    "CapacitanceTableBuilder",
    "LoopInductanceTableBuilder",
    "PartialInductanceTableBuilder",
    "ThreeTraceCapacitanceBuilder",
    "TensorSplineInterpolator",
    "ExtractionTable",
    "BicubicSpline",
    "CubicSpline1D",
]
