"""Extraction tables: named, serializable, spline-interpolated grids.

An :class:`ExtractionTable` is what the paper's methodology precomputes
per layer and per shielding structure: a small N-D grid of field-solver
results with named axes, answered at lookup time by tensor-spline
interpolation.  Tables serialize to JSON so a characterized technology
can ship with a design kit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import TableError
from repro.ioutil import atomic_write_text
from repro.tables.grid import TensorSplineInterpolator
from repro.telemetry.registry import LOOKUP_LATENCY, get_registry


@dataclass
class ExtractionTable:
    """A characterized extraction quantity on an N-D geometry grid.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"M5_self_loop_inductance"``.
    quantity:
        What the values mean, e.g. ``"self_inductance"`` (units: henries),
        ``"capacitance_per_length"`` (farads/metre).
    axis_names:
        One name per dimension, e.g. ``("width", "length")``; all
        coordinates in SI metres.
    axes:
        Grid coordinates per dimension.
    values:
        Grid values, shape ``tuple(len(a) for a in axes)``.
    metadata:
        Free-form provenance: frequency, structure parameters, solver
        settings.
    """

    name: str
    quantity: str
    axis_names: Sequence[str]
    axes: List[np.ndarray]
    values: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.axes = [np.asarray(a, dtype=float) for a in self.axes]
        self.values = np.asarray(self.values, dtype=float)
        if len(self.axis_names) != len(self.axes):
            raise TableError("axis_names and axes must have the same length")
        self._interp = TensorSplineInterpolator(
            self.axes, self.values, name=self.name,
            axis_names=self.axis_names,
        )

    @property
    def ndim(self) -> int:
        """Number of table dimensions."""
        return len(self.axes)

    def _resolve_point(
        self, point: Tuple[float, ...], named: Dict[str, float]
    ) -> Tuple[float, ...]:
        if named:
            if point:
                raise TableError("pass coordinates positionally or by name, not both")
            named = dict(named)
            try:
                point = tuple(named.pop(name) for name in self.axis_names)
            except KeyError as exc:
                raise TableError(f"missing coordinate for axis {exc}") from None
            if named:
                raise TableError(f"unknown axes {sorted(named)}")
        return point

    def lookup(self, *point: float, **named: float) -> float:
        """Interpolate the table at a geometry point.

        Accepts positional coordinates in axis order, or keyword
        coordinates by axis name (but not a mix).  Every lookup
        classifies against the characterized domain (interior /
        edge-cell / extrapolated), ticking the ``table_lookup*``
        counters and this table's coverage map
        (:mod:`repro.quality.coverage`).
        """
        return self._interp(*self._resolve_point(point, named))

    def in_range(self, *point: float, **named: float) -> bool:
        """True when the query point lies inside the characterized grid."""
        return self._interp.in_range(self._resolve_point(point, named))

    def classify(self, *point: float, **named: float) -> str:
        """Domain classification of a query point without evaluating it.

        ``interior`` / ``edge`` (outermost spline cell) /
        ``extrapolated``; agrees exactly with :meth:`in_range` on
        boundary points.
        """
        overall, _ = self._interp.classify(self._resolve_point(point, named))
        return overall

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "quantity": self.quantity,
            "axis_names": list(self.axis_names),
            "axes": [a.tolist() for a in self.axes],
            "values": self.values.tolist(),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExtractionTable":
        """Rebuild a table from :meth:`to_dict` output."""
        try:
            return cls(
                name=data["name"],
                quantity=data["quantity"],
                axis_names=data["axis_names"],
                axes=[np.asarray(a) for a in data["axes"]],
                values=np.asarray(data["values"]),
                metadata=data.get("metadata", {}),
            )
        except KeyError as exc:
            raise TableError(f"table dict missing key {exc}") from None

    def save(self, path: Union[str, Path]) -> None:
        """Write the table to a JSON file.

        The write is crash-safe: the JSON is staged to a temporary file
        in the destination directory and atomically renamed into place,
        so a killed characterization run never leaves a truncated table
        behind.
        """
        atomic_write_text(path, json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExtractionTable":
        """Read a table from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def timed_lookup(table: ExtractionTable, **coords: float) -> float:
    """Table lookup that feeds the ``lookup_latency_seconds`` histogram.

    The shared hot-path helper used by every extractor: histograms never
    touch the solver-call counters, so the warm-path "zero solver calls"
    assertions stay meaningful.
    """
    t0 = time.perf_counter()
    try:
        return table.lookup(**coords)
    finally:
        get_registry().observe(LOOKUP_LATENCY, time.perf_counter() - t0)
