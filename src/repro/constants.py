"""Physical constants and unit helpers.

All internal computation in :mod:`repro` uses SI units (metres, henries,
farads, ohms, seconds, hertz).  The helpers here make the unit conversions
at API boundaries explicit and readable, e.g. ``um(10)`` for a 10 micron
width or ``to_nH(L)`` when reporting an inductance.
"""

from __future__ import annotations

import math

#: Vacuum permeability [H/m].
MU_0 = 4.0e-7 * math.pi

#: Vacuum permittivity [F/m].
EPS_0 = 8.8541878128e-12

#: Relative permittivity of SiO2 (typical on-chip interlayer dielectric).
EPS_R_SIO2 = 3.9

#: Resistivity of copper at room temperature [ohm*m].
RHO_CU = 1.72e-8

#: Resistivity of aluminium at room temperature [ohm*m].
RHO_AL = 2.82e-8

#: Speed of light in vacuum [m/s].
C_0 = 299_792_458.0


def um(value: float) -> float:
    """Convert microns to metres."""
    return value * 1e-6


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return value * 1e-3

def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * 1e-9


def to_um(value: float) -> float:
    """Convert metres to microns."""
    return value * 1e6


def nH(value: float) -> float:
    """Convert nanohenries to henries."""
    return value * 1e-9


def pH(value: float) -> float:
    """Convert picohenries to henries."""
    return value * 1e-12


def to_nH(value: float) -> float:
    """Convert henries to nanohenries."""
    return value * 1e9


def to_pH(value: float) -> float:
    """Convert henries to picohenries."""
    return value * 1e12


def fF(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * 1e-15


def pF(value: float) -> float:
    """Convert picofarads to farads."""
    return value * 1e-12


def to_fF(value: float) -> float:
    """Convert farads to femtofarads."""
    return value * 1e15


def to_pF(value: float) -> float:
    """Convert farads to picofarads."""
    return value * 1e12


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def to_ps(value: float) -> float:
    """Convert seconds to picoseconds."""
    return value * 1e12


def GHz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def to_GHz(value: float) -> float:
    """Convert hertz to gigahertz."""
    return value * 1e-9
