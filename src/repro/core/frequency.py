"""The significant frequency and related frequency-domain helpers.

Inductance (and skin-corrected resistance) depend on frequency; the
paper characterizes at the *significant frequency* of the switching
waveform, defined as ``f_s = 0.32 / t_r`` where ``t_r`` is the minimum
rise/fall time [1].  This is the knee frequency above which the spectrum
of a trapezoidal edge rolls off at -40 dB/dec.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.peec.analytic import skin_depth

#: The knee-frequency coefficient of the significant-frequency rule.
SIGNIFICANT_FREQUENCY_COEFFICIENT = 0.32


def significant_frequency(rise_time: float) -> float:
    """Significant frequency 0.32 / t_rise [Hz] of a switching edge."""
    if rise_time <= 0.0:
        raise GeometryError("rise_time must be positive")
    return SIGNIFICANT_FREQUENCY_COEFFICIENT / rise_time


def rise_time_for_frequency(frequency: float) -> float:
    """Inverse of :func:`significant_frequency`."""
    if frequency <= 0.0:
        raise GeometryError("frequency must be positive")
    return SIGNIFICANT_FREQUENCY_COEFFICIENT / frequency


__all__ = ["significant_frequency", "rise_time_for_frequency", "skin_depth"]
