"""Per-layer technology characterization (Sec. III).

"We assume that each layer has a nominal thickness, and build tables
for different layers."  A :class:`TechnologyTables` holds one
characterized :class:`~repro.core.extraction.TableBasedExtractor` per
metal layer of a :class:`~repro.geometry.stackup.Stackup`, built from a
per-layer routing configuration, and persists/loads the whole set as a
directory tree -- the shape a characterized design kit ships in.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Union

from repro.core.extraction import TableBasedExtractor
from repro.errors import TableError
from repro.geometry.stackup import Stackup


@dataclass
class TechnologyTables:
    """Characterized extraction tables for every routing layer."""

    extractors: Dict[str, TableBasedExtractor]
    frequency: float

    def __post_init__(self) -> None:
        if not self.extractors:
            raise TableError("technology needs at least one layer")

    def layer_names(self):
        """Characterized layer names."""
        return sorted(self.extractors)

    def extractor_for(self, layer: str) -> TableBasedExtractor:
        """The characterized extractor of one layer."""
        try:
            return self.extractors[layer]
        except KeyError:
            raise TableError(
                f"layer {layer!r} not characterized; "
                f"available: {self.layer_names()}"
            ) from None

    @classmethod
    def characterize(
        cls,
        configs_by_layer: Mapping[str, object],
        frequency: float,
        widths: Sequence[float],
        lengths: Sequence[float],
    ) -> "TechnologyTables":
        """Characterize every layer's structure family.

        *configs_by_layer* maps layer names to routing configurations
        (CPW / microstrip / stripline); each gets its own loop tables at
        the shared significant frequency.
        """
        extractors = {
            layer: TableBasedExtractor.characterize(
                config, frequency=frequency, widths=widths, lengths=lengths,
                name_prefix=f"{layer}_loop",
            )
            for layer, config in configs_by_layer.items()
        }
        return cls(extractors=extractors, frequency=frequency)

    @classmethod
    def for_stackup(
        cls,
        stackup: Stackup,
        config_factory: Callable[[object], object],
        frequency: float,
        widths: Sequence[float],
        lengths: Sequence[float],
        layers: Optional[Sequence[str]] = None,
    ) -> "TechnologyTables":
        """Characterize selected layers of a stackup.

        *config_factory* maps a :class:`~repro.geometry.stackup.Layer`
        to its routing configuration (so per-layer thickness and
        resistivity flow into the tables).  *layers* defaults to every
        layer of the stackup.
        """
        names = list(layers) if layers is not None else [l.name for l in stackup]
        configs = {
            name: config_factory(stackup.layer(name)) for name in names
        }
        return cls.characterize(configs, frequency, widths, lengths)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write one subdirectory of tables per layer."""
        directory = Path(directory)
        for layer, extractor in self.extractors.items():
            extractor.save(directory / layer)

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        configs_by_layer: Mapping[str, object],
        frequency: float,
    ) -> "TechnologyTables":
        """Reload a technology saved with :meth:`save`."""
        directory = Path(directory)
        extractors = {}
        for layer, config in configs_by_layer.items():
            extractors[layer] = TableBasedExtractor.load(
                directory / layer, config, frequency
            )
        return cls(extractors=extractors, frequency=frequency)
