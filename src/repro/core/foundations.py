"""Numerical verification of the extraction Foundations (Secs. II, Fig. 5).

*Foundation 1*: the self (partial or loop) inductance of a trace depends
only on that trace's geometry -- solving the trace alone gives the same
value as solving it inside the full n-trace block.

*Foundation 2*: the mutual inductance of two traces depends only on the
pair -- a 2-trace subproblem reproduces the full-block value.

Without ground planes these hold exactly for partial inductance under
the PEEC model; with a local ground plane they hold approximately for
the *loop* inductance (the paper's extension), which
:func:`foundation1_check` / :func:`foundation2_check` quantify the same
way the paper's Fig. 5 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import GroundPlane
from repro.peec.loop import LoopProblem
from repro.peec.solver import Conductor, PartialInductanceSolver


@dataclass(frozen=True)
class FoundationCheck:
    """One reduction-accuracy comparison."""

    description: str
    full_value: float
    reduced_value: float

    @property
    def relative_error(self) -> float:
        """|reduced - full| / |full|."""
        if self.full_value == 0.0:
            return 0.0 if self.reduced_value == 0.0 else float("inf")
        return abs(self.reduced_value - self.full_value) / abs(self.full_value)


def _loop_problem_for(
    block: TraceBlock,
    plane: GroundPlane,
    signal_index: int,
    n_width: int,
    n_thickness: int,
) -> LoopProblem:
    return LoopProblem(
        block,
        signal=block.traces[signal_index].name,
        plane=plane,
        n_width=n_width,
        n_thickness=n_thickness,
    )


def loop_inductance_matrix(
    block: TraceBlock,
    plane: GroundPlane,
    frequency: float,
    n_width: int = 2,
    n_thickness: int = 1,
) -> np.ndarray:
    """The Fig. 5(a) matrix: loop self/mutual L of every trace over a plane.

    ``M[i][i]`` is trace i's loop inductance with the plane return;
    ``M[i][j]`` is the open-circuit mutual loop inductance from loop i to
    trace j.  All traces are treated as signals (returns in the plane).
    """
    if any(t.is_ground for t in block.traces):
        raise GeometryError("Fig. 5 arrays have no coplanar ground traces")
    n = len(block)
    matrix = np.zeros((n, n))
    names = [t.name for t in block.traces]
    for i in range(n):
        problem = _loop_problem_for(block, plane, i, n_width, n_thickness)
        solution = problem.solve(frequency)
        matrix[i, i] = solution.loop_inductance
        for j, name in enumerate(names):
            if j != i:
                matrix[i, j] = solution.mutual_loop_inductances[name]
    return 0.5 * (matrix + matrix.T)  # reciprocity holds; average noise out


def foundation1_check(
    block: TraceBlock,
    plane: GroundPlane,
    frequency: float,
    trace_index: int = 0,
    n_width: int = 2,
    n_thickness: int = 1,
) -> FoundationCheck:
    """Self loop L of one trace: alone-over-plane vs inside the full array.

    The paper's Fig. 5(b) experiment.
    """
    full = _loop_problem_for(block, plane, trace_index, n_width, n_thickness)
    full_l = full.solve(frequency).loop_inductance
    alone_block = block.subblock([trace_index])
    alone = LoopProblem(
        alone_block,
        signal=alone_block.traces[0].name,
        plane=plane,
        n_width=n_width,
        n_thickness=n_thickness,
    )
    alone_l = alone.solve(frequency).loop_inductance
    return FoundationCheck(
        description=(
            f"Foundation 1 (loop): self L of {block.traces[trace_index].name} "
            "alone vs in array"
        ),
        full_value=full_l,
        reduced_value=alone_l,
    )


def foundation2_check(
    block: TraceBlock,
    plane: GroundPlane,
    frequency: float,
    index_a: int = 0,
    index_b: int = -1,
    n_width: int = 2,
    n_thickness: int = 1,
) -> FoundationCheck:
    """Mutual loop L of a pair: 2-trace subproblem vs the full array.

    The paper's Fig. 5(c) experiment.
    """
    index_b = index_b % len(block)
    if index_a == index_b:
        raise GeometryError("need two distinct traces")
    name_b = block.traces[index_b].name
    full = _loop_problem_for(block, plane, index_a, n_width, n_thickness)
    full_m = full.solve(frequency).mutual_loop_inductances[name_b]
    pair_block = block.subblock([index_a, index_b])
    pair = LoopProblem(
        pair_block,
        signal=block.traces[index_a].name,
        plane=plane,
        n_width=n_width,
        n_thickness=n_thickness,
    )
    pair_m = pair.solve(frequency).mutual_loop_inductances[name_b]
    return FoundationCheck(
        description=(
            f"Foundation 2 (loop): mutual L of "
            f"({block.traces[index_a].name}, {name_b}) pair vs in array"
        ),
        full_value=full_m,
        reduced_value=pair_m,
    )


def partial_foundation_checks(
    block: TraceBlock,
    frequency: Optional[float] = None,
    n_width: int = 2,
    n_thickness: int = 2,
) -> List[FoundationCheck]:
    """Foundations 1 & 2 for *partial* inductance (no ground plane).

    At uniform current (``frequency=None``) the reduction is exact under
    PEEC; at a finite frequency proximity effects introduce the small
    deviations the check quantifies.
    """
    def conductors(indices):
        return [
            Conductor.from_bar(
                block.traces[i].name, block.traces[i].to_bar(),
                n_width=n_width, n_thickness=n_thickness, grading=1.5,
            )
            for i in indices
        ]

    def lp_matrix(indices) -> np.ndarray:
        solver = PartialInductanceSolver(conductors(indices))
        if frequency is None:
            return solver.conductor_lp_matrix()
        _, l_matrix = solver.effective_rl(frequency)
        return l_matrix

    full = lp_matrix(range(len(block)))
    checks: List[FoundationCheck] = []
    for i, trace in enumerate(block.traces):
        alone = lp_matrix([i])
        checks.append(
            FoundationCheck(
                description=f"Foundation 1 (partial): self Lp of {trace.name}",
                full_value=float(full[i, i]),
                reduced_value=float(alone[0, 0]),
            )
        )
    for i in range(len(block)):
        for j in range(i + 1, len(block)):
            pair = lp_matrix([i, j])
            checks.append(
                FoundationCheck(
                    description=(
                        "Foundation 2 (partial): mutual Lp of "
                        f"({block.traces[i].name}, {block.traces[j].name})"
                    ),
                    full_value=float(full[i, j]),
                    reduced_value=float(pair[0, 1]),
                )
            )
    return checks
