"""The headline API: characterize a structure family once, extract fast.

:class:`TableBasedExtractor` bundles the paper's methodology end to end:

1. :meth:`TableBasedExtractor.characterize` sweeps the PEEC loop solver
   (and optionally the 2-D capacitance solver) over a (width, length)
   grid at the significant frequency and stores the results as
   bicubic-spline tables;
2. :meth:`loop_inductance` / :meth:`loop_resistance` /
   :meth:`capacitance_per_length` answer extraction queries by table
   lookup;
3. :meth:`accuracy_probe` quantifies interpolation error against a fresh
   direct field solve at any query point (the "no loss of accuracy"
   claim of Sec. III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import TableError
from repro.tables.builder import (
    CapacitanceTableBuilder,
    LoopInductanceTableBuilder,
)
from repro.tables.lookup import ExtractionTable, timed_lookup
from repro.telemetry import span


@dataclass(frozen=True)
class AccuracyProbe:
    """Interpolated vs directly solved values at one query point."""

    width: float
    length: float
    table_inductance: float
    direct_inductance: float
    table_time: float
    direct_time: float

    @property
    def relative_error(self) -> float:
        """Interpolation error against the direct solve."""
        return abs(self.table_inductance - self.direct_inductance) / abs(
            self.direct_inductance
        )

    @property
    def speedup(self) -> float:
        """Direct-solve time over lookup time."""
        if self.table_time <= 0.0:
            return float("inf")
        return self.direct_time / self.table_time


class TableBasedExtractor:
    """Characterized tables plus lookup for one structure family.

    Build with :meth:`characterize` (runs the field solvers) or from
    previously saved tables with :meth:`from_tables` / :meth:`load`.
    """

    def __init__(
        self,
        config,
        frequency: float,
        inductance_table: ExtractionTable,
        resistance_table: Optional[ExtractionTable] = None,
        capacitance_table: Optional[ExtractionTable] = None,
    ):
        if frequency <= 0.0:
            raise TableError("frequency must be positive")
        self.config = config
        self.frequency = frequency
        self.inductance_table = inductance_table
        self.resistance_table = resistance_table
        self.capacitance_table = capacitance_table

    # ------------------------------------------------------------------
    # characterization
    # ------------------------------------------------------------------
    @classmethod
    def characterize(
        cls,
        config,
        frequency: float,
        widths: Sequence[float],
        lengths: Sequence[float],
        spacings: Optional[Sequence[float]] = None,
        capacitance_grid: Optional[tuple] = None,
        name_prefix: str = "structure",
    ) -> "TableBasedExtractor":
        """Run the field solvers over the grid and build all tables.

        Parameters
        ----------
        config:
            A structure configuration providing ``loop_problem(width,
            length)`` and, for capacitance, ``cross_section(width,
            spacing)`` (see :mod:`repro.clocktree.configs`).
        spacings:
            When given, also build a per-unit-length capacitance table
            over (width, spacing) with the 2-D field solver.
        capacitance_grid:
            Optional ``(nx, nz)`` override for the capacitance solver.
        """
        widths = list(widths)
        lengths = list(lengths)
        with span(
            "extractor.characterize",
            family=name_prefix,
            grid=f"{len(widths)}x{len(lengths)}",
        ):
            loop_builder = LoopInductanceTableBuilder(
                problem_factory=config.loop_problem, frequency=frequency
            )
            l_table, r_table = loop_builder.build_loop_tables(
                widths, lengths, name_prefix=name_prefix
            )
            c_table = None
            if spacings is not None:
                nx, nz = capacitance_grid if capacitance_grid else (160, 120)
                cap_builder = CapacitanceTableBuilder(
                    cross_section_factory=lambda w, s: config.cross_section(
                        signal_width=w, spacing=s
                    ),
                    nx=nx,
                    nz=nz,
                )
                c_table = cap_builder.build_total_cap_table(
                    widths, spacings, name=f"{name_prefix}_capacitance"
                )
        return cls(
            config=config,
            frequency=frequency,
            inductance_table=l_table,
            resistance_table=r_table,
            capacitance_table=c_table,
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _timed_lookup(self, table: ExtractionTable, **coords: float) -> float:
        """Table lookup that feeds the ``lookup_latency_seconds`` histogram.

        Delegates to the shared hot-path helper
        (:func:`repro.tables.lookup.timed_lookup`); histograms never
        touch the solver-call counters, so the warm-path "zero solver
        calls" assertions stay meaningful.
        """
        return timed_lookup(table, **coords)

    def loop_inductance(self, width: float, length: float) -> float:
        """Loop inductance of a segment by table lookup [H]."""
        return self._timed_lookup(
            self.inductance_table, width=width, length=length
        )

    def loop_resistance(self, width: float, length: float) -> float:
        """Loop resistance of a segment by table lookup [ohm]."""
        if self.resistance_table is None:
            raise TableError("no resistance table was characterized")
        return self._timed_lookup(
            self.resistance_table, width=width, length=length
        )

    def capacitance_per_length(self, width: float, spacing: float) -> float:
        """Per-unit-length signal capacitance by table lookup [F/m]."""
        if self.capacitance_table is None:
            raise TableError("no capacitance table was characterized")
        return self._timed_lookup(
            self.capacitance_table, width=width, spacing=spacing
        )

    # ------------------------------------------------------------------
    # validation & integration
    # ------------------------------------------------------------------
    def accuracy_probe(self, width: float, length: float) -> AccuracyProbe:
        """Compare a table lookup against a fresh direct field solve."""
        t0 = time.perf_counter()
        table_l = self.loop_inductance(width, length)
        t1 = time.perf_counter()
        problem = self.config.loop_problem(width, length)
        _, direct_l = problem.loop_rl(self.frequency)
        t2 = time.perf_counter()
        return AccuracyProbe(
            width=width,
            length=length,
            table_inductance=table_l,
            direct_inductance=direct_l,
            table_time=t1 - t0,
            direct_time=t2 - t1,
        )

    def audit(self, auditor=None) -> dict:
        """Residual spot-check of the loop tables (opt-in: runs solvers).

        Draws the auditor's deterministic off-grid sample from the
        inductance table's domain, re-solves each point **once** with
        the PEEC loop solver (one ``loop_rl`` yields both R and L), and
        grades the inductance and resistance splines against the direct
        values.  Returns ``{table name -> TableHealthReport}``.

        Never called on the plain extraction path -- every direct solve
        here ticks the ``audit_direct_solve`` counter, which the
        zero-solve tests assert stays at zero for warm lookups.
        """
        from repro.quality.audit import TableAuditor

        auditor = auditor if auditor is not None else TableAuditor()
        points = auditor.sample_points(
            self.inductance_table.axes, self.inductance_table.name
        )
        solved: dict = {}

        def _solve(point):
            if point not in solved:
                width, length = point
                problem = self.config.loop_problem(width, length)
                solved[point] = problem.loop_rl(self.frequency)
            return solved[point]

        reports = {
            self.inductance_table.name: auditor.audit(
                self.inductance_table,
                lambda p: _solve(p)[1],
                points=points,
            )
        }
        if self.resistance_table is not None:
            reports[self.resistance_table.name] = auditor.audit(
                self.resistance_table,
                lambda p: _solve(p)[0],
                points=points,
            )
        return reports

    def as_clocktree_extractor(self, sections_per_segment: int = 4):
        """A :class:`~repro.clocktree.extractor.ClocktreeRLCExtractor`
        driven by these tables."""
        from repro.clocktree.extractor import ClocktreeRLCExtractor

        return ClocktreeRLCExtractor(
            config=self.config,
            frequency=self.frequency,
            inductance_table=self.inductance_table,
            resistance_table=self.resistance_table,
            capacitance_table=self.capacitance_table,
            sections_per_segment=sections_per_segment,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Save all tables as JSON files in *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.inductance_table.save(directory / "inductance.json")
        if self.resistance_table is not None:
            self.resistance_table.save(directory / "resistance.json")
        if self.capacitance_table is not None:
            self.capacitance_table.save(directory / "capacitance.json")

    @classmethod
    def from_library(
        cls, library: Union[str, Path, object], config, frequency: float,
        layer: Optional[str] = None,
    ) -> "TableBasedExtractor":
        """Assemble an extractor from a characterization library.

        Queries the library by this *config*'s structure-family
        fingerprint, quantity and *frequency* (see
        :mod:`repro.library.store`); raises :class:`TableError` when no
        loop-inductance table has been characterized for the family.
        """
        from repro.library.jobs import config_fingerprint
        from repro.library.store import open_library

        lib = open_library(library, create=False)
        family = config_fingerprint(config)
        criteria = {"family": family}
        if layer is not None:
            criteria["layer"] = layer
        l_table = lib.get_one(quantity="loop_inductance",
                              frequency=frequency, **criteria)
        if l_table is None:
            raise TableError(
                f"library {lib.root} has no loop_inductance table for "
                f"this structure family at {frequency:.4g} Hz"
            )
        return cls(
            config=config,
            frequency=frequency,
            inductance_table=l_table,
            resistance_table=lib.get_one(
                quantity="loop_resistance", frequency=frequency, **criteria),
            capacitance_table=lib.get_one(
                quantity="capacitance_per_length", **criteria),
        )

    @classmethod
    def load(
        cls, directory: Union[str, Path], config, frequency: float
    ) -> "TableBasedExtractor":
        """Load tables previously written by :meth:`save`."""
        directory = Path(directory)
        l_path = directory / "inductance.json"
        if not l_path.exists():
            raise TableError(f"no inductance table at {l_path}")
        r_path = directory / "resistance.json"
        c_path = directory / "capacitance.json"
        return cls(
            config=config,
            frequency=frequency,
            inductance_table=ExtractionTable.load(l_path),
            resistance_table=ExtractionTable.load(r_path) if r_path.exists() else None,
            capacitance_table=ExtractionTable.load(c_path) if c_path.exists() else None,
        )
