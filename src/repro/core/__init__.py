"""The paper's primary contribution, packaged.

* :mod:`repro.core.frequency` -- the significant-frequency rule and skin
  depth.
* :mod:`repro.core.foundations` -- numerical verification of the two
  extraction Foundations and their ground-plane extension (Fig. 5).
* :mod:`repro.core.extraction` -- :class:`TableBasedExtractor`, the
  characterize-once / look-up-fast front end.
"""

from repro.core.extraction import TableBasedExtractor
from repro.core.foundations import (
    FoundationCheck,
    foundation1_check,
    foundation2_check,
    loop_inductance_matrix,
    partial_foundation_checks,
)
from repro.core.frequency import significant_frequency
from repro.core.technology import TechnologyTables

__all__ = [
    "TableBasedExtractor",
    "TechnologyTables",
    "FoundationCheck",
    "foundation1_check",
    "foundation2_check",
    "loop_inductance_matrix",
    "partial_foundation_checks",
    "significant_frequency",
]
