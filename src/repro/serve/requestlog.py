"""Per-request debug records: the ``/debug/requests`` ring.

Every request the service finishes leaves a :class:`RequestRecord` --
request id, endpoint, status, latency, cache outcome, and the completed
``serve.<endpoint>`` span tree.  :class:`RequestRing` retains two
bounded views of them:

* **recent** -- the last N requests in arrival order (a flight
  recorder for "what just happened"), and
* **slowest** -- the N highest-latency requests seen since startup
  (the ones an operator actually wants to open as traces).

Both views are served by ``GET /debug/requests``; the span trees inside
carry the request id as a tag (see
:meth:`repro.telemetry.spans.Tracer.span`), which is what ties a slow
access-log line to an openable trace.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["RequestRecord", "RequestRing"]


class RequestRecord:
    """One finished request, as kept by the debug ring."""

    __slots__ = (
        "request_id", "endpoint", "status", "latency", "cache_hit",
        "coalesced", "error", "spans", "finished_at",
    )

    def __init__(
        self,
        request_id: str,
        endpoint: str,
        status: int,
        latency: float,
        cache_hit: Optional[bool] = None,
        coalesced: bool = False,
        error: Optional[str] = None,
        spans: Optional[dict] = None,
        finished_at: Optional[float] = None,
    ):
        self.request_id = request_id
        self.endpoint = endpoint
        self.status = status
        self.latency = latency
        self.cache_hit = cache_hit
        self.coalesced = coalesced
        self.error = error
        #: The completed ``serve.<endpoint>`` span tree (dict), if spans
        #: were enabled during the request.
        self.spans = spans
        self.finished_at = time.time() if finished_at is None else finished_at

    def to_dict(self, include_spans: bool = True) -> dict:
        data: Dict[str, object] = {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "status": self.status,
            "latency_ms": round(self.latency * 1e3, 3),
            "finished_at": self.finished_at,
        }
        if self.cache_hit is not None:
            data["cache_hit"] = self.cache_hit
        if self.coalesced:
            data["coalesced"] = True
        if self.error is not None:
            data["error"] = self.error
        if include_spans and self.spans is not None:
            data["spans"] = self.spans
        return data


class RequestRing:
    """Bounded recent + slowest views over finished requests."""

    DEFAULT_RECENT = 64
    DEFAULT_SLOWEST = 16

    def __init__(
        self,
        recent_capacity: int = DEFAULT_RECENT,
        slowest_capacity: int = DEFAULT_SLOWEST,
    ):
        self._lock = threading.Lock()
        self._recent: "deque[RequestRecord]" = deque(
            maxlen=max(1, int(recent_capacity))
        )
        self._slowest: List[RequestRecord] = []
        self._slowest_capacity = max(1, int(slowest_capacity))
        self.total = 0

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            self.total += 1
            self._recent.append(record)
            slow = self._slowest
            if (len(slow) < self._slowest_capacity
                    or record.latency > slow[-1].latency):
                slow.append(record)
                slow.sort(key=lambda r: r.latency, reverse=True)
                del slow[self._slowest_capacity:]

    def recent(self, limit: Optional[int] = None) -> List[RequestRecord]:
        """Most recent requests, newest last."""
        with self._lock:
            records = list(self._recent)
        if limit is not None:
            records = records[-max(0, int(limit)):]
        return records

    def slowest(self, limit: Optional[int] = None) -> List[RequestRecord]:
        """Highest-latency requests, slowest first."""
        with self._lock:
            records = list(self._slowest)
        if limit is not None:
            records = records[:max(0, int(limit))]
        return records

    def errors(self, limit: Optional[int] = None) -> List[RequestRecord]:
        """Recent failed (>=400) requests, newest last."""
        records = [r for r in self.recent() if r.status >= 400]
        if limit is not None:
            records = records[-max(0, int(limit)):]
        return records

    def to_dict(self, include_spans: bool = True) -> dict:
        """The ``/debug/requests`` payload."""
        return {
            "total": self.total,
            "recent": [
                r.to_dict(include_spans=include_spans)
                for r in self.recent()
            ],
            "slowest": [
                r.to_dict(include_spans=include_spans)
                for r in self.slowest()
            ],
        }
