"""HTTP transport for the extraction service (stdlib only).

A deliberately thin layer: :class:`ExtractionServer` is a
``ThreadingHTTPServer`` (one thread per connection, daemon threads) that
owns one :class:`~repro.serve.service.ExtractionService` and translates
HTTP to :meth:`~repro.serve.service.ExtractionService.handle` calls.
All policy lives below it -- admission in
:class:`~repro.serve.limits.ConcurrencyLimiter`, dedup in the
coalescer, result reuse in the cache -- so the handler here only parses,
dispatches, and serializes.

Routes::

    GET  /healthz         identity + load + cache + SLO (served draining)
    GET  /metrics         Prometheus text exposition of the live registry
    GET  /statusz         human-readable status page (HTML)
    GET  /debug/requests  recent + slowest requests with span trees
    POST /extract         geometry -> RLC netlist (``{"result": ...}``)
    POST /lookup          raw table lookup with coverage classification
    POST /skew            H-tree skew summary (RC vs RLC)

Request correlation: every request gets a request id -- an incoming
``X-Request-Id`` header is honored (truncated to a sane length),
otherwise one is minted -- which is returned on the response, bound as
the correlation scope around handling (so log records and tracer spans
carry it), stamped into the response envelope, and written to the
structured JSON access log (one line per request: request id, endpoint,
status, latency ms, cache hit/miss, inflight).  429/503 admission
rejections log at WARNING with the reason.

POST requests pass admission control first: 429 when the in-flight
ceiling is hit, 503 once draining.  :func:`run_server` is the blocking
entry point used by ``repro serve``; it installs SIGTERM/SIGINT handlers
implementing the graceful drain (stop admitting, wait for in-flight to
reach zero, then shut the listener down).  :func:`start_server` starts
the same server on a background thread -- the form the end-to-end tests
and the in-process load driver use.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ReproError, ServeError
from repro.serve.service import ExtractionService
from repro.telemetry.logs import correlation_scope, get_logger, new_request_id

__all__ = ["ExtractionServer", "start_server", "run_server"]

log = logging.getLogger(__name__)

#: Structured access log ("repro.serve.access" records, one per request).
access_log = get_logger("repro.serve.access")

#: Longest accepted client-supplied X-Request-Id.
MAX_REQUEST_ID = 128

#: Largest accepted request body; extraction requests are tiny.
MAX_BODY_BYTES = 1 << 20

#: Default seconds to wait for in-flight requests during drain.
DRAIN_TIMEOUT = 10.0


class _Handler(BaseHTTPRequestHandler):
    """Request handler: parse, admit, dispatch, serialize."""

    server: "ExtractionServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _begin_request(self) -> str:
        """Resolve this request's id and start its latency clock."""
        rid = (self.headers.get("X-Request-Id") or "").strip()
        rid = rid[:MAX_REQUEST_ID] if rid else new_request_id()
        self._request_id = rid
        self._t0 = time.perf_counter()
        self._access: dict = {}
        return rid

    def log_request(self, code: object = "-", size: object = "-") -> None:
        """One structured JSON access-log line per response sent.

        ``send_response`` invokes this, so every answered request --
        including 404s and handler crashes -- leaves exactly one line.
        Backpressure rejections (429/503) and server errors log at
        WARNING so an operator tailing the log sees them without
        filtering.
        """
        try:
            status = int(code)
        except (TypeError, ValueError):
            status = 0
        fields = dict(getattr(self, "_access", None) or {})
        rid = getattr(self, "_request_id", None)
        if rid:
            fields.setdefault("request_id", rid)
        t0 = getattr(self, "_t0", None)
        if t0 is not None:
            fields["latency_ms"] = round((time.perf_counter() - t0) * 1e3, 3)
        level = "warning" if (status in (429, 503) or status >= 500) else "info"
        access_log.log(
            level, "request",
            method=self.command,
            path=self.path,
            status=status,
            client=self.address_string(),
            inflight=self.server.service.limiter.inflight,
            **fields,
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # http.server internals (log_error etc.) land here; keep them
        # structured too instead of the default stderr one-liners.
        get_logger("repro.serve.http").warning(
            "http", message=format % args, client=self.address_string(),
        )

    def _send_json(self, status: int, obj: dict) -> None:
        body = json.dumps(obj, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        rid = getattr(self, "_request_id", None)
        if rid:
            self.send_header("X-Request-Id", rid)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        rid = getattr(self, "_request_id", None)
        if rid:
            self.send_header("X-Request-Id", rid)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            return {}
        try:
            length = int(length)
        except ValueError:
            raise ServeError("bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise ServeError("request body too large", status=413)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        service = self.server.service
        rid = self._begin_request()
        path = urlsplit(self.path).path
        with correlation_scope(request_id=rid):
            try:
                if path == "/healthz":
                    self._send_json(200, service.health())
                elif path == "/metrics":
                    self._send_text(200, service.metrics_text())
                elif path == "/statusz":
                    self._send_text(
                        200, service.statusz_html(),
                        "text/html; charset=utf-8",
                    )
                elif path == "/debug/requests":
                    self._send_json(200, service.requests.to_dict())
                else:
                    self._send_json(
                        404,
                        {"error": f"no such path {self.path!r}",
                         "request_id": rid},
                    )
            except BrokenPipeError:  # client went away; nothing to answer
                pass
            except Exception as exc:  # pragma: no cover - defensive
                log.exception("GET %s failed", self.path)
                self._send_json(
                    500,
                    {"error": f"internal error: {exc}", "request_id": rid},
                )

    def do_POST(self) -> None:  # noqa: N802
        service = self.server.service
        endpoint = urlsplit(self.path).path.lstrip("/")
        rid = self._begin_request()
        self._access["endpoint"] = endpoint
        with correlation_scope(request_id=rid):
            try:
                admission = service.limiter.admit()
                if not admission.admitted:
                    self._access["reason"] = admission.reason
                    service.observe_rejection(endpoint)
                    self._send_json(
                        admission.status,
                        {"error": admission.reason, "retry": True,
                         "request_id": rid},
                    )
                    return
                with admission:
                    payload = self._read_body()
                    envelope = service.handle(endpoint, payload)
                cache = envelope.get("cache")
                if isinstance(cache, dict) and "hit" in cache:
                    self._access["cache_hit"] = bool(cache["hit"])
                self._send_json(200, envelope)
            except BrokenPipeError:
                pass
            except ServeError as exc:
                self._send_json(
                    exc.status, {"error": str(exc), "request_id": rid}
                )
            except ReproError as exc:
                self._send_json(400, {"error": str(exc), "request_id": rid})
            except Exception as exc:  # pragma: no cover - defensive
                log.exception("POST %s failed", self.path)
                self._send_json(
                    500,
                    {"error": f"internal error: {exc}", "request_id": rid},
                )


class ExtractionServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ExtractionService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ExtractionService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def start_server(
    service: ExtractionService, host: str = "127.0.0.1", port: int = 0
) -> ExtractionServer:
    """Start an :class:`ExtractionServer` on a background thread.

    Returns the listening server; callers stop it with
    ``server.shutdown(); server.server_close()``.
    """
    server = ExtractionServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server


def run_server(
    service: ExtractionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_timeout: float = DRAIN_TIMEOUT,
    install_signals: bool = True,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.  Blocking.

    On signal: admission flips to 503, in-flight requests get up to
    *drain_timeout* seconds to finish, then the listener shuts down
    (``shutdown()`` must run off the ``serve_forever`` thread --
    a ``ThreadingHTTPServer`` constraint).  Returns a process exit code.
    """
    server = ExtractionServer((host, port), service)

    def _drain_and_stop() -> None:
        drained = service.limiter.wait_idle(timeout=drain_timeout)
        if not drained:
            log.warning(
                "drain timed out after %.1fs with %d request(s) in flight",
                drain_timeout, service.limiter.inflight,
            )
        server.shutdown()

    def _on_signal(signum: int, frame: Optional[object]) -> None:
        log.info("signal %d: draining", signum)
        service.limiter.start_draining()
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    log.info(
        "serving kit %s (%d tables) on %s",
        service.kit_sha[:12], len(service.library), server.url,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    return 0
