"""Extraction-as-a-service: a resident daemon over a characterization kit.

The paper's pitch is that table lookup makes RLC extraction cheap enough
to run inside a layout loop.  This package completes the argument
operationally: ``repro serve`` loads a characterization-library kit
*once* and answers extraction requests over HTTP for as long as the
process lives, so a router or optimizer pays the kit load exactly once
per session instead of once per invocation.

Layering (policy lives low, transport stays thin):

* :mod:`repro.serve.cache` -- content-addressed LRU of responses, keyed
  by sha256(kit manifest sha + endpoint + canonical request JSON);
* :mod:`repro.serve.batching` -- single-flight coalescing of identical
  concurrent requests plus a bounded compute gate for memo locality;
* :mod:`repro.serve.limits` -- admission control (429 overload, 503
  drain) and the graceful-shutdown idle wait;
* :mod:`repro.serve.service` -- the endpoint handlers (``extract``,
  ``lookup``, ``skew``) plus ``/healthz`` and ``/metrics`` payloads;
* :mod:`repro.serve.server` -- stdlib ``ThreadingHTTPServer`` transport;
* :mod:`repro.serve.loadgen` -- the closed-loop load driver behind
  ``repro bench serve``.

Everything is stdlib + the existing repro stack; there is no web
framework to install.
"""

from repro.serve.batching import RequestCoalescer
from repro.serve.cache import ResultCache, result_key
from repro.serve.limits import Admission, ConcurrencyLimiter
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import ExtractionServer, run_server, start_server
from repro.serve.service import ExtractionService

__all__ = [
    "Admission",
    "ConcurrencyLimiter",
    "ExtractionServer",
    "ExtractionService",
    "LoadReport",
    "RequestCoalescer",
    "ResultCache",
    "result_key",
    "run_load",
    "run_server",
    "start_server",
]
