"""The extraction service: kit loaded once, requests answered forever.

:class:`ExtractionService` is the daemon's brain, deliberately separate
from HTTP plumbing (:mod:`repro.serve.server`) so tests and the load
driver can call :meth:`handle` in-process.  At construction it opens a
characterization-library kit (:class:`~repro.library.store.
TableLibrary`), fingerprints its manifest (sha256 of the manifest
bytes -- the kit identity every cache key embeds), and wires up the
result cache, the request coalescer and the admission limiter.

Three JSON endpoints mirror the paper's flow:

* ``extract`` -- geometry + frequency -> per-segment RLC and a full
  cascaded netlist (optionally rendered as a SPICE deck and linted via
  :mod:`repro.circuit.lint`);
* ``lookup`` -- one raw table lookup with the PR-4 coverage
  classification (interior / edge / extrapolated, per axis);
* ``skew`` -- an H-tree configuration -> RC-vs-RLC skew summary.

Every request runs under a ``serve.<endpoint>`` tracer span, ticks
``serve_request`` (+ per-endpoint tag) and feeds the
``serve_latency_seconds`` histogram, so ``repro report`` renders server
runs exactly like builds.  Responses to the compute endpoints are
content-addressed in the :class:`~repro.serve.cache.ResultCache`; a
repeated identical request against the same kit performs **zero**
solver work -- not even a spline evaluation.

Geometry units on the wire are the CLI's human units (um, GHz, ps);
returned electrical values are SI.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.clocktree.htree import HTree
from repro.constants import GHz, ps, um
from repro.core.frequency import significant_frequency
from repro.errors import ReproError, ServeError, TableError
from repro.library.store import TableLibrary, _sha256_text, open_library
from repro.serve.batching import RequestCoalescer
from repro.serve.cache import ResultCache, result_key
from repro.serve.limits import ConcurrencyLimiter
from repro.serve.requestlog import RequestRecord, RequestRing
from repro.telemetry import prometheus_text
from repro.telemetry.logs import correlation_ids, get_logger
from repro.telemetry.registry import (
    SERVE_LATENCY,
    SERVE_REQUEST,
    get_registry,
)
from repro.telemetry.slo import SLOMonitor
from repro.telemetry.spans import span
from repro.version import get_version

__all__ = ["ExtractionService", "DEFAULT_BUFFER"]

#: The strong-driver regime every experiment calibrates against
#: (15 ohm, 50 ps edges -> significant frequency 6.4 GHz).
DEFAULT_BUFFER = ClockBuffer(
    drive_resistance=15.0, input_capacitance=30e-15,
    supply=1.8, rise_time=50e-12,
)

_CONFIG_FIELDS_UM = (
    "signal_width", "ground_width", "spacing", "thickness", "height_below",
)


def _require_dict(payload: Any) -> dict:
    if payload is None:
        return {}
    if not isinstance(payload, dict):
        raise ServeError("request body must be a JSON object")
    return payload


def _number(payload: dict, key: str, default: Optional[float] = None,
            required: bool = False) -> Optional[float]:
    """A finite float field of *payload* (or *default*)."""
    value = payload.get(key, None)
    if value is None:
        if required:
            raise ServeError(f"missing required field {key!r}")
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(f"field {key!r} must be a number")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ServeError(f"field {key!r} must be finite")
    return value


def _integer(payload: dict, key: str, default: int,
             minimum: int = 1, maximum: int = 64) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(f"field {key!r} must be an integer")
    if not minimum <= value <= maximum:
        raise ServeError(
            f"field {key!r} must be in [{minimum}, {maximum}]"
        )
    return value


def _boolean(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ServeError(f"field {key!r} must be a boolean")
    return value


class _Endpoint:
    """One registered endpoint: handler plus cacheability."""

    __slots__ = ("fn", "cacheable")

    def __init__(self, fn: Callable[[dict], dict], cacheable: bool):
        self.fn = fn
        self.cacheable = cacheable


class ExtractionService:
    """A loaded kit plus the request machinery around it.

    Parameters
    ----------
    library:
        Characterization-library root (or an open
        :class:`~repro.library.store.TableLibrary`).  Loaded once; the
        manifest sha becomes part of every result-cache key.
    config:
        Default wire configuration for requests that don't carry one
        (the CLI's standard CPW geometry when omitted).
    frequency:
        Default extraction frequency [Hz] (defaults to the significant
        frequency of the default buffer's 50 ps edge: 6.4 GHz).
    cache_size / compute_width / max_inflight:
        Result-cache bound, coalescer gate width and admission ceiling.
    disk_memo:
        Optional path to a persistent Lp memo shard
        (:class:`~repro.peec.diskmemo.DiskMemoShard`): warmed into the
        process-wide memo at startup so the daemon's first extraction
        after a restart reuses every Hoer-Love value previous builds or
        daemon runs computed.
    """

    def __init__(
        self,
        library: Union[str, TableLibrary],
        config: Optional[CoplanarWaveguideConfig] = None,
        frequency: Optional[float] = None,
        cache_size: int = ResultCache.DEFAULT_CAPACITY,
        compute_width: int = 1,
        max_inflight: int = 8,
        disk_memo: Optional[str] = None,
        slo: Optional[SLOMonitor] = None,
    ):
        self.library = open_library(library, create=False)
        self.disk_memo = disk_memo
        self.disk_memo_entries = 0
        if disk_memo is not None:
            from repro.peec.diskmemo import warm_lp_memo

            self.disk_memo_entries = warm_lp_memo(disk_memo)
        self.kit_sha = _sha256_text(self.library.manifest_path.read_text())
        self.config = config if config is not None else (
            CoplanarWaveguideConfig(
                signal_width=um(10), ground_width=um(5), spacing=um(1),
                thickness=um(2), height_below=um(2),
            )
        )
        if frequency is not None:
            self.frequency = frequency
        else:
            # Default to the kit's own characterized frequency so the
            # extractor's frequency-matched table queries hit; only an
            # empty kit falls back to the default buffer's significant
            # frequency.
            self.frequency = self._kit_frequency() or (
                significant_frequency(DEFAULT_BUFFER.rise_time)
            )
        self.cache = ResultCache(cache_size)
        self.coalescer = RequestCoalescer(compute_width)
        self.limiter = ConcurrencyLimiter(max_inflight)
        #: Rolling SLO monitor (injectable for fault-injection tests).
        self.slo = slo if slo is not None else SLOMonitor()
        #: Debug ring of recent + slowest requests (``/debug/requests``).
        self.requests = RequestRing()
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self._extractors: Dict[Tuple[object, float], ClocktreeRLCExtractor] = {}
        self._extractors_lock = threading.Lock()
        self._endpoints: Dict[str, _Endpoint] = {}
        self.register("extract", self._extract)
        self.register("lookup", self._lookup)
        self.register("skew", self._skew)
        get_logger("repro.serve").info(
            "service_ready",
            kit_sha=self.kit_sha[:12],
            tables=len(self.library),
            frequency_ghz=round(self.frequency / 1e9, 3),
            max_inflight=max_inflight,
            disk_memo_entries=self.disk_memo_entries,
        )

    def _kit_frequency(self) -> Optional[float]:
        """The characterization frequency of the kit's loop tables."""
        for entry in self.library.entries():
            if entry.quantity == "loop_inductance" and entry.frequency:
                return float(entry.frequency)
        return None

    # ------------------------------------------------------------------
    # registration & dispatch
    # ------------------------------------------------------------------
    def register(self, name: str, fn: Callable[[dict], dict],
                 cacheable: bool = True) -> None:
        """Register (or replace) a POST endpoint handler.

        The hook the bus/crosstalk endpoints of the related RC/RLC work
        will use; tests also register synthetic endpoints through it.
        """
        self._endpoints[name] = _Endpoint(fn, cacheable)

    @property
    def endpoints(self) -> List[str]:
        """Registered endpoint names, sorted."""
        return sorted(self._endpoints)

    def handle(self, endpoint: str, payload: Optional[dict]) -> dict:
        """Serve one request; the single entry point for all transports.

        Returns the response envelope ``{"endpoint", "cache", "result",
        "request_id"?}``.  Raises :class:`ServeError` (with an HTTP
        status) on bad input.  Every finished request -- success or
        failure -- feeds the SLO monitor once and leaves a record (with
        its span tree) in the ``/debug/requests`` ring.
        """
        entry = self._endpoints.get(endpoint)
        if entry is None:
            raise ServeError(f"unknown endpoint {endpoint!r}", status=404)
        payload = _require_dict(payload)
        registry = get_registry()
        registry.inc(SERVE_REQUEST)
        registry.inc(f"{SERVE_REQUEST}.{endpoint}")
        t0 = time.perf_counter()
        status = 200
        hit: Optional[bool] = None
        error: Optional[str] = None
        sp = None
        try:
            with span(f"serve.{endpoint}") as sp:
                if not entry.cacheable:
                    return self._envelope(endpoint, entry.fn(payload))
                try:
                    key = result_key(self.kit_sha, endpoint, payload)
                except TableError as exc:
                    raise ServeError(f"uncacheable request: {exc}") from None
                cached = self.cache.get(key)
                if cached is not None:
                    hit = True
                    return self._envelope(endpoint, cached, hit=True, key=key)

                def compute() -> dict:
                    result = entry.fn(payload)
                    self.cache.put(key, result)
                    return result

                result = self.coalescer.run(key, compute)
                hit = False
                return self._envelope(endpoint, result, hit=False, key=key)
        except ServeError as exc:
            status, error = exc.status, str(exc)
            raise
        except ReproError as exc:
            status, error = 400, str(exc)
            raise
        except Exception as exc:
            status, error = 500, f"{type(exc).__name__}: {exc}"
            raise
        finally:
            latency = time.perf_counter() - t0
            registry.observe(SERVE_LATENCY, latency)
            # One SLO observation per handled request: 5xx counts
            # against availability, 4xx is the caller's fault and only
            # counts against the latency SLI via its duration.
            self.slo.observe(endpoint, latency, ok=status < 500)
            self.requests.add(RequestRecord(
                request_id=correlation_ids().get("request_id", ""),
                endpoint=endpoint,
                status=status,
                latency=latency,
                cache_hit=hit,
                error=error,
                spans=sp.to_dict() if sp is not None else None,
            ))

    def observe_rejection(self, endpoint: str) -> None:
        """Count an admission rejection (429/503) against the SLO.

        Rejected requests never reach :meth:`handle`, so the transport
        feeds them here -- each request hits the monitor exactly once.
        """
        self.slo.observe(endpoint, 0.0, ok=False)

    @staticmethod
    def _envelope(endpoint: str, result: dict, hit: Optional[bool] = None,
                  key: Optional[str] = None) -> dict:
        envelope: Dict[str, Any] = {"endpoint": endpoint, "result": result}
        if key is not None:
            envelope["cache"] = {"hit": bool(hit), "key": key}
        request_id = correlation_ids().get("request_id")
        if request_id:
            envelope["request_id"] = request_id
        return envelope

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------
    def _config_from(self, payload: dict) -> CoplanarWaveguideConfig:
        raw = payload.get("config")
        if raw is None:
            return self.config
        raw = _require_dict(raw)
        unknown = set(raw) - {f + "_um" for f in _CONFIG_FIELDS_UM}
        if unknown:
            raise ServeError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = {}
        for name in _CONFIG_FIELDS_UM:
            value = _number(raw, name + "_um")
            kwargs[name] = um(value) if value is not None else getattr(
                self.config, name
            )
        try:
            return CoplanarWaveguideConfig(**kwargs)
        except ReproError as exc:
            raise ServeError(f"invalid config: {exc}") from None

    def _buffer_from(self, payload: dict) -> ClockBuffer:
        raw = _require_dict(payload.get("buffer"))
        try:
            return ClockBuffer(
                drive_resistance=_number(
                    raw, "drive_resistance_ohm",
                    DEFAULT_BUFFER.drive_resistance),
                input_capacitance=_number(
                    raw, "input_capacitance_ff",
                    DEFAULT_BUFFER.input_capacitance * 1e15) * 1e-15,
                supply=_number(raw, "supply_v", DEFAULT_BUFFER.supply),
                rise_time=ps(_number(
                    raw, "rise_time_ps", DEFAULT_BUFFER.rise_time * 1e12)),
            )
        except ReproError as exc:
            raise ServeError(f"invalid buffer: {exc}") from None

    def _frequency_from(self, payload: dict) -> float:
        value = _number(payload, "frequency_ghz")
        if value is None:
            return self.frequency
        if value <= 0.0:
            raise ServeError("frequency_ghz must be positive")
        return GHz(value)

    def _extractor_for(
        self, config: CoplanarWaveguideConfig, frequency: float
    ) -> ClocktreeRLCExtractor:
        """A (memoized) library-backed extractor for one family."""
        key = (config, frequency)
        with self._extractors_lock:
            extractor = self._extractors.get(key)
        if extractor is None:
            extractor = ClocktreeRLCExtractor(
                config, frequency=frequency, library=self.library,
            )
            with self._extractors_lock:
                extractor = self._extractors.setdefault(key, extractor)
        return extractor

    # ------------------------------------------------------------------
    # endpoint: extract
    # ------------------------------------------------------------------
    def _extract(self, payload: dict) -> dict:
        config = self._config_from(payload)
        buffer = self._buffer_from(payload)
        frequency = self._frequency_from(payload)
        root_length = _number(payload, "root_length_um", required=True)
        if root_length <= 0.0:
            raise ServeError("root_length_um must be positive")
        levels = _integer(payload, "levels", 1, minimum=1, maximum=8)
        sections = _integer(payload, "sections", 4, minimum=1, maximum=64)
        include_l = _boolean(payload, "include_inductance", True)
        lint = _boolean(payload, "lint", True)
        fmt = payload.get("format", "summary")
        if fmt not in ("summary", "spice"):
            raise ServeError('format must be "summary" or "spice"')
        sink_cap_ff = _number(payload, "sink_capacitance_ff", 50.0)
        if sink_cap_ff < 0.0:
            raise ServeError("sink_capacitance_ff must be >= 0")

        try:
            htree = HTree.generate(
                levels=levels, root_length=um(root_length), config=config,
                buffer=buffer, sink_capacitance=sink_cap_ff * 1e-15,
            )
            extractor = self._extractor_for(config, frequency)
            segments = [
                (segment, extractor.segment_rlc_for(segment))
                for segment in htree.segments
            ]
            netlist = extractor.build_netlist(
                htree, include_inductance=include_l, sections=sections,
                lint=lint,
            )
        except ServeError:
            raise
        except ReproError as exc:
            raise ServeError(f"extraction failed: {exc}") from None

        result: Dict[str, Any] = {
            "frequency_ghz": frequency / 1e9,
            "levels": levels,
            "num_segments": len(segments),
            "num_sinks": len(netlist.sink_nodes),
            "tables": {
                "inductance": extractor.inductance_table is not None,
                "resistance": extractor.resistance_table is not None,
                "capacitance": extractor.capacitance_table is not None,
            },
            "segments": [
                {
                    "name": segment.name,
                    "length_um": segment.length * 1e6,
                    "resistance_ohm": rlc.resistance,
                    "inductance_h": rlc.inductance,
                    "capacitance_f": rlc.capacitance,
                }
                for segment, rlc in segments
            ],
            "netlist": {
                "elements": len(netlist.circuit.elements),
                "includes_inductance": netlist.includes_inductance,
                "sink_nodes": dict(sorted(netlist.sink_nodes.items())),
            },
        }
        if lint and netlist.health is not None:
            result["health"] = netlist.health.to_dict()
        if fmt == "spice":
            from repro.circuit.spice_export import to_spice

            result["spice"] = to_spice(
                netlist.circuit,
                title=f"repro serve extract ({'rlc' if include_l else 'rc'})",
                analyses=("tran 0.5p 3n",),
                probes=sorted(netlist.sink_nodes.values()),
            )
        return result

    # ------------------------------------------------------------------
    # endpoint: lookup
    # ------------------------------------------------------------------
    def _lookup(self, payload: dict) -> dict:
        quantity = payload.get("quantity", "loop_inductance")
        if not isinstance(quantity, str):
            raise ServeError("quantity must be a string")
        criteria: Dict[str, Any] = {"quantity": quantity}
        layer = payload.get("layer")
        if layer is not None:
            if not isinstance(layer, str):
                raise ServeError("layer must be a string")
            criteria["layer"] = layer
        frequency = _number(payload, "frequency_ghz")
        if frequency is not None:
            criteria["frequency"] = GHz(frequency)
        table = self.library.get_one(**criteria)
        if table is None:
            raise ServeError(
                f"kit has no table matching {criteria}", status=404
            )
        point_raw = _require_dict(payload.get("point"))
        if not point_raw:
            raise ServeError('missing required field "point"')
        coords: Dict[str, float] = {}
        for axis in table.axis_names:
            value = _number(point_raw, f"{axis}_um")
            if value is None:
                raise ServeError(
                    f'point is missing axis "{axis}_um" '
                    f"(table axes: {', '.join(table.axis_names)})"
                )
            coords[axis] = um(value)
        extras = set(point_raw) - {f"{a}_um" for a in table.axis_names}
        if extras:
            raise ServeError(
                f"point has unknown axis field(s): {', '.join(sorted(extras))}"
            )

        from repro.quality.coverage import classify_point
        from repro.tables.lookup import timed_lookup

        ordered = [coords[a] for a in table.axis_names]
        overall, per_axis = classify_point(table.axes, ordered)
        value = timed_lookup(table, **coords)
        return {
            "table": table.name,
            "quantity": table.quantity,
            "value": value,
            "coverage": {
                "overall": overall,
                "in_range": table.in_range(**coords),
                "axes": {
                    name: kind
                    for name, kind in zip(table.axis_names, per_axis)
                },
            },
            "domain": {
                name: {
                    "min_um": float(axis[0]) * 1e6,
                    "max_um": float(axis[-1]) * 1e6,
                    "points": int(len(axis)),
                }
                for name, axis in zip(table.axis_names, table.axes)
            },
        }

    # ------------------------------------------------------------------
    # endpoint: skew
    # ------------------------------------------------------------------
    def _skew(self, payload: dict) -> dict:
        from repro.experiments.htree_skew import run_htree_skew

        config = self._config_from(payload)
        buffer = self._buffer_from(payload)
        levels = _integer(payload, "levels", 2, minimum=1, maximum=6)
        root_length = _number(payload, "root_length_um", 4000.0)
        if root_length <= 0.0:
            raise ServeError("root_length_um must be positive")
        asymmetry = _number(payload, "asymmetry", 1.5)
        if asymmetry <= 0.0:
            raise ServeError("asymmetry must be positive")
        t_stop = ps(_number(payload, "t_stop_ps", 3000.0))
        dt = ps(_number(payload, "dt_ps", 0.5))
        if dt <= 0.0 or t_stop <= dt:
            raise ServeError("need t_stop_ps > dt_ps > 0")
        stretched = "s_" + "L" * levels
        try:
            htree = HTree.generate(
                levels=levels, root_length=um(root_length), config=config,
                buffer=buffer, sink_capacitance=50e-15,
                branch_scale={stretched: asymmetry},
            )
            extractor = self._extractor_for(
                config, self._frequency_from(payload)
            )
            outcome = run_htree_skew(
                htree=htree, extractor=extractor, t_stop=t_stop, dt=dt,
            )
        except ServeError:
            raise
        except ReproError as exc:
            raise ServeError(f"skew analysis failed: {exc}") from None
        comparison = outcome.comparison
        return {
            "levels": levels,
            "num_sinks": htree.num_sinks,
            "asymmetry": asymmetry,
            "rc_skew_ps": outcome.rc_skew * 1e12,
            "rlc_skew_ps": outcome.rlc_skew * 1e12,
            "skew_discrepancy_percent": outcome.skew_discrepancy_percent,
            "delay_discrepancy_percent": outcome.delay_discrepancy_percent,
            "delays_ps": {
                "rc": {s: d * 1e12
                       for s, d in sorted(comparison.rc.delays.items())},
                "rlc": {s: d * 1e12
                        for s, d in sorted(comparison.rlc.delays.items())},
            },
        }

    # ------------------------------------------------------------------
    # health & metrics
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` payload: identity, uptime, load, cache."""
        return {
            "status": "draining" if self.limiter.draining else "ok",
            "version": get_version(),
            "kit": {
                "root": str(self.library.root),
                "manifest_sha": self.kit_sha,
                "tables": len(self.library),
            },
            "frequency_ghz": self.frequency / 1e9,
            "uptime_seconds": time.monotonic() - self._started_mono,
            "started_at": self.started_at,
            "inflight": self.limiter.inflight,
            "max_inflight": self.limiter.max_inflight,
            "rejected": self.limiter.rejected,
            "cache": self.cache.stats(),
            "coalesced": self.coalescer.coalesced,
            "disk_memo": {
                "path": self.disk_memo,
                "warmed_entries": self.disk_memo_entries,
            },
            "endpoints": self.endpoints,
            "slo": self.slo.summary(),
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` payload: the live registry as Prometheus text."""
        # Refresh the slo_* gauges first so scrapes see current burn rates.
        self.slo.export_gauges()
        return prometheus_text(get_registry().snapshot())

    # ------------------------------------------------------------------
    # statusz
    # ------------------------------------------------------------------
    def statusz_data(self) -> dict:
        """Everything the ``/statusz`` page renders, as one dict."""
        from repro.telemetry.logs import recent_logs

        return {
            "health": self.health(),
            "requests": self.requests.to_dict(include_spans=False),
            "recent_errors": recent_logs(limit=10, min_level="warning"),
        }

    def statusz_html(self) -> str:
        """A human-readable single-page status report (``GET /statusz``)."""
        import html as _html

        data = self.statusz_data()
        health = data["health"]
        slo = health.get("slo", {})
        status = health.get("status", "?")
        slo_status = slo.get("status", "ok")
        badge = {"ok": "#2e7d32", "warn": "#f9a825", "page": "#c62828"}.get(
            slo_status, "#555"
        )

        def esc(value: object) -> str:
            return _html.escape(str(value))

        lines: List[str] = [
            "<!doctype html><html><head><meta charset='utf-8'>",
            "<title>repro serve statusz</title>",
            "<style>body{font-family:monospace;margin:2em;}"
            "table{border-collapse:collapse;margin:0.5em 0;}"
            "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left;}"
            "h2{margin-top:1.2em;}</style></head><body>",
            f"<h1>repro serve &mdash; {esc(status)} "
            f"<span style='color:{badge}'>[slo: {esc(slo_status)}]</span></h1>",
            "<h2>identity</h2><table>",
            f"<tr><th>version</th><td>{esc(health.get('version'))}</td></tr>",
            f"<tr><th>kit sha</th>"
            f"<td>{esc(health['kit']['manifest_sha'][:16])}</td></tr>",
            f"<tr><th>tables</th><td>{esc(health['kit']['tables'])}</td></tr>",
            f"<tr><th>uptime</th>"
            f"<td>{health['uptime_seconds']:.1f} s</td></tr>",
            f"<tr><th>inflight</th><td>{esc(health['inflight'])} / "
            f"{esc(health['max_inflight'])}</td></tr>",
            f"<tr><th>rejected</th><td>{esc(health['rejected'])}</td></tr>",
            "</table>",
        ]

        cache = health.get("cache", {})
        lines.append("<h2>cache</h2><table>")
        for key in sorted(cache):
            lines.append(
                f"<tr><th>{esc(key)}</th><td>{esc(cache[key])}</td></tr>"
            )
        lines.append("</table>")

        lines.append("<h2>slo</h2><table>"
                     "<tr><th>endpoint</th><th>sli</th><th>status</th>"
                     "<th>burn</th><th>windows (bad/total)</th></tr>")
        for endpoint in sorted(slo.get("endpoints", {})):
            slis = slo["endpoints"][endpoint].get("slis", {})
            for sli in sorted(slis):
                info = slis[sli]
                windows = " ".join(
                    f"{w['bad']}/{w['total']}@{w['window_seconds']}s"
                    for w in info.get("windows", [])
                )
                lines.append(
                    f"<tr><td>{esc(endpoint)}</td><td>{esc(sli)}</td>"
                    f"<td>{esc(info.get('status'))}</td>"
                    f"<td>{esc(info.get('burn_rate'))}</td>"
                    f"<td>{esc(windows)}</td></tr>"
                )
        lines.append("</table>")

        lines.append("<h2>slowest requests</h2><table>"
                     "<tr><th>request id</th><th>endpoint</th>"
                     "<th>status</th><th>latency</th><th>cache</th></tr>")
        for record in data["requests"]["slowest"]:
            lines.append(
                f"<tr><td>{esc(record.get('request_id'))}</td>"
                f"<td>{esc(record.get('endpoint'))}</td>"
                f"<td>{esc(record.get('status'))}</td>"
                f"<td>{record.get('latency_ms')} ms</td>"
                f"<td>{esc(record.get('cache_hit', '-'))}</td></tr>"
            )
        lines.append("</table>")

        lines.append("<h2>recent warnings/errors</h2><pre>")
        for record in data["recent_errors"]:
            lines.append(esc(_json_line(record)))
        lines.append("</pre></body></html>")
        return "\n".join(lines)

    def slo_summary(self) -> dict:
        """The SLO summary (for reports and shutdown logging)."""
        return self.slo.summary()


def _json_line(record: dict) -> str:
    import json

    return json.dumps(record, sort_keys=True, default=str)
