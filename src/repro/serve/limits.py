"""Admission control: bounded inflight requests and graceful drain.

A resident extraction daemon must degrade predictably under overload:
beyond a configured number of in-flight requests it answers **429**
immediately instead of queueing unboundedly (every parked thread holds
a socket and a stack), and during shutdown it answers **503** while the
already-admitted requests finish -- the SIGTERM drain.

:class:`ConcurrencyLimiter` implements both with one lock: a counting
admit/release pair with a hard ceiling, a ``draining`` flag flipped by
the server's signal handler, and a condition variable
:meth:`wait_idle` blocks on so the drain can wait for inflight == 0.
Rejections tick ``serve_rejected`` (tagged per reason); the live
inflight count is exported as the ``serve_inflight`` gauge.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ServeError
from repro.telemetry.logs import get_logger
from repro.telemetry.registry import SERVE_REJECTED, get_registry

__all__ = ["Admission", "ConcurrencyLimiter"]

#: Gauge exporting the live in-flight request count.
INFLIGHT_GAUGE = "serve_inflight"


class Admission:
    """Outcome of one admission attempt (context manager on success)."""

    __slots__ = ("limiter", "admitted", "status", "reason")

    def __init__(self, limiter: "ConcurrencyLimiter", admitted: bool,
                 status: int, reason: str):
        self.limiter = limiter
        self.admitted = admitted
        #: HTTP status to answer with when rejected (429 or 503).
        self.status = status
        self.reason = reason

    def __enter__(self) -> "Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.admitted:
            self.limiter.release()


class ConcurrencyLimiter:
    """Hard in-flight ceiling with overload rejection and drain state."""

    def __init__(self, max_inflight: int = 8):
        if max_inflight < 1:
            raise ServeError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = False
        self.rejected = 0

    @property
    def inflight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        """True once shutdown started; new requests get 503."""
        with self._lock:
            return self._draining

    def admit(self) -> Admission:
        """Try to admit one request; never blocks.

        Returns an :class:`Admission` usable as a context manager when
        ``admitted``; otherwise its ``status`` is 503 while draining and
        429 when the in-flight ceiling is hit.
        """
        with self._lock:
            if self._draining:
                status, reason = 503, "draining"
            elif self._inflight >= self.max_inflight:
                status, reason = 429, "overloaded"
            else:
                self._inflight += 1
                inflight = self._inflight
                registry = get_registry()
                registry.set_gauge(INFLIGHT_GAUGE, float(inflight))
                return Admission(self, True, 200, "admitted")
            self.rejected += 1
            rejected = self.rejected
        registry = get_registry()
        registry.inc(SERVE_REJECTED)
        registry.inc(f"{SERVE_REJECTED}.{reason}")
        get_logger("repro.serve.limits").warning(
            "admission_rejected",
            reason=reason,
            status=status,
            max_inflight=self.max_inflight,
            rejected_total=rejected,
        )
        return Admission(self, False, status, reason)

    def release(self) -> None:
        """Mark one admitted request finished."""
        with self._lock:
            if self._inflight <= 0:
                raise ServeError("release() without a matching admit()")
            self._inflight -= 1
            inflight = self._inflight
            if inflight == 0:
                self._idle.notify_all()
        get_registry().set_gauge(INFLIGHT_GAUGE, float(inflight))

    def start_draining(self) -> None:
        """Reject new requests with 503 from now on."""
        with self._lock:
            self._draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request released (or *timeout*)."""
        with self._lock:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )
