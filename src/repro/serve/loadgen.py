"""Closed-loop load driver for the extraction daemon.

``repro bench serve`` needs reproducible latency/throughput numbers for
a live daemon, and the CI smoke job needs the same measurement without
inventing a second client.  :func:`run_load` is that one client: *N*
worker threads each issue *M* synchronous POSTs against one endpoint
(closed-loop -- a worker sends its next request only after the previous
response lands, so measured latency is honest service time, not queue
fantasy), timing every request with ``perf_counter``.

The :class:`LoadReport` summarizes the run the same way the kernel
benchmarks do -- p50/p95/p99 latency, requests/second, per-status and
cache-hit counts -- and serializes via :meth:`LoadReport.to_dict` into
the flat metric namespace ``quality/regress.py`` gates (``seconds`` =>
lower is better, ``per_second`` => higher is better).

Only stdlib (``urllib.request``) is used, so the driver runs anywhere
the daemon does.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServeError

__all__ = ["LoadReport", "percentile", "run_load"]


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated *q*-quantile (q in [0, 1]) of sorted data."""
    if not sorted_values:
        raise ServeError("percentile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise ServeError("quantile must be in [0, 1]")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


@dataclass
class LoadReport:
    """Outcome of one load run (thread-merged, ready to serialize)."""

    endpoint: str
    threads: int
    requests: int
    errors: int
    cache_hits: int
    duration_seconds: float
    latencies_seconds: List[float] = field(repr=False, default_factory=list)
    status_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.requests / self.duration_seconds

    def latency(self, q: float) -> float:
        return percentile(sorted(self.latencies_seconds), q)

    def to_dict(self) -> dict:
        """Flat, regression-gateable summary (no raw samples)."""
        ordered = sorted(self.latencies_seconds)
        return {
            "endpoint": self.endpoint,
            "threads": self.threads,
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.requests if self.requests else 0.0
            ),
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_p50_seconds": percentile(ordered, 0.50),
            "latency_p95_seconds": percentile(ordered, 0.95),
            "latency_p99_seconds": percentile(ordered, 0.99),
            "latency_max_seconds": ordered[-1],
            "status_counts": {
                str(code): n for code, n in sorted(self.status_counts.items())
            },
        }

    def summary(self) -> str:
        """One-line human verdict for the CLI."""
        return (
            f"{self.endpoint}: {self.requests} requests, "
            f"{self.threads} threads, {self.errors} errors, "
            f"{self.requests_per_second:.1f} req/s, "
            f"p50 {self.latency(0.50) * 1e3:.2f} ms, "
            f"p95 {self.latency(0.95) * 1e3:.2f} ms, "
            f"p99 {self.latency(0.99) * 1e3:.2f} ms, "
            f"{self.cache_hits} cache hits"
        )


def _post_json(url: str, payload: dict, timeout: float):
    """POST *payload*; return (status, parsed-body-or-None)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read().decode("utf-8"))
        except Exception:
            body = None
        return exc.code, body


def run_load(
    base_url: str,
    endpoint: str,
    payload: dict,
    threads: int = 4,
    requests_per_thread: int = 25,
    timeout: float = 30.0,
    payload_for: Optional[object] = None,
) -> LoadReport:
    """Hammer ``POST {base_url}/{endpoint}`` and measure.

    *payload_for*, when given, is a callable ``(thread, i) -> dict``
    producing per-request payloads (for cold-cache sweeps); otherwise
    every request sends *payload* -- the cache-hit steady state.
    """
    if threads < 1 or requests_per_thread < 1:
        raise ServeError("threads and requests_per_thread must be >= 1")
    url = base_url.rstrip("/") + "/" + endpoint.lstrip("/")
    latencies: List[List[float]] = [[] for _ in range(threads)]
    statuses: List[Dict[int, int]] = [{} for _ in range(threads)]
    hits = [0] * threads
    errors = [0] * threads
    start_gate = threading.Event()

    def worker(slot: int) -> None:
        start_gate.wait()
        for i in range(requests_per_thread):
            body = (
                payload_for(slot, i) if payload_for is not None else payload
            )
            t0 = time.perf_counter()
            try:
                status, parsed = _post_json(url, body, timeout)
            except Exception:
                errors[slot] += 1
                continue
            latencies[slot].append(time.perf_counter() - t0)
            statuses[slot][status] = statuses[slot].get(status, 0) + 1
            if status != 200:
                errors[slot] += 1
            elif isinstance(parsed, dict):
                if parsed.get("cache", {}).get("hit"):
                    hits[slot] += 1

    pool = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(threads)
    ]
    for thread in pool:
        thread.start()
    wall_start = time.perf_counter()
    start_gate.set()
    for thread in pool:
        thread.join()
    duration = time.perf_counter() - wall_start

    merged_status: Dict[int, int] = {}
    for per_thread in statuses:
        for code, n in per_thread.items():
            merged_status[code] = merged_status.get(code, 0) + n
    all_latencies = [x for per_thread in latencies for x in per_thread]
    return LoadReport(
        endpoint=endpoint.lstrip("/"),
        threads=threads,
        requests=threads * requests_per_thread,
        errors=sum(errors),
        cache_hits=sum(hits),
        duration_seconds=duration,
        latencies_seconds=all_latencies,
        status_counts=merged_status,
    )
