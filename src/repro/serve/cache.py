"""Content-addressed result cache for the extraction service.

The paper's economics -- characterize once, answer every extraction by
lookup -- repeat one level up in a long-lived daemon: identical requests
against the same characterization kit must not recompute anything, not
even the spline lookups.  :class:`ResultCache` is the daemon-level half
of that argument, reusing the exact keying discipline the library store
proved: the cache key is the sha256 of a canonical JSON description of
everything that determines the answer --

* the **kit manifest sha** (a rebuilt or different library can never
  serve stale results),
* the **endpoint** name,
* the **canonical request payload** (sorted keys, stable float text via
  :func:`repro.library.store.canonical_json`, so key order and float
  formatting in the client's JSON never split the cache).

Entries are bounded LRU; hits and misses tick the ``serve_cache_hit`` /
``serve_cache_miss`` counters and the entry count is exported as the
``serve_cache_entries`` gauge, so ``/metrics`` shows the cache doing its
job.  The cache is thread-safe (one lock) -- the server handles each
request on its own thread.

Cached values are the handler-built response dicts; callers treat them
as frozen (the server serializes them straight to JSON).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ServeError
from repro.library.store import canonical_json
from repro.telemetry.registry import (
    SERVE_CACHE_HIT,
    SERVE_CACHE_MISS,
    get_registry,
)

__all__ = ["ResultCache", "result_key"]

#: Gauge exporting the live entry count.
CACHE_ENTRIES_GAUGE = "serve_cache_entries"


def result_key(kit_sha: str, endpoint: str, payload: dict) -> str:
    """The sha256 content key of one (kit, endpoint, request) triple."""
    text = canonical_json(
        {"kit": kit_sha, "endpoint": endpoint, "request": payload}
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded, thread-safe LRU of request key -> response dict."""

    DEFAULT_CAPACITY = 1024

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ServeError("result cache capacity must be >= 1")
        self._capacity = int(capacity)
        self._data: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def capacity(self) -> int:
        """Maximum number of cached responses."""
        return self._capacity

    @property
    def hit_rate(self) -> float:
        """Fraction of gets that hit (0.0 before any get)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: str) -> Optional[dict]:
        """The cached response for *key*, refreshed in LRU order.

        Ticks ``serve_cache_hit`` / ``serve_cache_miss``.
        """
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        get_registry().inc(SERVE_CACHE_HIT if value is not None
                           else SERVE_CACHE_MISS)
        return value

    def put(self, key: str, value: dict) -> None:
        """Store *value* under *key*, evicting LRU beyond capacity."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            entries = len(self._data)
        get_registry().set_gauge(CACHE_ENTRIES_GAUGE, float(entries))

    def clear(self) -> None:
        """Drop every cached response (statistics are kept)."""
        with self._lock:
            self._data.clear()
        get_registry().set_gauge(CACHE_ENTRIES_GAUGE, 0.0)

    def stats(self) -> Dict[str, float]:
        """Serializable cache statistics for ``/healthz``."""
        with self._lock:
            entries = len(self._data)
        return {
            "entries": entries,
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
