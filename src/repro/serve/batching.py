"""Request coalescing: one computation per key, warm memo locality.

Two mechanisms turn a burst of concurrent requests into nearly the cost
of one:

* **Single-flight** -- concurrent requests with the *same* cache key
  share one computation: the first thread in becomes the leader and
  computes; followers park on an event and receive the leader's result
  (or its exception) without touching the solvers or the cache.  Each
  follower ticks ``serve_coalesced``.
* **A compute gate** -- a semaphore bounding how many *distinct*
  cache-missing computations run at once (default 1).  Cold requests
  with different keys but shared geometry then execute back-to-back on
  a warm :class:`~repro.peec.kernel.LpMemoCache` instead of racing each
  other with cold per-thread working sets -- the same memo-locality
  argument behind the build runner's contiguous grid-point chunks.
  Admission control (:mod:`repro.serve.limits`) bounds queueing above
  this gate, so the gate trades latency for throughput only within the
  admitted window.

The coalescer deliberately does **not** cache: the leader's compute
callable is expected to publish to the :class:`~repro.serve.cache.
ResultCache` itself, so followers that arrive *after* the leader
finished hit the cache, not the coalescer.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import ServeError
from repro.telemetry.registry import SERVE_COALESCED, get_registry

__all__ = ["RequestCoalescer"]


class _Inflight:
    """One in-progress computation other threads can wait on."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class RequestCoalescer:
    """Single-flight deduplication plus a bounded compute gate."""

    def __init__(self, compute_width: int = 1):
        if compute_width < 1:
            raise ServeError("compute_width must be >= 1")
        self.compute_width = int(compute_width)
        self._gate = threading.BoundedSemaphore(self.compute_width)
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Inflight] = {}
        self.leaders = 0
        self.coalesced = 0

    def run(self, key: str, compute: Callable[[], dict]) -> dict:
        """Compute (or wait for) the result identified by *key*.

        Exactly one concurrent caller per key executes *compute* (inside
        the compute gate); every other concurrent caller blocks until
        the leader finishes and then shares its result.  Exceptions
        propagate to the leader *and* every follower.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.followers += 1
                leader = False
            else:
                entry = self._inflight[key] = _Inflight()
                leader = True

        if not leader:
            entry.done.wait()
            with self._lock:
                self.coalesced += 1
            get_registry().inc(SERVE_COALESCED)
            if entry.error is not None:
                raise entry.error
            assert entry.value is not None
            return entry.value

        try:
            with self._gate:
                with self._lock:
                    self.leaders += 1
                entry.value = compute()
            return entry.value
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            entry.done.set()
