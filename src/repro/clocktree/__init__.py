"""Clocktree RLC extraction (the paper's application, Sec. V).

Parameterized H-tree generation (:mod:`repro.clocktree.htree`), the two
shielded interconnect configurations of Figs. 8/9
(:mod:`repro.clocktree.configs`), table-driven per-segment RLC extraction
and cascaded netlist formulation (:mod:`repro.clocktree.extractor`), and
clock-skew simulation with and without inductance
(:mod:`repro.clocktree.skew`).
"""

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import (
    CoplanarWaveguideConfig,
    MicrostripConfig,
    StriplineConfig,
)
from repro.clocktree.delay_models import (
    damping_factor,
    elmore_delay,
    rlc_delay,
    segment_delay,
)
from repro.clocktree.extractor import ClocktreeRLCExtractor, SegmentRLC
from repro.clocktree.htree import HTree, HTreeSegment
from repro.clocktree.multilayer import MultiLayerClocktreeExtractor
from repro.clocktree.optimize import OptimizationResult, WidthOptimizer
from repro.clocktree.repeaters import RepeaterPlan, optimal_repeaters
from repro.clocktree.skew import (
    SkewComparison,
    SkewResult,
    compare_rc_vs_rlc,
    simulate_clocktree,
)

__all__ = [
    "ClockBuffer",
    "CoplanarWaveguideConfig",
    "MicrostripConfig",
    "StriplineConfig",
    "ClocktreeRLCExtractor",
    "SegmentRLC",
    "HTree",
    "HTreeSegment",
    "SkewResult",
    "SkewComparison",
    "elmore_delay",
    "rlc_delay",
    "damping_factor",
    "segment_delay",
    "WidthOptimizer",
    "OptimizationResult",
    "MultiLayerClocktreeExtractor",
    "RepeaterPlan",
    "optimal_repeaters",
    "simulate_clocktree",
    "compare_rc_vs_rlc",
]
