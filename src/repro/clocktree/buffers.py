"""Clock buffer models.

The paper's observation that clocktree inductance matters rests on the
driver: clock buffers are large, so their source impedance (~40 ohm in
Fig. 1) is comparable to or below the line's characteristic impedance,
letting the inductive ringing through.  Buffers are modeled as linear
repeaters: an input capacitance, an ideal unity-gain sensing stage and a
resistive output driver -- adequate for skew-shape studies on linear RLC
netlists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError


@dataclass(frozen=True)
class ClockBuffer:
    """A linear clock repeater.

    Parameters
    ----------
    drive_resistance:
        Thevenin output resistance [ohm].  The paper's example uses
        about 40 ohm.
    input_capacitance:
        Gate load the buffer presents to the upstream stage [F].
    supply:
        Output swing [V].
    rise_time:
        Output transition time [s]; sets the significant frequency
        0.32 / t_r used for extraction.
    """

    drive_resistance: float = 40.0
    input_capacitance: float = 20e-15
    supply: float = 1.8
    rise_time: float = 100e-12

    def __post_init__(self) -> None:
        if self.drive_resistance <= 0.0:
            raise CircuitError("drive_resistance must be positive")
        if self.input_capacitance < 0.0:
            raise CircuitError("input_capacitance must be non-negative")
        if self.supply <= 0.0:
            raise CircuitError("supply must be positive")
        if self.rise_time <= 0.0:
            raise CircuitError("rise_time must be positive")

    @property
    def significant_frequency(self) -> float:
        """The paper's significant frequency 0.32 / t_rise [Hz]."""
        return 0.32 / self.rise_time
