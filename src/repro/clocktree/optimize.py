"""Clocktree wire-width optimization on top of the extraction tables.

The paper's abstract promises "clocktree RLC extraction and
optimization": because every (width, length) query is a cheap
spline lookup, exploring the wire-sizing space costs microseconds per
candidate instead of a field solve each.  :class:`WidthOptimizer`
sweeps the characterized width range, estimates the source-to-sink
delay of the longest path per candidate with the analytic RLC delay
model, and picks the width that minimizes delay (or meets a ringing
constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.clocktree.delay_models import damping_factor, rlc_delay
from repro.clocktree.htree import HTree
from repro.core.extraction import TableBasedExtractor
from repro.errors import GeometryError


@dataclass(frozen=True)
class WidthCandidate:
    """One evaluated wire width."""

    width: float
    path_delay: float
    worst_damping: float

    @property
    def rings(self) -> bool:
        """True when some stage of the path is underdamped."""
        return self.worst_damping < 1.0


@dataclass
class OptimizationResult:
    """Sweep results plus the selected width."""

    candidates: List[WidthCandidate]
    best: WidthCandidate

    def delay_of(self, width: float) -> float:
        """Path delay of the candidate closest to *width*."""
        closest = min(self.candidates, key=lambda c: abs(c.width - width))
        return closest.path_delay


class WidthOptimizer:
    """Pick a clock wire width from characterized tables.

    Parameters
    ----------
    extractor:
        A characterized :class:`~repro.core.extraction.TableBasedExtractor`
        whose width axis covers the candidate range.
    """

    def __init__(self, extractor: TableBasedExtractor):
        self.extractor = extractor

    def path_delay(self, htree: HTree, width: float) -> WidthCandidate:
        """Analytic source-to-sink delay of the longest H-tree path.

        Each level contributes the Ismail-Friedman delay of its segment
        driven by the level's buffer; the downstream fanout appears as
        the load capacitance (the next buffers' inputs, or the sinks).
        """
        buffer = htree.buffer
        longest = max(htree.leaves(), key=lambda s: sum(
            seg.length for seg in htree.path_to_root(s.name)
        ))
        path = list(reversed(htree.path_to_root(longest.name)))
        total = 0.0
        worst_zeta = float("inf")
        for segment in path:
            l_seg = self.extractor.loop_inductance(width, segment.length)
            r_seg = self.extractor.loop_resistance(width, segment.length)
            c_seg = self._segment_capacitance(width, segment.length)
            if htree.children(segment.name):
                load = buffer.input_capacitance
            else:
                load = htree.sink_capacitance
            total += rlc_delay(
                r_seg, l_seg, c_seg,
                drive_resistance=buffer.drive_resistance,
                load_capacitance=load,
            )
            worst_zeta = min(worst_zeta, damping_factor(
                r_seg, l_seg, c_seg,
                drive_resistance=buffer.drive_resistance,
                load_capacitance=load,
            ))
        return WidthCandidate(width=width, path_delay=total,
                              worst_damping=worst_zeta)

    def _segment_capacitance(self, width: float, length: float) -> float:
        if self.extractor.capacitance_table is not None:
            spacing = getattr(self.extractor.config, "spacing", None)
            if spacing is None:
                spacing = width
            return self.extractor.capacitance_per_length(width, spacing) * length
        from repro.rc.capacitance import block_capacitance_matrix

        block = self.extractor.config.trace_block(length, signal_width=width)
        matrix = block_capacitance_matrix(
            block, self.extractor.config.capacitance_model()
        )
        signal = [i for i, t in enumerate(block.traces) if not t.is_ground]
        return float(matrix[signal[0], signal[0]])

    def optimize(
        self,
        htree: HTree,
        widths: Optional[Sequence[float]] = None,
        require_damped: bool = False,
    ) -> OptimizationResult:
        """Sweep candidate widths and pick the delay-minimizing one.

        *widths* defaults to a dense grid over the characterized width
        axis.  With ``require_damped`` the search is restricted to
        candidates whose every stage has zeta >= 1 (no ringing).
        """
        if widths is None:
            axis = self.extractor.inductance_table.axes[0]
            widths = np.linspace(axis[0], axis[-1], 12)
        candidates = [self.path_delay(htree, float(w)) for w in widths]
        pool = candidates
        if require_damped:
            pool = [c for c in candidates if not c.rings]
            if not pool:
                raise GeometryError(
                    "no candidate width is fully damped; widen the range "
                    "or strengthen the drivers"
                )
        best = min(pool, key=lambda c: c.path_delay)
        return OptimizationResult(candidates=candidates, best=best)
