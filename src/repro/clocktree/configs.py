"""Clocktree interconnect configurations (paper Figs. 8 and 9).

Two basic building blocks route the clock:

* :class:`CoplanarWaveguideConfig` -- ground / signal / ground in one
  layer (Fig. 8); returns flow in the coplanar shields.  An optional
  local ground plane two layers down adds a microstrip-style return.
* :class:`MicrostripConfig` -- a signal wire over a local ground plane
  (Fig. 9); the return flows in the plane.

Each configuration produces the three artefacts extraction needs: a
:class:`~repro.geometry.trace.TraceBlock` (inductance geometry), a
:class:`~repro.peec.loop.LoopProblem` factory (for loop-L table
characterization) and a 2-D :class:`~repro.rc.fieldsolver2d.CrossSection2D`
(for capacitance characterization).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.constants import EPS_R_SIO2, RHO_CU
from repro.errors import GeometryError
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import plane_over_block, plane_under_block
from repro.peec.loop import LoopProblem
from repro.rc.capacitance import CapacitanceModel
from repro.rc.fieldsolver2d import ConductorRect, CrossSection2D


@dataclass(frozen=True)
class CoplanarWaveguideConfig:
    """Ground-signal-ground clock routing (Fig. 8, and the Fig. 1 example).

    Parameters
    ----------
    signal_width, ground_width, spacing, thickness:
        The coplanar cross-section [m].
    height_below:
        Distance to the capacitive reference underneath: the orthogonal
        signal layer the paper's Fig. 1 assumes, or a real ground plane
        [m].
    plane_gap:
        When set, a *local ground plane* this far below the traces also
        carries return current (the common shielding practice of Sec. V);
        ``None`` leaves returns purely coplanar (orthogonal routing below
        contributes no inductive coupling).
    """

    signal_width: float
    ground_width: float
    spacing: float
    thickness: float
    height_below: float
    plane_gap: Optional[float] = None
    plane_n_strips: int = 9
    resistivity: float = RHO_CU
    eps_r: float = EPS_R_SIO2

    def __post_init__(self) -> None:
        required = (
            self.signal_width, self.ground_width, self.spacing,
            self.thickness, self.height_below,
        )
        if min(required) <= 0.0:
            raise GeometryError("all CPW dimensions must be positive")
        if self.plane_gap is not None and self.plane_gap <= 0.0:
            raise GeometryError("plane_gap must be positive when given")

    def with_signal_width(self, signal_width: float) -> "CoplanarWaveguideConfig":
        """A copy routed with a different signal width."""
        return replace(self, signal_width=signal_width)

    def trace_block(self, length: float, signal_width: Optional[float] = None) -> TraceBlock:
        """The three-trace block for a segment of *length*."""
        return TraceBlock.coplanar_waveguide(
            signal_width=signal_width if signal_width is not None else self.signal_width,
            ground_width=self.ground_width,
            spacing=self.spacing,
            length=length,
            thickness=self.thickness,
        )

    def loop_problem(
        self,
        signal_width: float,
        length: float,
        n_width: int = 4,
        n_thickness: int = 2,
        grading: float = 1.5,
    ) -> LoopProblem:
        """Loop-L extraction problem (the table-builder factory)."""
        block = self.trace_block(length, signal_width=signal_width)
        plane = None
        if self.plane_gap is not None:
            plane = plane_under_block(
                block, gap=self.plane_gap, n_strips=self.plane_n_strips,
                resistivity=self.resistivity,
            )
        return LoopProblem(
            block,
            plane=plane,
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
            resistivity=self.resistivity,
        )

    def cross_section(
        self,
        signal_width: Optional[float] = None,
        spacing: Optional[float] = None,
    ) -> CrossSection2D:
        """Unit-length 2-D cross-section for capacitance extraction.

        The grounded bottom edge sits *height_below* under the traces
        (the orthogonal layer / plane); the coplanar shield traces are
        explicit conductors so the field solve captures their shielding.
        """
        width = signal_width if signal_width is not None else self.signal_width
        gap = spacing if spacing is not None else self.spacing
        block = TraceBlock.coplanar_waveguide(
            signal_width=width,
            ground_width=self.ground_width,
            spacing=gap,
            length=1.0,
            thickness=self.thickness,
        )
        return CrossSection2D.from_block(block, plane_gap=self.height_below,
                                         eps_r=self.eps_r)

    def capacitance_model(self) -> CapacitanceModel:
        """Closed-form capacitance settings for this environment."""
        return CapacitanceModel(height_below=self.height_below, eps_r=self.eps_r)

    def ground_conductor_names(self) -> List[str]:
        """Names of the AC-grounded conductors in the cross-section."""
        return ["GND_L", "GND_R"]


@dataclass(frozen=True)
class MicrostripConfig:
    """A signal wire over a local ground plane (Fig. 9).

    Optional same-layer neighbours (at *neighbour_spacing*) model the
    other signal wires of Fig. 9 for coupling studies; they are open
    (statistically quiet) for extraction purposes.
    """

    signal_width: float
    thickness: float
    plane_gap: float
    plane_thickness: Optional[float] = None
    plane_n_strips: int = 11
    neighbour_count: int = 0
    neighbour_spacing: Optional[float] = None
    resistivity: float = RHO_CU
    eps_r: float = EPS_R_SIO2

    def __post_init__(self) -> None:
        if min(self.signal_width, self.thickness, self.plane_gap) <= 0.0:
            raise GeometryError("all microstrip dimensions must be positive")
        if self.neighbour_count < 0:
            raise GeometryError("neighbour_count must be non-negative")
        if self.neighbour_count > 0 and (
            self.neighbour_spacing is None or self.neighbour_spacing <= 0.0
        ):
            raise GeometryError("neighbours need a positive neighbour_spacing")

    def with_signal_width(self, signal_width: float) -> "MicrostripConfig":
        """A copy routed with a different signal width."""
        return replace(self, signal_width=signal_width)

    @property
    def height_below(self) -> float:
        """Capacitive reference distance (the plane gap)."""
        return self.plane_gap

    def trace_block(self, length: float, signal_width: Optional[float] = None) -> TraceBlock:
        """Signal trace plus optional quiet neighbours, no coplanar grounds."""
        width = signal_width if signal_width is not None else self.signal_width
        count = 1 + 2 * self.neighbour_count
        widths = [width] * count
        spacings = [self.neighbour_spacing] * (count - 1)
        names = []
        for i in range(count):
            offset = i - self.neighbour_count
            if offset == 0:
                names.append("SIG")
            else:
                names.append(f"N{offset:+d}")
        return TraceBlock.from_widths_and_spacings(
            widths=widths,
            spacings=spacings,
            length=length,
            thickness=self.thickness,
            ground_flags=[False] * count,
            names=names,
        )

    def loop_problem(
        self,
        signal_width: float,
        length: float,
        n_width: int = 4,
        n_thickness: int = 2,
        grading: float = 1.5,
    ) -> LoopProblem:
        """Loop-L problem with the plane as the only return."""
        block = self.trace_block(length, signal_width=signal_width)
        plane_thickness = self.plane_thickness or self.thickness
        plane = plane_under_block(
            block,
            gap=self.plane_gap,
            thickness=plane_thickness,
            n_strips=self.plane_n_strips,
            resistivity=self.resistivity,
        )
        return LoopProblem(
            block,
            signal="SIG",
            plane=plane,
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
            resistivity=self.resistivity,
        )

    def pair_problem(
        self,
        separation: float,
        length: float,
        n_width: int = 2,
        n_thickness: int = 1,
    ) -> LoopProblem:
        """Two traces over the plane: drive one, open-circuit the other.

        The factory :class:`~repro.tables.builder.MutualLoopTableBuilder`
        expects: the victim trace is named ``"VICTIM"``.
        """
        if separation <= 0.0:
            raise GeometryError("separation must be positive")
        block = TraceBlock.from_widths_and_spacings(
            widths=[self.signal_width, self.signal_width],
            spacings=[separation],
            length=length,
            thickness=self.thickness,
            ground_flags=[False, False],
            names=["SIG", "VICTIM"],
        )
        plane_thickness = self.plane_thickness or self.thickness
        plane = plane_under_block(
            block, gap=self.plane_gap, thickness=plane_thickness,
            n_strips=self.plane_n_strips, resistivity=self.resistivity,
        )
        return LoopProblem(
            block, signal="SIG", plane=plane,
            n_width=n_width, n_thickness=n_thickness,
            resistivity=self.resistivity,
        )

    def cross_section(
        self,
        signal_width: Optional[float] = None,
        spacing: Optional[float] = None,
    ) -> CrossSection2D:
        """Unit-length 2-D cross-section over the grounded plane edge."""
        width = signal_width if signal_width is not None else self.signal_width
        block = self.trace_block(1.0, signal_width=width)
        if spacing is not None and self.neighbour_count > 0:
            block = replace_spacings(block, spacing)
        return CrossSection2D.from_block(block, plane_gap=self.plane_gap,
                                         eps_r=self.eps_r)

    def capacitance_model(self) -> CapacitanceModel:
        """Closed-form capacitance settings for this environment."""
        return CapacitanceModel(height_below=self.plane_gap, eps_r=self.eps_r)


@dataclass(frozen=True)
class StriplineConfig:
    """A signal wire between two local ground planes (Sec. II-B).

    The third basic transmission-line form the paper's extension covers:
    return current splits between the plane below (``gap_below``) and
    the plane above (``gap_above``).  Loop-inductance tables built for
    this structure fold both plane returns in.
    """

    signal_width: float
    thickness: float
    gap_below: float
    gap_above: float
    plane_thickness: Optional[float] = None
    plane_n_strips: int = 11
    resistivity: float = RHO_CU
    eps_r: float = EPS_R_SIO2

    def __post_init__(self) -> None:
        dims = (self.signal_width, self.thickness, self.gap_below, self.gap_above)
        if min(dims) <= 0.0:
            raise GeometryError("all stripline dimensions must be positive")

    def with_signal_width(self, signal_width: float) -> "StriplineConfig":
        """A copy routed with a different signal width."""
        return replace(self, signal_width=signal_width)

    @property
    def height_below(self) -> float:
        """Capacitive reference distance to the lower plane."""
        return self.gap_below

    def trace_block(self, length: float, signal_width: Optional[float] = None) -> TraceBlock:
        """The lone signal trace (planes are added by the loop problem)."""
        width = signal_width if signal_width is not None else self.signal_width
        return TraceBlock.from_widths_and_spacings(
            widths=[width], spacings=[], length=length,
            thickness=self.thickness, ground_flags=[False], names=["SIG"],
        )

    def loop_problem(
        self,
        signal_width: float,
        length: float,
        n_width: int = 4,
        n_thickness: int = 2,
        grading: float = 1.5,
    ) -> LoopProblem:
        """Loop-L problem with both planes in the return group."""
        block = self.trace_block(length, signal_width=signal_width)
        plane_thickness = self.plane_thickness or self.thickness
        below = plane_under_block(
            block, gap=self.gap_below, thickness=plane_thickness,
            n_strips=self.plane_n_strips, resistivity=self.resistivity,
        )
        above = plane_over_block(
            block, gap=self.gap_above, thickness=plane_thickness,
            n_strips=self.plane_n_strips, resistivity=self.resistivity,
        )
        return LoopProblem(
            block,
            signal="SIG",
            plane=below,
            extra_planes=(above,),
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
            resistivity=self.resistivity,
        )

    def cross_section(
        self,
        signal_width: Optional[float] = None,
        spacing: Optional[float] = None,
    ) -> CrossSection2D:
        """Unit-length 2-D cross-section between the grounded planes.

        The window's grounded bottom edge is the lower plane; the upper
        plane is approximated by the grounded top edge placed exactly
        ``gap_above`` over the trace.
        """
        width = signal_width if signal_width is not None else self.signal_width
        margin = 5.0 * max(width, self.gap_below + self.thickness)
        return CrossSection2D(
            width=width + 2.0 * margin,
            height=self.gap_below + self.thickness + self.gap_above,
            conductors=[
                ConductorRect(
                    name="SIG",
                    y0=margin,
                    y1=margin + width,
                    z0=self.gap_below,
                    z1=self.gap_below + self.thickness,
                )
            ],
            eps_r=self.eps_r,
        )

    def capacitance_model(self) -> CapacitanceModel:
        """Closed-form settings (lower plane only; upper adds ~2x)."""
        return CapacitanceModel(height_below=self.gap_below, eps_r=self.eps_r)


def replace_spacings(block: TraceBlock, spacing: float) -> TraceBlock:
    """Rebuild a block with a uniform inter-trace spacing."""
    widths = [t.width for t in block.traces]
    return TraceBlock.from_widths_and_spacings(
        widths=widths,
        spacings=[spacing] * (len(widths) - 1),
        length=block.length,
        thickness=block.traces[0].thickness,
        ground_flags=[t.is_ground for t in block.traces],
        names=[t.name for t in block.traces],
        layer=block.layer,
    )
