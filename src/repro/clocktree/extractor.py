"""Table-driven clocktree RLC extraction and netlist formulation (Sec. V).

For every H-tree segment the extractor obtains:

* **R** -- analytic with skin-effect correction (or a characterized loop
  resistance table),
* **L** -- loop inductance from a characterized table with bicubic-spline
  lookup (or a direct field solve as fallback), extracted for the *whole
  segment length* because inductance is super-linear in length,
* **C** -- per-unit-length capacitance from a field-solver table (or the
  closed-form models).

Segments are then linearly cascaded into one RLC netlist for the whole
passive tree between buffer levels, each segment realized as a short
ladder whose total L equals the table value (splitting the table total
across sections rather than extracting sections individually avoids the
underestimation the paper warns about).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.circuit.lint import NetlistHealthReport, lint_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.htree import HTree, HTreeSegment
from repro.errors import CircuitError, GeometryError
from repro.rc.capacitance import block_capacitance_matrix
from repro.rc.resistance import ac_resistance
from repro.tables.lookup import ExtractionTable, timed_lookup
from repro.telemetry import span


@dataclass(frozen=True)
class SegmentRLC:
    """Extracted totals for one segment."""

    length: float
    resistance: float
    inductance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.length <= 0.0 or self.resistance <= 0.0:
            raise GeometryError("segment length and resistance must be positive")
        if self.inductance < 0.0 or self.capacitance <= 0.0:
            raise GeometryError("segment L must be >= 0 and C positive")


@dataclass
class ClocktreeNetlist:
    """A formulated clocktree circuit with its measurement points."""

    circuit: Circuit
    source_name: str
    root_node: str
    sink_nodes: Dict[str, str]
    includes_inductance: bool
    #: Netlist health report (populated by :meth:`lint`, or eagerly by
    #: :meth:`ClocktreeRLCExtractor.build_netlist` unless disabled).
    health: Optional[NetlistHealthReport] = None

    def lint(self, refresh: bool = False) -> NetlistHealthReport:
        """Run (or return the cached) netlist health lint."""
        if self.health is None or refresh:
            kind = "rlc" if self.includes_inductance else "rc"
            self.health = lint_circuit(
                self.circuit, name=self.circuit.title or f"clocktree_{kind}"
            )
        return self.health


class ClocktreeRLCExtractor:
    """Per-segment RLC extraction and cascaded netlist formulation.

    Parameters
    ----------
    config:
        The wire configuration (CPW or microstrip).
    frequency:
        Significant frequency for R skin correction and direct L solves.
    inductance_table / resistance_table:
        Loop tables over (width, length) from
        :class:`~repro.tables.builder.LoopInductanceTableBuilder`; when
        absent, L and loop R come from a direct field solve per segment
        (slower but always available).
    capacitance_table:
        Per-unit-length total-capacitance table over (width, spacing)
        from :class:`~repro.tables.builder.CapacitanceTableBuilder`;
        when absent the closed-form models are used.
    library:
        A :class:`~repro.library.store.TableLibrary` (or its root path)
        to pull missing tables from.  The extractor queries by this
        config's structure-family fingerprint, quantity, frequency and
        *layer*; any table not found stays on the direct-solve /
        closed-form fallback.  A warm library turns every repeated
        extraction into pure spline lookups -- zero field-solver calls.
    layer:
        Library layer tag to query (default: any layer).
    sections_per_segment:
        Ladder sections per segment in the netlist.
    """

    def __init__(
        self,
        config,
        frequency: float = 3.2e9,
        inductance_table: Optional[ExtractionTable] = None,
        resistance_table: Optional[ExtractionTable] = None,
        capacitance_table: Optional[ExtractionTable] = None,
        library: Optional[Union[str, Path, "object"]] = None,
        layer: Optional[str] = None,
        sections_per_segment: int = 4,
    ):
        if frequency <= 0.0:
            raise GeometryError("frequency must be positive")
        if sections_per_segment < 1:
            raise GeometryError("sections_per_segment must be >= 1")
        self.config = config
        self.frequency = frequency
        self.inductance_table = inductance_table
        self.resistance_table = resistance_table
        self.capacitance_table = capacitance_table
        self.sections_per_segment = sections_per_segment
        self._direct_cache: Dict[tuple, tuple] = {}
        if library is not None:
            self._attach_library(library, layer)

    def _attach_library(self, library, layer: Optional[str]) -> None:
        """Fill any missing tables from a characterization library."""
        # Imported here: repro.library is a higher layer that itself
        # builds on the table builders; keep the base import cheap.
        from repro.library.jobs import config_fingerprint
        from repro.library.store import open_library

        lib = open_library(library, create=False)
        family = config_fingerprint(self.config)
        criteria = {"family": family}
        if layer is not None:
            criteria["layer"] = layer
        if self.inductance_table is None:
            self.inductance_table = lib.get_one(
                quantity="loop_inductance", frequency=self.frequency,
                **criteria)
        if self.resistance_table is None:
            self.resistance_table = lib.get_one(
                quantity="loop_resistance", frequency=self.frequency,
                **criteria)
        if self.capacitance_table is None:
            self.capacitance_table = lib.get_one(
                quantity="capacitance_per_length", **criteria)

    def coverage(self) -> list:
        """Coverage-map entries for this extractor's attached tables.

        Returns the per-table lookup-domain coverage dicts accumulated
        by the process-wide tracker (:mod:`repro.quality.coverage`) for
        whichever tables are attached -- empty until the first lookup.
        Extrapolation hot-spots in these entries carry the offending
        geometry, so out-of-domain queries are diagnosable after the
        fact.
        """
        from repro.quality.coverage import get_coverage_tracker

        tracker = get_coverage_tracker()
        entries = []
        for table in (self.inductance_table, self.resistance_table,
                      self.capacitance_table):
            if table is None:
                continue
            cov = tracker.get(table.name)
            if cov is not None:
                entries.append(cov.to_dict())
        return entries

    # ------------------------------------------------------------------
    # per-segment extraction
    # ------------------------------------------------------------------
    def _loop_rl_direct(self, width: float, length: float):
        key = (width, length)
        if key not in self._direct_cache:
            problem = self.config.loop_problem(width, length)
            self._direct_cache[key] = problem.loop_rl(self.frequency)
        return self._direct_cache[key]

    def _segment_inductance(self, width: float, length: float) -> float:
        if self.inductance_table is not None:
            return timed_lookup(self.inductance_table, width=width, length=length)
        return self._loop_rl_direct(width, length)[1]

    def _segment_resistance(self, width: float, length: float) -> float:
        if self.resistance_table is not None:
            return timed_lookup(self.resistance_table, width=width, length=length)
        if self.inductance_table is None:
            # the direct loop solve already produced the loop resistance
            return self._loop_rl_direct(width, length)[0]
        # analytic fallback: signal + parallel coplanar returns
        signal_r = ac_resistance(
            length, width, self.config.thickness, self.frequency,
            self.config.resistivity,
        )
        if isinstance(self.config, CoplanarWaveguideConfig):
            ground_r = ac_resistance(
                length, self.config.ground_width, self.config.thickness,
                self.frequency, self.config.resistivity,
            )
            return signal_r + ground_r / 2.0
        return signal_r

    def _segment_capacitance(self, width: float, length: float) -> float:
        if self.capacitance_table is not None:
            spacing = getattr(self.config, "spacing", None)
            if spacing is None:
                spacing = getattr(self.config, "neighbour_spacing", None) or width
            per_length = timed_lookup(
                self.capacitance_table, width=width, spacing=spacing
            )
            return per_length * length
        block = self.config.trace_block(length, signal_width=width)
        matrix = block_capacitance_matrix(block, self.config.capacitance_model())
        signal_indices = [
            i for i, t in enumerate(block.traces)
            if not t.is_ground and (t.name == "SIG" or len(block.signal_traces) == 1)
        ]
        if not signal_indices:
            raise GeometryError("no signal trace found for capacitance")
        return float(matrix[signal_indices[0], signal_indices[0]])

    def segment_rlc(self, length: float, signal_width: Optional[float] = None) -> SegmentRLC:
        """Extract total R, L, C for one segment of *length* [m]."""
        if length <= 0.0:
            raise GeometryError("length must be positive")
        width = signal_width if signal_width is not None else self.config.signal_width
        with span("htree.segment_rlc", length=length):
            return SegmentRLC(
                length=length,
                resistance=self._segment_resistance(width, length),
                inductance=self._segment_inductance(width, length),
                capacitance=self._segment_capacitance(width, length),
            )

    def segment_rlc_for(self, segment: HTreeSegment) -> SegmentRLC:
        """Extraction hook for one routed segment.

        The base extractor ignores the segment's layer; layer-aware
        subclasses (e.g. the multi-layer extractor) dispatch on it.
        """
        return self.segment_rlc(segment.length)

    # ------------------------------------------------------------------
    # netlist formulation
    # ------------------------------------------------------------------
    def build_netlist(
        self,
        htree: HTree,
        include_inductance: bool = True,
        sections: Optional[int] = None,
        title: str = "",
        rc_scale: Tuple[float, float] = (1.0, 1.0),
        lint: bool = True,
    ) -> ClocktreeNetlist:
        """Formulate the full cascaded RLC (or RC) netlist of an H-tree.

        The root buffer is a pulse source behind its drive resistance;
        intermediate buffers are unity-gain repeaters (VCVS + drive
        resistance + input capacitance); leaves carry the sink load.

        *rc_scale* multiplies every wire resistance and capacitance (the
        paper's process-variation flow: statistical RC with nominal L).

        Unless ``lint=False``, the formulated circuit is health-linted
        (:mod:`repro.circuit.lint`) and the report attached to
        :attr:`ClocktreeNetlist.health` -- extraction bugs surface here,
        before a simulation silently produces a wrong skew.
        """
        sections = sections if sections is not None else self.sections_per_segment
        if sections < 1:
            raise CircuitError("sections must be >= 1")
        if min(rc_scale) <= 0.0:
            raise CircuitError("rc_scale factors must be positive")
        buffer = htree.buffer
        circuit = Circuit(title or f"clocktree_{'rlc' if include_inductance else 'rc'}")
        source = PulseSource(
            v1=0.0, v2=buffer.supply, delay=buffer.rise_time,
            rise=buffer.rise_time, fall=buffer.rise_time, width=1.0,
        )
        circuit.add_voltage_source("Vclk", "src", "0", source, ac_magnitude=1.0)
        root_node = "drv_root"
        circuit.add_resistor("Rdrv_root", "src", root_node, buffer.drive_resistance)

        sink_nodes: Dict[str, str] = {}
        with span(
            "htree.build_netlist",
            segments=len(htree.segments),
            sections=sections,
            inductance=include_inductance,
        ):
            for segment in htree.segments:
                self._stamp_segment(
                    circuit, htree, segment, root_node, sections,
                    include_inductance, sink_nodes, rc_scale,
                )
        netlist = ClocktreeNetlist(
            circuit=circuit,
            source_name="Vclk",
            root_node=root_node,
            sink_nodes=sink_nodes,
            includes_inductance=include_inductance,
        )
        if lint:
            netlist.lint()
        return netlist

    def _drive_node(self, segment: HTreeSegment, root_node: str) -> str:
        if segment.parent is None:
            return root_node
        return f"drv_{segment.parent}"

    def _stamp_segment(
        self,
        circuit: Circuit,
        htree: HTree,
        segment: HTreeSegment,
        root_node: str,
        sections: int,
        include_inductance: bool,
        sink_nodes: Dict[str, str],
        rc_scale: Tuple[float, float] = (1.0, 1.0),
    ) -> None:
        rlc = self.segment_rlc_for(segment)
        start = self._drive_node(segment, root_node)
        name = segment.name
        r_per = rlc.resistance * rc_scale[0] / sections
        l_per = rlc.inductance / sections
        c_half = rlc.capacitance * rc_scale[1] / (2.0 * sections)

        node = start
        for k in range(sections):
            end = f"{name}_n{k + 1}"
            circuit.add_capacitor(f"C_{name}_{k}a", node, "0", c_half)
            if include_inductance and l_per > 0.0:
                mid = f"{name}_m{k + 1}"
                circuit.add_resistor(f"R_{name}_{k}", node, mid, r_per)
                circuit.add_inductor(f"L_{name}_{k}", mid, end, l_per)
            else:
                circuit.add_resistor(f"R_{name}_{k}", node, end, r_per)
            circuit.add_capacitor(f"C_{name}_{k}b", end, "0", c_half)
            node = end

        buffer = htree.buffer
        if htree.children(name):
            # repeater: input cap, unity-gain stage, output drive resistance
            if buffer.input_capacitance > 0.0:
                circuit.add_capacitor(
                    f"Cin_{name}", node, "0", buffer.input_capacitance
                )
            circuit.add_vcvs(f"Ebuf_{name}", f"bufo_{name}", "0", node, "0", 1.0)
            circuit.add_resistor(
                f"Rdrv_{name}", f"bufo_{name}", f"drv_{name}",
                buffer.drive_resistance,
            )
        else:
            if htree.sink_capacitance > 0.0:
                circuit.add_capacitor(
                    f"Csink_{name}", node, "0", htree.sink_capacitance
                )
            sink_nodes[name] = node
