"""Analytic delay estimates for extracted RLC segments.

Simulation gives the reference answer; closed-form estimates make the
extraction tables directly usable inside optimization loops (the
"clocktree RLC extraction and optimization" of the paper's abstract):

* :func:`elmore_delay` -- the classic RC first moment (what an RC-only
  flow would predict);
* :func:`rlc_delay` -- the two-pole RLC estimate of Ismail & Friedman
  ("Effects of inductance on the propagation delay and repeater
  insertion in VLSI circuits", TVLSI 2000), which reduces to the Elmore
  form for overdamped lines and captures the flight-time floor for
  underdamped ones;
* :func:`damping_factor` -- the zeta that decides whether a driver/line
  combination rings.
"""

from __future__ import annotations

import math

from repro.clocktree.extractor import SegmentRLC
from repro.errors import CircuitError


def elmore_delay(
    resistance: float,
    capacitance: float,
    drive_resistance: float = 0.0,
    load_capacitance: float = 0.0,
) -> float:
    """Elmore (first-moment) 50 % delay of a distributed RC segment [s].

    ``0.693 [ Rs (C + CL) + R (C/2 + CL) ]`` -- the standard lumped
    approximation of a driver *Rs* into a uniform RC line with a far-end
    load.
    """
    if resistance < 0.0 or capacitance < 0.0:
        raise CircuitError("resistance and capacitance must be non-negative")
    if drive_resistance < 0.0 or load_capacitance < 0.0:
        raise CircuitError("driver and load terms must be non-negative")
    moment = (
        drive_resistance * (capacitance + load_capacitance)
        + resistance * (capacitance / 2.0 + load_capacitance)
    )
    return 0.693 * moment


def damping_factor(
    resistance: float,
    inductance: float,
    capacitance: float,
    drive_resistance: float = 0.0,
    load_capacitance: float = 0.0,
) -> float:
    """The Ismail-Friedman damping factor zeta of a driven RLC segment.

    ``zeta = (R_total / 2) sqrt(C_total / L)`` with the driver folded
    into R_total and the load into C_total.  zeta < 1 rings, zeta >> 1
    behaves like an RC line.
    """
    if inductance <= 0.0:
        raise CircuitError("inductance must be positive for a damping factor")
    r_total = drive_resistance + resistance / 2.0
    c_total = capacitance + load_capacitance
    if c_total <= 0.0:
        raise CircuitError("total capacitance must be positive")
    return (r_total / 2.0) * math.sqrt(c_total / inductance)


def rlc_delay(
    resistance: float,
    inductance: float,
    capacitance: float,
    drive_resistance: float = 0.0,
    load_capacitance: float = 0.0,
) -> float:
    """Ismail-Friedman two-pole 50 % delay estimate of an RLC segment [s].

        t_50 = ( e^(-2.9 zeta^1.35) + 1.48 zeta ) / omega_n

    with ``omega_n = 1 / sqrt(L C_total)``.  For zeta >> 1 this tends to
    the Elmore RC behaviour; for zeta << 1 it floors at the wave flight
    time -- the physics behind the paper's Fig. 2 vs Fig. 3 contrast.
    """
    if inductance <= 0.0:
        return elmore_delay(resistance, capacitance,
                            drive_resistance, load_capacitance)
    zeta = damping_factor(resistance, inductance, capacitance,
                          drive_resistance, load_capacitance)
    c_total = capacitance + load_capacitance
    omega_n = 1.0 / math.sqrt(inductance * c_total)
    return (math.exp(-2.9 * zeta ** 1.35) + 1.48 * zeta) / omega_n


def segment_delay(
    rlc: SegmentRLC,
    drive_resistance: float,
    load_capacitance: float = 0.0,
    include_inductance: bool = True,
) -> float:
    """Analytic 50 % delay of one extracted segment [s]."""
    if include_inductance:
        return rlc_delay(
            rlc.resistance, rlc.inductance, rlc.capacitance,
            drive_resistance, load_capacitance,
        )
    return elmore_delay(
        rlc.resistance, rlc.capacitance, drive_resistance, load_capacitance
    )
