"""Layer-aware clocktree extraction from per-layer technology tables.

Real H-trees alternate orthogonal routing layers level by level (which
is also what makes the paper's same-layer-only inductance model exact:
orthogonal layers don't couple inductively).  The multi-layer extractor
dispatches each segment's extraction to the table set of its layer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.clocktree.extractor import ClocktreeRLCExtractor, SegmentRLC
from repro.clocktree.htree import HTreeSegment
from repro.core.technology import TechnologyTables
from repro.errors import TableError


class MultiLayerClocktreeExtractor(ClocktreeRLCExtractor):
    """A clocktree extractor backed by per-layer tables.

    Parameters
    ----------
    technology:
        The characterized per-layer table set.
    default_layer:
        Layer used for segments that carry no layer annotation.
    """

    def __init__(
        self,
        technology: TechnologyTables,
        default_layer: str,
        sections_per_segment: int = 4,
    ):
        base = technology.extractor_for(default_layer)
        super().__init__(
            config=base.config,
            frequency=technology.frequency,
            inductance_table=base.inductance_table,
            resistance_table=base.resistance_table,
            capacitance_table=base.capacitance_table,
            sections_per_segment=sections_per_segment,
        )
        self.technology = technology
        self.default_layer = default_layer
        self._per_layer: Dict[str, ClocktreeRLCExtractor] = {
            layer: extractor.as_clocktree_extractor(sections_per_segment)
            for layer, extractor in technology.extractors.items()
        }

    def extractor_for_layer(self, layer: Optional[str]) -> ClocktreeRLCExtractor:
        """The single-layer extractor a segment on *layer* uses."""
        name = layer or self.default_layer
        try:
            return self._per_layer[name]
        except KeyError:
            raise TableError(
                f"no tables for layer {name!r}; characterized layers: "
                f"{sorted(self._per_layer)}"
            ) from None

    def segment_rlc_for(self, segment: HTreeSegment) -> SegmentRLC:
        """Dispatch the segment's extraction to its layer's tables."""
        return self.extractor_for_layer(segment.layer).segment_rlc(
            segment.length
        )
