"""Buffered H-tree clock network generation (paper Fig. 7).

An :class:`HTree` is a binary H-tree: each buffer level drives two
branches through guarded interconnect segments, orientation alternating
between horizontal and vertical per level, segment length halving by
default.  Leaves are the clock sinks.  Per-branch length scaling can be
perturbed to create the asymmetric trees used for skew studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig, MicrostripConfig
from repro.errors import GeometryError

WireConfig = Union[CoplanarWaveguideConfig, MicrostripConfig]


@dataclass(frozen=True)
class HTreeSegment:
    """One routed segment between two buffer levels.

    ``name`` encodes the branch path from the root, e.g. ``"s_LR"`` is
    reached by taking the left branch then the right branch.  *layer*
    optionally names the metal layer the segment routes on (real H-trees
    alternate orthogonal layers per level).
    """

    name: str
    level: int
    parent: Optional[str]
    length: float
    start: Tuple[float, float]
    end: Tuple[float, float]
    axis: str
    layer: Optional[str] = None

    @property
    def is_root(self) -> bool:
        """True for the segment driven directly by the root buffer."""
        return self.parent is None


@dataclass
class HTree:
    """A binary buffered H-tree.

    Attributes
    ----------
    segments:
        All segments; leaves (segments without children) end at sinks.
    config:
        The wire configuration used on every segment.
    buffer:
        The repeater placed at the root and at the end of every
        non-leaf segment.
    sink_capacitance:
        Load at each leaf [F].
    """

    segments: List[HTreeSegment]
    config: WireConfig
    buffer: ClockBuffer = field(default_factory=ClockBuffer)
    sink_capacitance: float = 50e-15

    def __post_init__(self) -> None:
        if not self.segments:
            raise GeometryError("H-tree has no segments")
        if self.sink_capacitance < 0.0:
            raise GeometryError("sink_capacitance must be non-negative")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise GeometryError("duplicate segment names")
        self._by_name = {s.name: s for s in self.segments}

    @classmethod
    def generate(
        cls,
        levels: int,
        root_length: float,
        config: WireConfig,
        buffer: Optional[ClockBuffer] = None,
        sink_capacitance: float = 50e-15,
        length_ratio: float = 0.5,
        branch_scale: Optional[Dict[str, float]] = None,
        layers_by_level: Optional[Sequence[str]] = None,
    ) -> "HTree":
        """Generate a symmetric (or deliberately skewed) binary H-tree.

        Parameters
        ----------
        levels:
            Number of branching levels; the tree has ``2**levels`` sinks.
        root_length:
            Length of the root segment [m]; each level scales by
            *length_ratio*.
        branch_scale:
            Optional per-segment length multipliers keyed by segment
            name (e.g. ``{"s_LL": 1.3}``) to introduce asymmetry for
            skew experiments.
        layers_by_level:
            Optional metal layer name per level (cycled when shorter
            than *levels*), e.g. ``("M6", "M5")`` for the usual
            orthogonal-pair routing.
        """
        if levels < 1:
            raise GeometryError("levels must be >= 1")
        if root_length <= 0.0:
            raise GeometryError("root_length must be positive")
        if not (0.0 < length_ratio <= 1.0):
            raise GeometryError("length_ratio must be in (0, 1]")
        branch_scale = branch_scale or {}

        segments: List[HTreeSegment] = []

        def grow(path: str, parent: Optional[str], level: int,
                 start: Tuple[float, float], direction: float) -> None:
            name = f"s_{path}" if path else "s_root"
            base_length = root_length * (length_ratio ** level)
            length = base_length * branch_scale.get(name, 1.0)
            axis = "x" if level % 2 == 0 else "y"
            dx = length * direction if axis == "x" else 0.0
            dy = length * direction if axis == "y" else 0.0
            end = (start[0] + dx, start[1] + dy)
            layer = None
            if layers_by_level:
                layer = layers_by_level[level % len(layers_by_level)]
            segments.append(
                HTreeSegment(
                    name=name, level=level, parent=parent,
                    length=length, start=start, end=end, axis=axis,
                    layer=layer,
                )
            )
            if level + 1 < levels:
                grow(path + "L", name, level + 1, end, +1.0)
                grow(path + "R", name, level + 1, end, -1.0)

        # Level 0: two root branches left/right of the root buffer, like
        # the two arms of the top-level H.
        grow("L", None, 0, (0.0, 0.0), +1.0)
        grow("R", None, 0, (0.0, 0.0), -1.0)

        return cls(
            segments=segments,
            config=config,
            buffer=buffer if buffer is not None else ClockBuffer(),
            sink_capacitance=sink_capacitance,
        )

    def segment(self, name: str) -> HTreeSegment:
        """Look up a segment by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GeometryError(f"unknown segment {name!r}") from None

    def children(self, name: str) -> List[HTreeSegment]:
        """Child segments of *name*."""
        return [s for s in self.segments if s.parent == name]

    def roots(self) -> List[HTreeSegment]:
        """Segments driven directly by the root buffer."""
        return [s for s in self.segments if s.parent is None]

    def leaves(self) -> List[HTreeSegment]:
        """Sink-terminated segments."""
        return [s for s in self.segments if not self.children(s.name)]

    @property
    def num_sinks(self) -> int:
        """Number of clock sinks."""
        return len(self.leaves())

    @property
    def num_levels(self) -> int:
        """Number of branching levels."""
        return max(s.level for s in self.segments) + 1

    def total_wire_length(self) -> float:
        """Sum of all segment lengths [m]."""
        return sum(s.length for s in self.segments)

    def path_to_root(self, name: str) -> List[HTreeSegment]:
        """Segments from *name* up to (and including) a root segment."""
        path = [self.segment(name)]
        while path[-1].parent is not None:
            path.append(self.segment(path[-1].parent))
        return path
