"""RLC-aware repeater insertion for long clock/signal lines.

The same HP/UW group applied this table-based inductance modeling to
repeater insertion (Cao, Huang, Chang, Lin, Nakagawa, Xie, Hu,
"Effective on-chip inductance modeling for multiple signal lines and
application on repeater insertion", 2000): under RC analysis, chopping
a long line into N buffered stages shrinks the quadratic diffusion
delay, with a well-known optimum N; with inductance the delay floor is
the linear time of flight, which repeaters cannot beat -- so RLC-aware
insertion wants *fewer* repeaters than RC analysis suggests.

:func:`optimal_repeaters` sweeps the stage count using the segment
tables plus the closed-form RLC delay, and reports both the RC and RLC
optima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.delay_models import elmore_delay, rlc_delay
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.errors import GeometryError


@dataclass(frozen=True)
class RepeaterCandidate:
    """One evaluated stage count."""

    count: int
    stage_length: float
    total_delay: float


@dataclass
class RepeaterPlan:
    """Delay vs repeater count, with the optimum."""

    candidates: List[RepeaterCandidate]
    best: RepeaterCandidate
    include_inductance: bool

    @property
    def optimal_count(self) -> int:
        """The delay-minimizing number of stages."""
        return self.best.count

    def delay_of(self, count: int) -> float:
        """Total delay of a given stage count."""
        for candidate in self.candidates:
            if candidate.count == count:
                return candidate.total_delay
        raise GeometryError(f"stage count {count} was not evaluated")


def optimal_repeaters(
    extractor: ClocktreeRLCExtractor,
    length: float,
    buffer: ClockBuffer,
    load_capacitance: float = 50e-15,
    signal_width: Optional[float] = None,
    max_count: int = 12,
    include_inductance: bool = True,
) -> RepeaterPlan:
    """Sweep the stage count of a repeated line and pick the optimum.

    Each of the ``n`` stages is one buffer driving ``length / n`` of
    guarded wire into the next buffer's input capacitance (the last
    stage drives *load_capacitance*); stage delays come from the
    extraction tables plus the closed-form delay model and add up.
    """
    if length <= 0.0:
        raise GeometryError("length must be positive")
    if max_count < 1:
        raise GeometryError("max_count must be >= 1")

    candidates: List[RepeaterCandidate] = []
    for count in range(1, max_count + 1):
        stage_length = length / count
        rlc = extractor.segment_rlc(stage_length, signal_width=signal_width)
        total = 0.0
        for stage in range(count):
            load = (buffer.input_capacitance if stage < count - 1
                    else load_capacitance)
            if include_inductance:
                total += rlc_delay(
                    rlc.resistance, rlc.inductance, rlc.capacitance,
                    drive_resistance=buffer.drive_resistance,
                    load_capacitance=load,
                )
            else:
                total += elmore_delay(
                    rlc.resistance, rlc.capacitance,
                    drive_resistance=buffer.drive_resistance,
                    load_capacitance=load,
                )
        candidates.append(RepeaterCandidate(
            count=count, stage_length=stage_length, total_delay=total,
        ))
    best = min(candidates, key=lambda c: c.total_delay)
    return RepeaterPlan(
        candidates=candidates, best=best,
        include_inductance=include_inductance,
    )
