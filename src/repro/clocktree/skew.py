"""Clock skew simulation and the RC-vs-RLC comparison (Sec. V).

The paper's motivating numbers: on the Fig. 1 co-planar waveguide the
buffer-to-sink delay is 28.01 ps without inductance and 47.6 ps with it,
and the clock-skew error from omitting inductance exceeds 10 %.  These
helpers run both netlists, measure arrivals at every sink and quantify
the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


from repro.circuit.lint import NetlistHealthReport
from repro.circuit.transient import TransientResult, transient_analysis
from repro.circuit.waveform import Waveform, skew
from repro.clocktree.extractor import ClocktreeNetlist, ClocktreeRLCExtractor
from repro.clocktree.htree import HTree
from repro.errors import CircuitError


@dataclass
class SkewResult:
    """Arrival times and skew of one clocktree simulation."""

    arrivals: Dict[str, float]
    source_crossing: float
    result: TransientResult
    sink_nodes: Dict[str, str] = field(default_factory=dict)
    #: Health report of the simulated netlist (None when linting was
    #: disabled on both the netlist build and the simulate call).
    health: Optional[NetlistHealthReport] = None

    def simulation_report(self) -> Dict[str, Any]:
        """Serializable diagnostics + health summary for RunReport v3."""
        report: Dict[str, Any] = {}
        if self.result.diagnostics is not None:
            report["diagnostics"] = self.result.diagnostics.to_dict()
        if self.health is not None:
            report["netlist_health"] = self.health.to_dict()
        return report

    @property
    def skew(self) -> float:
        """Max minus min sink arrival [s]."""
        return skew(self.arrivals)

    @property
    def delays(self) -> Dict[str, float]:
        """Source-to-sink insertion delays [s]."""
        return {
            name: t - self.source_crossing for name, t in self.arrivals.items()
        }

    @property
    def max_delay(self) -> float:
        """Largest insertion delay [s]."""
        return max(self.delays.values())

    def sink_waveform(self, sink: str) -> Waveform:
        """Voltage waveform at a named sink."""
        return self.result.voltage(self.sink_nodes[sink])


def simulate_clocktree(
    netlist: ClocktreeNetlist,
    supply: float,
    t_stop: float,
    dt: float,
    threshold_fraction: float = 0.5,
    lint: bool = True,
    diagnostics: bool = True,
    solver: str = "auto",
) -> SkewResult:
    """Transient-simulate a clocktree netlist and measure sink arrivals.

    Arrival is the first crossing of ``threshold_fraction * supply`` at
    each sink; the reference crossing is taken at the root driver node.

    Unless disabled, the netlist health report (cached from the build,
    or computed here) and the per-run :class:`TransientDiagnostics` ride
    along on the :class:`SkewResult`, so every skew number is traceable
    to the integration quality that produced it.  *solver* picks the
    transient factorization backend (``"auto"`` / ``"dense"`` /
    ``"sparse"``) -- chip-scale trees need ``"sparse"`` (which ``auto``
    selects by size).
    """
    if not netlist.sink_nodes:
        raise CircuitError("netlist has no sinks")
    health = netlist.lint() if (lint or netlist.health is not None) else None
    result = transient_analysis(
        netlist.circuit, t_stop=t_stop, dt=dt, diagnostics=diagnostics,
        solver=solver,
    )
    level = threshold_fraction * supply
    root_wave = result.voltage(netlist.root_node)
    source_crossing = root_wave.threshold_crossing(level)
    if source_crossing is None:
        raise CircuitError(
            "root never crosses threshold; extend t_stop or check drive"
        )
    arrivals: Dict[str, float] = {}
    for sink, node in netlist.sink_nodes.items():
        crossing = result.voltage(node).threshold_crossing(level)
        if crossing is None:
            raise CircuitError(
                f"sink {sink!r} never crosses threshold; extend t_stop"
            )
        arrivals[sink] = crossing
    return SkewResult(
        arrivals=arrivals,
        source_crossing=source_crossing,
        result=result,
        sink_nodes=dict(netlist.sink_nodes),
        health=health,
    )


@dataclass
class SkewComparison:
    """RC-only vs RLC clocktree metrics."""

    rc: SkewResult
    rlc: SkewResult

    @property
    def delay_discrepancy(self) -> float:
        """Relative max-delay error of the RC netlist vs the RLC one."""
        rc_delay = self.rc.max_delay
        rlc_delay = self.rlc.max_delay
        return abs(rlc_delay - rc_delay) / rlc_delay

    @property
    def skew_discrepancy(self) -> float:
        """Relative skew error of the RC netlist vs the RLC one."""
        rlc_skew = self.rlc.skew
        if rlc_skew == 0.0:
            return 0.0 if self.rc.skew == 0.0 else float("inf")
        return abs(self.rlc.skew - self.rc.skew) / rlc_skew

    def per_sink_delay_errors(self) -> Dict[str, float]:
        """Relative RC-vs-RLC delay error per sink."""
        errors = {}
        rc_delays = self.rc.delays
        for sink, rlc_delay in self.rlc.delays.items():
            errors[sink] = abs(rlc_delay - rc_delays[sink]) / rlc_delay
        return errors

    def simulation_reports(self) -> Dict[str, Any]:
        """Per-netlist diagnostics/health dicts for RunReport v3."""
        return {"rc": self.rc.simulation_report(),
                "rlc": self.rlc.simulation_report()}


def compare_rc_vs_rlc(
    extractor: ClocktreeRLCExtractor,
    htree: HTree,
    t_stop: float,
    dt: float,
    threshold_fraction: float = 0.5,
    solver: str = "auto",
) -> SkewComparison:
    """Extract, formulate and simulate both netlists of one H-tree."""
    supply = htree.buffer.supply
    rc_netlist = extractor.build_netlist(htree, include_inductance=False)
    rlc_netlist = extractor.build_netlist(htree, include_inductance=True)
    return SkewComparison(
        rc=simulate_clocktree(rc_netlist, supply, t_stop, dt,
                              threshold_fraction, solver=solver),
        rlc=simulate_clocktree(rlc_netlist, supply, t_stop, dt,
                               threshold_fraction, solver=solver),
    )
