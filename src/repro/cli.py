"""Command-line front end: run the paper's experiments from a shell.

``repro <experiment>`` (or ``python -m repro <experiment>``) runs one of
the reproduction experiments and prints its headline numbers;
``repro characterize`` builds and saves extraction tables for a CPW
family.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional


from repro.constants import GHz, to_GHz, to_nH, to_pF, to_ps, um

#: ``--PARAM=value`` scenario override (pycomex style): UPPERCASE name,
#: pre-extracted in :func:`main` because argparse cannot accept unknown
#: option names per-scenario.
_PARAM_OVERRIDE = re.compile(r"^--([A-Z][A-Z0-9_]*)=(.*)$", re.DOTALL)


def _print_simulation_health(sections) -> None:
    """Print the per-netlist simulation-health one-liners."""
    for label in sorted(sections):
        section = sections[label]
        diag = section.get("diagnostics")
        health = section.get("netlist_health")
        parts = []
        if health is not None:
            parts.append("netlist clean" if health["clean"] else
                         f"netlist {health['num_errors']} error(s)")
        if diag is not None:
            parts.append(f"LTE p95 {diag['lte_p95']:.1e}")
            parts.append(f"energy residual {diag['energy_residual']:.1e}")
            if not diag.get("dt_adequate", True):
                parts.append("dt UNDERSAMPLED")
        if parts:
            print(f"  [{label}] " + ", ".join(parts))


def _run_scenario_alias(args: argparse.Namespace, name: str,
                        overrides: dict) -> int:
    """Legacy experiment commands routed through the scenario runner.

    Aliases always execute (``force=True``) and always record a
    provenance-stamped ledger run; skip-if-done is a ``repro run``
    behavior.  Output is the scenario's own ``render`` plus the
    simulation-health one-liners, so the console contract is unchanged.
    """
    from repro.scenarios import get_scenario, run_scenario

    telemetry_path = getattr(args, "telemetry", None)
    outcome = run_scenario(
        name, overrides,
        force=True,
        command=f"repro {args.command}",
        telemetry_path=telemetry_path,
    )
    scenario = get_scenario(name)
    if scenario.render is not None:
        print(scenario.render(outcome.metrics))
    if outcome.report is not None and outcome.report.simulation:
        _print_simulation_health(outcome.report.simulation)
    if telemetry_path:
        print(f"telemetry report -> {telemetry_path}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    return _run_scenario_alias(
        args, "fig1-delay",
        {"DRIVE_RESISTANCE": args.drive_resistance},
    )


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5

    result = run_fig5(n_traces=args.traces)
    print(f"Fig. 5 loop inductance matrix [nH] at {to_GHz(result.frequency):.1f} GHz")
    header = "       " + "".join(f"{name:>9}" for name in result.trace_names)
    print(header)
    for name, row in zip(result.trace_names, result.loop_matrix):
        cells = "".join(f"{to_nH(v):9.4f}" for v in row)
        print(f"  {name:>5}{cells}")
    f1, f2 = result.foundation1, result.foundation2
    print(f"  Foundation 1: {to_nH(f1.full_value):.4f} vs {to_nH(f1.reduced_value):.4f} nH"
          f"  (error {f1.relative_error * 100.0:.2f} %)")
    print(f"  Foundation 2: {to_nH(f2.full_value):.4f} vs {to_nH(f2.reduced_value):.4f} nH"
          f"  (error {f2.relative_error * 100.0:.2f} %)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    result = run_table1()
    print("Table I: linear cascading comparison "
          f"(at {to_GHz(result.frequency):.1f} GHz; paper errors: 3.57 %, 1.55 %)")
    print(f"  {'structure':>10} {'full L [nH]':>12} {'S/P comb [nH]':>14} {'error':>8}")
    for row in result.rows:
        cmp_ = row.comparison
        print(f"  {row.name:>10} {to_nH(cmp_.full_inductance):12.4f} "
              f"{to_nH(cmp_.combined_inductance):14.4f} {row.error_percent:7.2f}%")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import run_length_scaling

    result = run_length_scaling()
    print("Super-linear inductance length scaling (Sec. V)")
    print(f"  {'length [um]':>12} {'self L [nH]':>12} {'mutual L [nH]':>14}")
    for length, ls, lm in zip(
        result.lengths, result.self_inductance, result.mutual_inductance
    ):
        print(f"  {length * 1e6:12.0f} {to_nH(ls):12.4f} {to_nH(lm):14.4f}")
    print(f"  L(2000um)/L(1000um) = {result.doubling_ratio(1e-3):.3f} "
          "(paper: about 2.2)")
    return 0


def _cmd_skew(args: argparse.Namespace) -> int:
    return _run_scenario_alias(
        args, "htree-skew",
        {
            "LIBRARY": getattr(args, "library", None) or "",
            "SOLVER": getattr(args, "solver", "auto"),
        },
    )


def _cmd_variation(args: argparse.Namespace) -> int:
    from repro.experiments import run_process_variation

    result = run_process_variation()
    print("Process variation: statistical RC vs nominal L (Sec. V)")
    print(f"  R spread (sigma/mean) = {result.r_spread * 100.0:5.2f} %")
    print(f"  C spread (sigma/mean) = {result.c_spread * 100.0:5.2f} %")
    print(f"  L spread (sigma/mean) = {result.l_spread * 100.0:5.2f} %")
    print(f"  L is {result.l_insensitivity_factor:.1f}x steadier than R/C "
          "-- nominal-L + statistical-RC is justified")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    return _run_scenario_alias(args, "table-accuracy", {})


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ScenarioError, ScenarioRunError
    from repro.scenarios import (RunLedger, all_scenarios,
                                 default_ledger_root, get_scenario,
                                 run_scenario)

    if args.list_scenarios or args.scenario is None:
        group = None
        for scenario in all_scenarios():
            if scenario.figure != group:
                group = scenario.figure
                print(f"[{group}]")
            print(f"  {scenario.name:<20} {scenario.description}")
            knobs = ", ".join(f"{k}={v!r}" for k, v in
                              sorted(scenario.defaults.items()))
            if knobs:
                print(f"  {'':<20} params: {knobs}")
        if args.scenario is None and not args.list_scenarios:
            print("\nusage: repro run <scenario> [--PARAM=value ...]",
                  file=sys.stderr)
            return 2
        return 0

    ledger_root = args.ledger or default_ledger_root()
    ledger = RunLedger(ledger_root)
    try:
        outcome = run_scenario(
            args.scenario,
            getattr(args, "param_overrides", None),
            ledger=ledger,
            force=args.force,
            telemetry_path=args.telemetry,
        )
    except ScenarioRunError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        import json as _json

        print(_json.dumps({
            "run_id": outcome.run_id,
            "run_key": outcome.run_key,
            "skipped": outcome.skipped,
            "params": outcome.params,
            "metrics": outcome.metrics,
        }, indent=1, default=str))
        return 0
    if outcome.skipped:
        print(f"run {args.scenario}: ledger hit {outcome.run_id} "
              "(identical request already completed; --force to rerun)")
    scenario = get_scenario(args.scenario)
    if scenario.render is not None:
        print(scenario.render(outcome.metrics))
    if outcome.report is not None and outcome.report.simulation:
        _print_simulation_health(outcome.report.simulation)
    if not outcome.skipped:
        print(f"run recorded: {outcome.run_id} -> {ledger.root}")
    if args.telemetry and not outcome.skipped:
        print(f"telemetry report -> {args.telemetry}")
    return 0


def _scenario_guard(func):
    """Turn ScenarioError from a `runs` subcommand into a usage error."""
    def wrapper(args: argparse.Namespace) -> int:
        from repro.errors import ScenarioError

        try:
            return func(args)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    wrapper.__name__ = getattr(func, "__name__", "runs_command")
    return wrapper


def _runs_ledger(args: argparse.Namespace):
    from repro.scenarios import RunLedger, default_ledger_root

    return RunLedger(args.ledger or default_ledger_root(), create=False)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    import time as _time

    from repro.scenarios import render_entries

    ledger = _runs_ledger(args)
    since = (_time.time() - args.since * 86400.0
             if args.since is not None else None)
    entries = ledger.entries(scenario=args.scenario, sha=args.sha,
                             since=since, status=args.status)
    if args.json:
        import json as _json

        print(_json.dumps([e.to_dict() for e in entries], indent=1,
                          default=str))
        return 0
    print(f"ledger {ledger.root}: {len(entries)} run(s)")
    print(render_entries(entries), end="")
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.scenarios import render_run

    ledger = _runs_ledger(args)
    entry = ledger.resolve(args.run)
    run = ledger.load_run(entry.run_id)
    if args.json:
        import json as _json

        print(_json.dumps(run, indent=1, default=str))
        return 0
    print(render_run(run), end="")
    if args.report:
        report = ledger.load_report(entry.run_id)
        if report is None:
            print("(no telemetry report captured)")
        else:
            from repro.telemetry import render_report

            print(render_report(report, max_spans=args.max_spans), end="")
    if args.logs:
        import json as _json

        for record in ledger.load_logs(entry.run_id):
            print(_json.dumps(record, sort_keys=True, default=str))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.scenarios import diff_runs

    ledger = _runs_ledger(args)
    baseline = ledger.resolve(args.baseline)
    candidate = ledger.resolve(args.candidate)
    diff = diff_runs(
        ledger.load_run(baseline.run_id),
        ledger.load_run(candidate.run_id),
        threshold=args.threshold, mad_k=args.mad_k,
    )
    print(f"baseline  {baseline.run_id} ({baseline.scenario} "
          f"@ {baseline.git_sha[:12]})")
    print(f"candidate {candidate.run_id} ({candidate.scenario} "
          f"@ {candidate.git_sha[:12]})")
    print(diff.render(), end="")
    if diff.nothing_compared:
        # A "pass" with zero common metrics is a silent lie -- make it
        # a distinct, scriptable outcome.
        return 3
    return 0 if diff.passed else 1


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    ledger = _runs_ledger(args)
    if args.max_age_days is None and args.keep is None:
        print("runs gc needs --max-age-days and/or --keep", file=sys.stderr)
        return 2
    removed = ledger.gc(max_age_days=args.max_age_days, keep=args.keep)
    print(f"ledger {ledger.root}: pruned {len(removed)} run(s), "
          f"{len(ledger)} kept")
    for entry in removed:
        print(f"  removed {entry.run_id} ({entry.scenario}, {entry.status})")
    return 0


def _parse_sweep_spec(args: argparse.Namespace):
    """Build a SweepSpec from ``repro sweep run`` arguments."""
    from repro.errors import ScenarioError
    from repro.scenarios import SweepSpec
    from repro.scenarios.sweep import MonteCarloAxis

    grid = {}
    for token in args.grid or []:
        name, sep, values = token.partition("=")
        levels = [v for v in values.split(",") if v.strip() != ""]
        if not sep or not name or not levels:
            raise ScenarioError(
                f"bad --grid {token!r} -- expected PARAM=v1,v2,...")
        grid[name] = levels
    explicit = []
    for token in args.point or []:
        point = {}
        for assign in token.split(","):
            name, sep, value = assign.partition("=")
            if not sep or not name or value.strip() == "":
                raise ScenarioError(
                    f"bad --point {token!r} -- expected "
                    "PARAM=v[,PARAM=v...]")
            point[name] = value
        explicit.append(point)
    mc = {}
    for token in args.mc or []:
        name, sep, dist = token.partition("=")
        if not sep or not name:
            raise ScenarioError(
                f"bad --mc {token!r} -- expected PARAM=normal(mu,sigma)")
        mc[name] = MonteCarloAxis.parse(dist)
    return SweepSpec(
        args.scenario,
        grid=grid,
        explicit=explicit,
        mc=mc,
        samples=args.samples,
        seed=args.seed,
        base=dict(getattr(args, "param_overrides", None) or {}),
    )


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ScenarioError
    from repro.scenarios import RunLedger, SweepRunner, default_ledger_root

    def show_progress(p) -> None:
        # Progress goes to stderr so `--json | tee` stays clean.
        eta = (f"{p.eta_seconds:5.0f}s" if p.eta_seconds is not None
               else "    ?")
        print(f"  sweep {p.done}/{p.total}  failed {p.failed}  "
              f"replayed {p.skipped}  {p.points_per_second:6.2f} pt/s  "
              f"eta {eta}  solver calls {p.solver_calls}  "
              f"memo hit {p.memo_hit_rate:.0%}", file=sys.stderr)

    try:
        spec = _parse_sweep_spec(args)
        ledger = RunLedger(args.ledger or default_ledger_root())
        runner = SweepRunner(
            spec,
            ledger=ledger,
            workers=args.workers,
            force=args.force,
            progress=None if args.quiet else show_progress,
        )
        report = runner.run()
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    code = 1 if report.failed_count else 0
    if args.telemetry:
        from repro.telemetry.registry import MetricsSnapshot
        from repro.telemetry.report import RunReport

        run_report = RunReport(
            command=f"repro sweep run {args.scenario}",
            started_at=report.started_at,
            duration=report.duration,
            metrics=MetricsSnapshot.from_dict(report.telemetry),
            meta={"exit_code": code, "campaign_id": report.campaign_id},
            campaign=report.summary(),
        )
        run_report.save(args.telemetry)
    if args.json:
        print(_json.dumps(report.summary(), indent=1, default=str))
        return code
    print(f"sweep {args.scenario}: {report.total} point(s), "
          f"{report.completed} completed, {report.failed_count} failed, "
          f"{report.skipped_count} replayed from ledger")
    print(f"  {report.points_per_second:.2f} pt/s over "
          f"{report.workers} worker(s)  solver calls "
          f"{report.solver_call_count}  memo hit "
          f"{report.memo_hit_rate:.1%}")
    for row in report.failures():
        print(f"  FAILED point {row.get('index')}: "
              f"{row.get('error', '?')}", file=sys.stderr)
    print(f"campaign recorded: {report.campaign_id} -> {ledger.root}")
    if args.telemetry:
        print(f"telemetry report -> {args.telemetry}")
    return code


def _sweep_ledger(args: argparse.Namespace):
    from repro.scenarios import RunLedger, default_ledger_root

    return RunLedger(args.ledger or default_ledger_root(), create=False)


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.scenarios import render_campaign_entries

    ledger = _sweep_ledger(args)
    rows = ledger.campaign_entries(scenario=args.scenario)
    if args.json:
        import json as _json

        print(_json.dumps(rows, indent=1, default=str))
        return 0
    print(f"ledger {ledger.root}: {len(rows)} campaign(s)")
    print(render_campaign_entries(rows), end="")
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    from repro.scenarios import CampaignReport, render_campaign

    ledger = _sweep_ledger(args)
    row = ledger.resolve_campaign(args.campaign)
    record = ledger.load_campaign(str(row["campaign_id"]))
    if args.json:
        import json as _json

        print(_json.dumps(record, indent=1, default=str))
        return 0
    print(render_campaign(CampaignReport.from_dict(record)), end="")
    return 0


def _cmd_sweep_diff(args: argparse.Namespace) -> int:
    from repro.scenarios import CampaignReport, diff_campaigns

    ledger = _sweep_ledger(args)
    base_row = ledger.resolve_campaign(args.baseline)
    cand_row = ledger.resolve_campaign(args.candidate)
    baseline = CampaignReport.from_dict(
        ledger.load_campaign(str(base_row["campaign_id"])))
    candidate = CampaignReport.from_dict(
        ledger.load_campaign(str(cand_row["campaign_id"])))
    diff = diff_campaigns(baseline, candidate,
                          threshold=args.threshold, mad_k=args.mad_k)
    print(f"baseline  campaign {baseline.campaign_id} "
          f"({baseline.scenario}, {baseline.total} point(s))")
    print(f"candidate campaign {candidate.campaign_id} "
          f"({candidate.scenario}, {candidate.total} point(s))")
    print(diff.render(), end="")
    if diff.nothing_compared:
        return 3
    return 0 if diff.passed else 1


def _cmd_crosstalk(args: argparse.Namespace) -> int:
    from repro.bus import BusRLCExtractor, crosstalk_analysis
    from repro.geometry.trace import TraceBlock
    from repro.rc.capacitance import CapacitanceModel

    n = args.traces
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(args.width)] * n,
        spacings=[um(args.spacing)] * (n - 1),
        length=um(args.length),
        thickness=um(args.thickness),
    )
    extractor = BusRLCExtractor(
        frequency=GHz(args.frequency),
        capacitance_model=CapacitanceModel(height_below=um(args.height_below)),
    )
    bus = extractor.extract(block)
    aggressor = f"T{(n + 1) // 2}"
    full = crosstalk_analysis(extractor, bus, aggressor=aggressor)
    cap_only = crosstalk_analysis(extractor, bus, aggressor=aggressor,
                                  include_mutual=False)
    print(f"{n}-trace bus crosstalk, aggressor {aggressor} "
          "(outer traces are shields)")
    print(f"  {'victim':>7} {'full RLC':>12} {'cap-only':>12}")
    for victim in sorted(full.victim_noise_peak):
        print(f"  {victim:>7} {full.noise_of(victim) * 1e3:9.1f} mV "
              f"{cap_only.noise_of(victim) * 1e3:9.1f} mV")
    print("  inductive coupling is long-range: far victims lose most of")
    print("  their noise when the mutual inductances are dropped.")
    return 0


def _cmd_spice(args: argparse.Namespace) -> int:
    from repro.circuit.spice_export import write_spice
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.clocktree.extractor import ClocktreeRLCExtractor
    from repro.clocktree.htree import HTree

    config = CoplanarWaveguideConfig(
        signal_width=um(args.signal_width), ground_width=um(args.ground_width),
        spacing=um(args.spacing), thickness=um(args.thickness),
        height_below=um(args.height_below),
    )
    extractor = ClocktreeRLCExtractor(config, frequency=GHz(args.frequency))
    htree = HTree.generate(levels=args.levels,
                           root_length=um(args.root_length), config=config)
    netlist = extractor.build_netlist(
        htree, include_inductance=not args.rc_only
    )
    path = write_spice(
        netlist.circuit, args.output,
        title=f"repro clocktree ({'RC' if args.rc_only else 'RLC'})",
        analyses=("tran 0.5p 3n",),
        probes=sorted(netlist.sink_nodes.values()),
    )
    print(f"wrote {path} ({path.read_text().count(chr(10))} cards, "
          f"{len(netlist.sink_nodes)} sinks)")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.core.extraction import TableBasedExtractor

    config = CoplanarWaveguideConfig(
        signal_width=um(args.signal_width),
        ground_width=um(args.ground_width),
        spacing=um(args.spacing),
        thickness=um(args.thickness),
        height_below=um(args.height_below),
    )
    widths = [um(w) for w in args.widths]
    lengths = [um(l) for l in args.lengths]
    extractor = TableBasedExtractor.characterize(
        config, frequency=GHz(args.frequency), widths=widths, lengths=lengths,
    )
    extractor.save(args.output)
    print(f"characterized {len(widths)}x{len(lengths)} loop tables "
          f"at {args.frequency:.2f} GHz -> {args.output}")
    return 0


def _library_config(args: argparse.Namespace):
    from repro.clocktree.configs import CoplanarWaveguideConfig

    return CoplanarWaveguideConfig(
        signal_width=um(args.signal_width),
        ground_width=um(args.ground_width),
        spacing=um(args.spacing),
        thickness=um(args.thickness),
        height_below=um(args.height_below),
    )


def _cmd_library_build(args: argparse.Namespace) -> int:
    from repro.library import BuildRunner, standard_clocktree_jobs

    auditor = None
    if args.audit:
        from repro.quality import TableAuditor

        auditor = TableAuditor(
            samples=args.audit_samples, error_budget=args.audit_budget,
        )

    config = _library_config(args)
    jobs = standard_clocktree_jobs(
        config,
        frequency=GHz(args.frequency),
        widths=[um(w) for w in args.widths],
        lengths=[um(l) for l in args.lengths],
        spacings=[um(s) for s in args.cap_spacings] if args.cap_spacings else None,
        layer=args.layer,
        name_prefix=args.name_prefix,
    )

    def progress(tick):
        eta = tick.eta_seconds
        eta_text = f"{eta:5.0f} s" if eta != float("inf") else "    ? s"
        print(f"  [{tick.job.kind:>10}] {tick.done}/{tick.total} points "
              f"({tick.elapsed:6.1f} s, {tick.points_per_second:5.2f} pt/s, "
              f"eta {eta_text}, memo {tick.memo_hit_rate:4.0%})",
              end="\r", flush=True)

    runner = BuildRunner(
        args.root,
        workers=args.workers,
        parallel=not args.serial,
        progress=progress if not args.quiet else None,
        auditor=auditor,
        disk_memo=args.disk_memo,
    )
    stats = runner.build(jobs)
    if not args.quiet:
        print()
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        worker_metrics = stats.worker_metrics
        if worker_metrics is not None:
            session.add_worker_metrics(worker_metrics)
        session.add_worker_spans(stats.worker_spans)
        session.add_meta(
            library_root=str(args.root),
            workers=runner.effective_workers if runner.parallel else 1,
            parallel=runner.parallel,
            build_summary=stats.summary(),
        )
        if stats.health:
            session.add_table_health(stats.health.values())
    print(f"library {args.root}: {stats.summary()}")
    for job_stats in stats.jobs:
        state = "warm (skipped)" if job_stats.skipped else (
            f"{job_stats.points_solved} solved"
            + (f", {job_stats.points_resumed} resumed"
               if job_stats.points_resumed else "")
        )
        print(f"  {job_stats.kind:>12}  {job_stats.job_id[:12]}  "
              f"{state}  {job_stats.wall_time:.2f} s")
    if stats.health:
        from repro.quality import render_health

        print(render_health(list(stats.health.values())), end="")
    return 0


def _cmd_library_audit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.library import TableLibrary
    from repro.quality import audit_library, render_health

    lib = TableLibrary(args.root, create=False)
    reports, problems = audit_library(lib, budget=args.budget)
    print(render_health(reports, title=f"library {args.root} health"),
          end="")
    if args.output:
        from repro.ioutil import atomic_write_text

        payload = {
            "library": str(args.root),
            "reports": [r.to_dict() for r in reports],
            "problems": list(problems),
        }
        atomic_write_text(args.output, _json.dumps(payload, indent=1))
        print(f"health artifact -> {args.output}")
    for problem in problems:
        print(f"  PROBLEM {problem}")
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_table_health(reports)
        session.add_meta(library_root=str(args.root),
                         problems=len(problems))
    return 1 if problems else 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.quality import diff_benches, load_bench

    records = [load_bench(path) for path in args.files]
    if len(records) < 2:
        print("bench diff needs at least two records "
              "(baseline... candidate)")
        return 2
    diff = diff_benches(
        records[:-1], records[-1],
        threshold=args.threshold, mad_k=args.mad_k,
    )
    print(diff.render(), end="")
    if diff.nothing_compared:
        return 3
    return 0 if diff.passed else 1


def _cmd_library_list(args: argparse.Namespace) -> int:
    from repro.library import TableLibrary

    lib = TableLibrary(args.root, create=False)
    entries = lib.entries()
    if not entries:
        print(f"library {args.root} is empty")
        return 0
    print(f"library {args.root}: {len(entries)} table(s)")
    print(f"  {'key':>12} {'quantity':>26} {'layer':>6} {'freq [GHz]':>11} "
          f"{'shape':>10}  name")
    for e in entries:
        freq = f"{to_GHz(e.frequency):.3f}" if e.frequency else "-"
        shape = "x".join(str(n) for n in e.shape)
        print(f"  {e.key[:12]:>12} {e.quantity:>26} {e.layer or '-':>6} "
              f"{freq:>11} {shape:>10}  {e.name}")
    return 0


def _cmd_library_info(args: argparse.Namespace) -> int:
    import json as _json

    from repro.library import TableLibrary

    lib = TableLibrary(args.root, create=False)
    entry = lib.entry(args.key)
    table = lib.get(entry.key)
    print(f"key       {entry.key}")
    print(f"name      {entry.name}")
    print(f"quantity  {entry.quantity}")
    print(f"layer     {entry.layer or '-'}")
    print(f"family    {entry.family[:16] + '...' if entry.family else '-'}")
    print(f"frequency {entry.frequency if entry.frequency else '-'}")
    print(f"axes      {', '.join(f'{n}[{s}]' for n, s in zip(entry.axis_names, entry.shape))}")
    print(f"file      {entry.file}")
    print(f"sha256    {entry.sha256}")
    for name, axis in zip(table.axis_names, table.axes):
        print(f"  axis {name}: {axis.min():.4g} .. {axis.max():.4g} m "
              f"({axis.size} points)")
    print(f"  values: {table.values.min():.6g} .. {table.values.max():.6g}")
    if args.json:
        print(_json.dumps(entry.to_dict(), indent=1))
    return 0


def _cmd_library_verify(args: argparse.Namespace) -> int:
    from repro.library import TableLibrary
    from repro.library.store import iter_problems_summary

    lib = TableLibrary(args.root, create=False)
    problems = lib.verify()
    print(f"library {args.root} ({len(lib)} tables): "
          f"{iter_problems_summary(problems)}")
    return 1 if problems else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry import load_report, render_report

    report = load_report(args.file)
    if args.trace_json:
        from repro.telemetry import write_chrome_trace

        path = write_chrome_trace(report, args.trace_json)
        print(f"chrome trace -> {path} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        if not args.spans_jsonl:
            return 0
    if args.spans_jsonl:
        print(report.spans_jsonl(), end="")
        return 0
    print(render_report(report, max_spans=args.max_spans), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path as _Path

    from repro.circuit.lint import lint_spice

    path = _Path(args.netlist)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 2
    report = lint_spice(text, name=path.name)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render())
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_simulation({path.name: {"netlist_health": report.to_dict()}})
    if not report.clean:
        return 1
    if report.warnings and args.strict:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ExtractionService, run_server
    from repro.telemetry.logs import configure_logging, install_stdlib_bridge
    from repro.telemetry.slo import SLOConfig, SLOMonitor

    # Structured JSON logs to stderr (plus --log-file); the stdlib
    # bridge routes http.server / library `logging` calls through the
    # same pipeline so every daemon line is one JSON object.
    configure_logging(
        stream=sys.stderr, path=args.log_file, level=args.log_level,
    )
    install_stdlib_bridge()

    if args.slo_latency_ms <= 0:
        print("--slo-latency-ms must be positive", file=sys.stderr)
        return 2
    service = ExtractionService(
        args.library,
        config=_library_config(args),
        frequency=GHz(args.frequency) if args.frequency else None,
        cache_size=args.cache_size,
        compute_width=args.compute_width,
        max_inflight=args.max_inflight,
        disk_memo=args.disk_memo,
        slo=SLOMonitor(SLOConfig(latency_threshold=args.slo_latency_ms / 1e3)),
    )
    health = service.health()
    print(f"repro serve v{health['version']}: kit {args.library} "
          f"({health['kit']['tables']} tables, "
          f"manifest {health['kit']['manifest_sha'][:12]})")
    if args.disk_memo:
        print(f"  disk memo {args.disk_memo}: "
              f"{service.disk_memo_entries} entries warmed")
    print(f"  http://{args.host}:{args.port}  "
          f"(POST /extract /lookup /skew; "
          f"GET /healthz /metrics /statusz /debug/requests)")
    print(f"  max inflight {args.max_inflight}, result cache "
          f"{args.cache_size}, compute width {args.compute_width}, "
          f"slo latency {args.slo_latency_ms:.0f} ms")
    code = run_server(
        service, host=args.host, port=args.port,
        drain_timeout=args.drain_timeout,
    )
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_slo(service.slo.summary())
        session.add_meta(
            library_root=str(args.library),
            requests_total=service.requests.total,
            rejected=service.limiter.rejected,
        )
    return code


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.loadgen import run_load

    payload = _json.loads(args.payload) if args.payload else {
        "root_length_um": 3000.0, "levels": 2,
    }
    if not isinstance(payload, dict):
        print("--payload must be a JSON object", file=sys.stderr)
        return 2

    server = None
    service = None
    if args.url:
        base_url = args.url
    elif args.library:
        from repro.serve import ExtractionService, start_server

        service = ExtractionService(
            args.library, max_inflight=max(args.max_inflight, args.threads),
        )
        server = start_server(service)
        base_url = server.url
        print(f"in-process daemon on {base_url} (kit {args.library})")
    else:
        print("bench serve needs --url or --library", file=sys.stderr)
        return 2

    try:
        if args.warmup:
            run_load(base_url, args.endpoint, payload,
                     threads=1, requests_per_thread=args.warmup)
        report = run_load(
            base_url, args.endpoint, payload,
            threads=args.threads, requests_per_thread=args.requests,
        )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()

    print(report.summary())
    if report.errors:
        print(f"  WARNING: {report.errors} request(s) failed "
              f"(statuses: {report.to_dict()['status_counts']})")
    if args.record:
        from repro.quality import record_bench

        record_bench(args.record, {"serve_load": report.to_dict()})
        print(f"bench record -> {args.record}")
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_meta(serve_load=report.to_dict())
        if service is not None:
            session.add_slo(service.slo.summary())
    return 1 if report.errors else 0


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="write a structured run report (JSON) to FILE; render it "
             "back with `repro report FILE`",
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="sample wall-clock stacks for the whole run and write "
             "collapsed-stack flamegraph text to FILE",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=5.0, metavar="MS",
        help="sampling interval in milliseconds (default 5)",
    )


def _add_library_parser(sub) -> None:
    p_lib = sub.add_parser(
        "library",
        help="characterization library: build / list / info / verify",
    )
    lib_sub = p_lib.add_subparsers(dest="library_command", required=True)

    p_build = lib_sub.add_parser(
        "build", help="run characterization jobs into a library")
    p_build.add_argument("--root", required=True, help="library directory")
    p_build.add_argument("--layer", default="", help="layer tag, e.g. M5")
    p_build.add_argument("--name-prefix", default="loop")
    p_build.add_argument("--signal-width", type=float, default=10.0,
                         help="nominal signal width [um]")
    p_build.add_argument("--ground-width", type=float, default=5.0)
    p_build.add_argument("--spacing", type=float, default=1.0)
    p_build.add_argument("--thickness", type=float, default=2.0)
    p_build.add_argument("--height-below", type=float, default=2.0)
    p_build.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_build.add_argument("--widths", type=float, nargs="+",
                         default=[4.0, 8.0, 12.0, 16.0], help="[um]")
    p_build.add_argument("--lengths", type=float, nargs="+",
                         default=[500.0, 1500.0, 3000.0, 6000.0], help="[um]")
    p_build.add_argument("--cap-spacings", type=float, nargs="+", default=None,
                         help="also build a C(width, spacing) table [um]")
    p_build.add_argument("--workers", type=int, default=None,
                         help="process count (default: CPU count)")
    p_build.add_argument("--serial", action="store_true",
                         help="disable the process pool")
    p_build.add_argument("--quiet", action="store_true")
    p_build.add_argument("--audit", action="store_true",
                         help="spot-check every freshly built table "
                              "against direct re-solves and embed the "
                              "health report into the manifest")
    p_build.add_argument("--audit-samples", type=int, default=8,
                         help="off-grid sample points per job")
    p_build.add_argument("--disk-memo", default=None, metavar="FILE",
                         help="persistent Lp memo shard warmed before and "
                              "flushed after the build (shared across "
                              "processes and repeated builds)")
    p_build.add_argument("--audit-budget", type=float, default=0.05,
                         help="p95 relative-error budget (fraction)")
    _add_telemetry_arg(p_build)
    _add_profile_args(p_build)
    p_build.set_defaults(func=_cmd_library_build)

    p_list = lib_sub.add_parser("list", help="list stored tables")
    p_list.add_argument("--root", required=True)
    p_list.set_defaults(func=_cmd_library_list)

    p_info = lib_sub.add_parser("info", help="inspect one stored table")
    p_info.add_argument("--root", required=True)
    p_info.add_argument("key", help="cache key (unique prefix ok)")
    p_info.add_argument("--json", action="store_true",
                        help="also dump the manifest entry as JSON")
    p_info.set_defaults(func=_cmd_library_info)

    p_verify = lib_sub.add_parser(
        "verify", help="integrity-check every blob against the manifest")
    p_verify.add_argument("--root", required=True)
    p_verify.set_defaults(func=_cmd_library_verify)

    p_audit = lib_sub.add_parser(
        "audit",
        help="check the table-health reports embedded in the manifest")
    p_audit.add_argument("--root", required=True)
    p_audit.add_argument("--budget", type=float, default=None,
                         help="override the recorded p95 error budget "
                              "(fraction)")
    p_audit.add_argument("--output", default=None, metavar="FILE",
                         help="also write the health reports as JSON")
    _add_telemetry_arg(p_audit)
    p_audit.set_defaults(func=_cmd_library_audit)


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for testing)."""
    from repro.version import get_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clocktree RLC extraction with efficient inductance "
                    "modeling (DATE 2000 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {get_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="Figs. 1-3 delay comparison")
    p_fig1.add_argument("--drive-resistance", type=float, default=15.0)
    _add_telemetry_arg(p_fig1)
    p_fig1.set_defaults(func=_cmd_fig1, manages_telemetry=True)

    p_fig5 = sub.add_parser("fig5", help="Fig. 5 loop-L matrix + Foundations")
    p_fig5.add_argument("--traces", type=int, default=5)
    p_fig5.set_defaults(func=_cmd_fig5)

    sub.add_parser("table1", help="Table I cascading comparison").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("scaling", help="super-linear length scaling").set_defaults(
        func=_cmd_scaling
    )
    p_skew = sub.add_parser("skew", help="H-tree skew RC vs RLC")
    p_skew.add_argument("--library", default=None,
                        help="characterization library to pull tables from")
    p_skew.add_argument("--solver", default="auto",
                        choices=["auto", "dense", "sparse"],
                        help="MNA factorization backend (auto picks dense "
                             "for small trees, sparse at chip scale)")
    _add_telemetry_arg(p_skew)
    p_skew.set_defaults(func=_cmd_skew, manages_telemetry=True)
    sub.add_parser("variation", help="process variation study").set_defaults(
        func=_cmd_variation
    )
    p_accuracy = sub.add_parser("accuracy",
                                help="table accuracy and speedup")
    _add_telemetry_arg(p_accuracy)
    p_accuracy.set_defaults(func=_cmd_accuracy, manages_telemetry=True)

    p_run = sub.add_parser(
        "run",
        help="run a registered scenario through the run ledger "
             "(skip-if-done, provenance, telemetry)")
    p_run.add_argument("scenario", nargs="?", default=None,
                       help="scenario name (see --list); parameters are "
                            "overridden with --PARAM=value tokens")
    p_run.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list registered scenarios and their params")
    p_run.add_argument("--force", action="store_true",
                       help="execute even when an identical completed "
                            "run is already in the ledger")
    p_run.add_argument("--ledger", default=None, metavar="DIR",
                       help="run-ledger directory (default: $REPRO_LEDGER "
                            "or .repro/runs)")
    p_run.add_argument("--json", action="store_true",
                       help="emit run id/key/params/metrics as JSON")
    _add_telemetry_arg(p_run)
    p_run.set_defaults(func=_cmd_run, manages_telemetry=True)

    p_runs = sub.add_parser(
        "runs", help="inspect the run ledger: list / show / diff / gc")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _ledger_arg(p):
        p.add_argument("--ledger", default=None, metavar="DIR",
                       help="run-ledger directory (default: $REPRO_LEDGER "
                            "or .repro/runs)")

    p_rlist = runs_sub.add_parser("list", help="list recorded runs")
    _ledger_arg(p_rlist)
    p_rlist.add_argument("--scenario", default=None,
                         help="only runs of this scenario")
    p_rlist.add_argument("--sha", default=None,
                         help="only runs from a git sha (prefix ok)")
    p_rlist.add_argument("--since", type=float, default=None, metavar="DAYS",
                         help="only runs started in the last DAYS days")
    p_rlist.add_argument("--status", default=None,
                         choices=["completed", "failed"])
    p_rlist.add_argument("--json", action="store_true",
                         help="emit the index rows as JSON")
    p_rlist.set_defaults(func=_scenario_guard(_cmd_runs_list))

    p_rshow = runs_sub.add_parser(
        "show", help="render one run: provenance, params, metrics")
    _ledger_arg(p_rshow)
    p_rshow.add_argument("run",
                         help="run id prefix, <scenario> (latest), or "
                              "<scenario>@<sha-prefix>")
    p_rshow.add_argument("--report", action="store_true",
                         help="also render the captured telemetry report")
    p_rshow.add_argument("--max-spans", type=int, default=40,
                         help="span-tree lines when rendering --report")
    p_rshow.add_argument("--logs", action="store_true",
                         help="also dump captured structured logs (JSONL)")
    p_rshow.add_argument("--json", action="store_true",
                         help="emit the full run record as JSON")
    p_rshow.set_defaults(func=_scenario_guard(_cmd_runs_show))

    p_rdiff = runs_sub.add_parser(
        "diff",
        help="compare two runs' metrics; exits 1 when a "
             "direction-aware metric regressed")
    _ledger_arg(p_rdiff)
    p_rdiff.add_argument("baseline",
                         help="run id prefix, <scenario>, or "
                              "<scenario>@<sha-prefix>")
    p_rdiff.add_argument("candidate", help="same selector forms")
    p_rdiff.add_argument("--threshold", type=float, default=0.25,
                         help="relative regression gate per metric")
    p_rdiff.add_argument("--mad-k", type=float, default=3.0,
                         help="MAD multiplier widening the gate")
    p_rdiff.set_defaults(func=_scenario_guard(_cmd_runs_diff))

    p_rgc = runs_sub.add_parser(
        "gc", help="prune old runs by age and/or count")
    _ledger_arg(p_rgc)
    p_rgc.add_argument("--max-age-days", type=float, default=None,
                       help="drop runs older than this many days")
    p_rgc.add_argument("--keep", type=int, default=None,
                       help="keep at most this many newest runs")
    p_rgc.set_defaults(func=_scenario_guard(_cmd_runs_gc))

    p_sweep = sub.add_parser(
        "sweep",
        help="parameter-sweep campaigns over a scenario: "
             "run / status / report / diff")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_srun = sweep_sub.add_parser(
        "run",
        help="run a grid/Monte-Carlo sweep; every point is one ledger "
             "run (skip-if-done = free resume)")
    p_srun.add_argument("scenario",
                        help="registered scenario name (see `repro run "
                             "--list`); fixed base overrides are given "
                             "as --PARAM=value tokens")
    p_srun.add_argument("--grid", action="append", metavar="PARAM=v1,v2",
                        help="one cartesian grid axis (repeatable)")
    p_srun.add_argument("--point", action="append",
                        metavar="PARAM=v[,PARAM=v...]",
                        help="one explicit point (repeatable)")
    p_srun.add_argument("--mc", action="append",
                        metavar="PARAM=normal(mu,sigma)",
                        help="one seeded Monte-Carlo axis: normal/"
                             "uniform/lognormal (repeatable)")
    p_srun.add_argument("--samples", type=int, default=1,
                        help="Monte-Carlo samples per grid point")
    p_srun.add_argument("--seed", type=int, default=0,
                        help="Monte-Carlo seed (draws are fully "
                             "deterministic given the seed)")
    p_srun.add_argument("--workers", type=int, default=1,
                        help="process count; each point runs in its "
                             "own worker")
    p_srun.add_argument("--force", action="store_true",
                        help="re-execute points the ledger already has")
    p_srun.add_argument("--ledger", default=None, metavar="DIR",
                        help="run-ledger directory (default: "
                             "$REPRO_LEDGER or .repro/runs)")
    p_srun.add_argument("--json", action="store_true",
                        help="emit the campaign summary as JSON")
    p_srun.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line (stderr)")
    _add_telemetry_arg(p_srun)
    p_srun.set_defaults(func=_cmd_sweep_run, manages_telemetry=True)

    p_sstat = sweep_sub.add_parser(
        "status", help="list recorded sweep campaigns")
    p_sstat.add_argument("--ledger", default=None, metavar="DIR")
    p_sstat.add_argument("--scenario", default=None,
                         help="only campaigns over this scenario")
    p_sstat.add_argument("--json", action="store_true",
                         help="emit the campaign index rows as JSON")
    p_sstat.set_defaults(func=_scenario_guard(_cmd_sweep_status))

    p_srep = sweep_sub.add_parser(
        "report",
        help="render one campaign: point table, per-axis marginals, "
             "best/worst points, failures")
    p_srep.add_argument("campaign",
                        help="campaign id prefix, <scenario> (latest), "
                             "or sweep-id prefix")
    p_srep.add_argument("--ledger", default=None, metavar="DIR")
    p_srep.add_argument("--json", action="store_true",
                        help="emit the full campaign record as JSON")
    p_srep.set_defaults(func=_scenario_guard(_cmd_sweep_report))

    p_sdiff = sweep_sub.add_parser(
        "diff",
        help="compare two campaigns point-by-point; exits 1 on a "
             "direction-aware regression, 3 when nothing compared")
    p_sdiff.add_argument("baseline", help="campaign selector")
    p_sdiff.add_argument("candidate", help="campaign selector")
    p_sdiff.add_argument("--ledger", default=None, metavar="DIR")
    p_sdiff.add_argument("--threshold", type=float, default=0.25,
                         help="relative regression gate per metric")
    p_sdiff.add_argument("--mad-k", type=float, default=3.0,
                         help="MAD multiplier widening the gate")
    p_sdiff.set_defaults(func=_scenario_guard(_cmd_sweep_diff))

    p_xtalk = sub.add_parser("crosstalk", help="bus aggressor/victim noise")
    p_xtalk.add_argument("--traces", type=int, default=7)
    p_xtalk.add_argument("--width", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--spacing", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--length", type=float, default=2000.0, help="[um]")
    p_xtalk.add_argument("--thickness", type=float, default=1.0, help="[um]")
    p_xtalk.add_argument("--height-below", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--frequency", type=float, default=6.4, help="[GHz]")
    p_xtalk.set_defaults(func=_cmd_crosstalk)

    p_spice = sub.add_parser("spice", help="export an extracted clocktree deck")
    p_spice.add_argument("--output", required=True, help="output .sp file")
    p_spice.add_argument("--levels", type=int, default=2)
    p_spice.add_argument("--root-length", type=float, default=4000.0,
                         help="[um]")
    p_spice.add_argument("--signal-width", type=float, default=10.0)
    p_spice.add_argument("--ground-width", type=float, default=5.0)
    p_spice.add_argument("--spacing", type=float, default=1.0)
    p_spice.add_argument("--thickness", type=float, default=2.0)
    p_spice.add_argument("--height-below", type=float, default=2.0)
    p_spice.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_spice.add_argument("--rc-only", action="store_true",
                         help="omit the inductances")
    p_spice.set_defaults(func=_cmd_spice)

    p_char = sub.add_parser("characterize", help="build and save loop tables")
    p_char.add_argument("--output", required=True, help="output directory")
    p_char.add_argument("--signal-width", type=float, default=10.0,
                        help="nominal signal width [um]")
    p_char.add_argument("--ground-width", type=float, default=5.0)
    p_char.add_argument("--spacing", type=float, default=1.0)
    p_char.add_argument("--thickness", type=float, default=2.0)
    p_char.add_argument("--height-below", type=float, default=2.0)
    p_char.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_char.add_argument("--widths", type=float, nargs="+",
                        default=[4.0, 8.0, 12.0, 16.0], help="[um]")
    p_char.add_argument("--lengths", type=float, nargs="+",
                        default=[500.0, 1500.0, 3000.0, 6000.0], help="[um]")
    _add_telemetry_arg(p_char)
    p_char.set_defaults(func=_cmd_characterize)

    _add_library_parser(sub)

    p_bench = sub.add_parser(
        "bench", help="benchmark records: regression diff")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bdiff = bench_sub.add_parser(
        "diff",
        help="compare a candidate bench record against baseline history; "
             "exits nonzero on regressions")
    p_bdiff.add_argument(
        "files", nargs="+", metavar="FILE",
        help="bench/telemetry JSON records: one or more baselines "
             "followed by the candidate (last)")
    p_bdiff.add_argument("--threshold", type=float, default=0.25,
                         help="relative regression gate per metric "
                              "(default 0.25)")
    p_bdiff.add_argument("--mad-k", type=float, default=3.0,
                         help="MAD multiplier widening the gate on noisy "
                              "baselines")
    p_bdiff.set_defaults(func=_cmd_bench_diff)

    p_bserve = bench_sub.add_parser(
        "serve",
        help="load-test an extraction daemon: N threads x M requests, "
             "latency percentiles + RPS")
    p_bserve.add_argument("--url", default=None,
                          help="base URL of a running daemon "
                               "(e.g. http://127.0.0.1:8080)")
    p_bserve.add_argument("--library", default=None, metavar="ROOT",
                          help="start an in-process daemon over this kit "
                               "instead of targeting --url")
    p_bserve.add_argument("--endpoint", default="extract",
                          choices=["extract", "lookup", "skew"])
    p_bserve.add_argument("--payload", default=None,
                          help="JSON request body (default: a 2-level "
                               "3000 um extract)")
    p_bserve.add_argument("--threads", type=int, default=4)
    p_bserve.add_argument("--requests", type=int, default=25,
                          help="requests per thread")
    p_bserve.add_argument("--warmup", type=int, default=1,
                          help="untimed warmup requests (0 for a "
                               "cold-cache measurement)")
    p_bserve.add_argument("--max-inflight", type=int, default=8,
                          help="daemon admission ceiling (in-process "
                               "mode; raised to --threads if lower)")
    p_bserve.add_argument("--record", default=None, metavar="FILE",
                          help="write/merge a BENCH_*.json record "
                               "gated by `repro bench diff`")
    _add_telemetry_arg(p_bserve)
    _add_profile_args(p_bserve)
    p_bserve.set_defaults(func=_cmd_bench_serve)

    p_report = sub.add_parser(
        "report", help="render a --telemetry run report (span tree + metrics)")
    p_report.add_argument("file", help="report JSON written by --telemetry")
    p_report.add_argument("--max-spans", type=int, default=200,
                          help="span-tree lines to render before truncating")
    p_report.add_argument("--spans-jsonl", action="store_true",
                          help="dump the flattened span records as JSONL "
                               "instead of rendering")
    p_report.add_argument("--trace-json", default=None, metavar="FILE",
                          help="export the span tree as a Chrome "
                               "trace-event (Perfetto) timeline to FILE")
    p_report.set_defaults(func=_cmd_report)

    p_serve = sub.add_parser(
        "serve",
        help="extraction-as-a-service daemon over a characterization kit")
    p_serve.add_argument("--library", required=True, metavar="ROOT",
                         help="characterization library (kit) to serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="admission ceiling; beyond it requests "
                              "get 429 immediately")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="result-cache entries (LRU)")
    p_serve.add_argument("--compute-width", type=int, default=1,
                         help="distinct cache-missing computations "
                              "running at once (memo locality gate)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds to wait for in-flight requests "
                              "on SIGTERM")
    p_serve.add_argument("--frequency", type=float, default=None,
                         help="extraction frequency [GHz] (default: the "
                              "kit's characterized frequency)")
    p_serve.add_argument("--disk-memo", default=None, metavar="FILE",
                         help="persistent Lp memo shard warmed at startup")
    p_serve.add_argument("--signal-width", type=float, default=10.0,
                         help="default geometry [um]; must match the "
                              "kit's characterized family for table hits")
    p_serve.add_argument("--ground-width", type=float, default=5.0)
    p_serve.add_argument("--spacing", type=float, default=1.0)
    p_serve.add_argument("--thickness", type=float, default=2.0)
    p_serve.add_argument("--height-below", type=float, default=2.0)
    p_serve.add_argument("--log-file", default=None, metavar="FILE",
                         help="also append the structured JSON logs "
                              "(access log included) to FILE")
    p_serve.add_argument("--log-level", default="info",
                         choices=["debug", "info", "warning", "error"],
                         help="minimum structured-log severity")
    p_serve.add_argument("--slo-latency-ms", type=float, default=500.0,
                         help="latency-SLI threshold [ms] for the "
                              "rolling SLO monitor")
    _add_telemetry_arg(p_serve)
    _add_profile_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="netlist health lint for a SPICE deck; exits nonzero "
                     "on errors")
    p_lint.add_argument("netlist", help="SPICE deck (.sp) to check")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the health report as JSON")
    p_lint.add_argument("--strict", action="store_true",
                        help="also fail (exit 1) on warnings")
    _add_telemetry_arg(p_lint)
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def _extract_param_overrides(argv: List[str]):
    """Split ``--PARAM=value`` scenario overrides out of *argv*.

    argparse cannot model per-scenario parameter names, so UPPERCASE
    ``--NAME=value`` tokens are lifted before parsing and handed to the
    scenario runner, which validates them against the scenario's typed
    defaults.
    """
    overrides = {}
    rest = []
    for token in argv:
        match = _PARAM_OVERRIDE.match(token)
        if match:
            overrides[match.group(1)] = match.group(2)
        else:
            rest.append(token)
    return overrides, rest


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    overrides, argv = _extract_param_overrides(list(argv))
    args = parser.parse_args(argv)
    if overrides and args.command not in ("run", "sweep"):
        print("error: --PARAM=value overrides are only valid with "
              "`repro run <scenario>` or `repro sweep run <scenario>`",
              file=sys.stderr)
        return 2
    args.param_overrides = overrides
    profile_path = getattr(args, "profile", None)
    profiler = None
    if profile_path:
        from repro.telemetry.profiler import SamplingProfiler

        interval_ms = getattr(args, "profile_interval", 5.0)
        profiler = SamplingProfiler(interval=interval_ms / 1e3).start()
    try:
        return _dispatch(args, profiler)
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.write_collapsed(profile_path)
            print(f"profile ({profiler.samples} samples, "
                  f"{len(profiler.stacks)} stacks) -> {profile_path}")


def _dispatch(args: argparse.Namespace, profiler=None) -> int:
    """Run the selected command, inside a telemetry session if asked."""
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path is None or getattr(args, "manages_telemetry", False):
        # Scenario-routed commands open their own session (the runner
        # records it in the ledger); nesting a second one here would
        # double-wrap the tracer.
        return args.func(args)

    from repro.telemetry import telemetry_session

    command = args.command
    library_command = getattr(args, "library_command", None)
    if library_command:
        command = f"{command} {library_command}"
    with telemetry_session(f"repro {command}") as session:
        # Commands that aggregate worker telemetry (library build) pick
        # the session up from the namespace.
        args._telemetry_session = session
        code = args.func(args)
        if profiler is not None:
            # Stop before the session assembles so the report's v4
            # ``profile`` section covers exactly the command's work.
            profiler.stop()
            session.add_profile(profiler.summary())
    report = session.report
    assert report is not None  # telemetry_session always assembles one
    report.meta.setdefault("exit_code", code)
    path = report.save(telemetry_path)
    print(f"telemetry report -> {path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
