"""Command-line front end: run the paper's experiments from a shell.

``repro <experiment>`` (or ``python -m repro <experiment>``) runs one of
the reproduction experiments and prints its headline numbers;
``repro characterize`` builds and saves extraction tables for a CPW
family.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro.constants import GHz, to_GHz, to_nH, to_pF, to_ps, um


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig1

    result = run_fig1(drive_resistance=args.drive_resistance)
    print("Fig. 1 co-planar waveguide clock net (6000 um)")
    print(f"  extracted R = {result.rlc.resistance:8.2f} ohm")
    print(f"  extracted L = {to_nH(result.rlc.inductance):8.3f} nH")
    print(f"  extracted C = {to_pF(result.rlc.capacitance):8.3f} pF")
    print(f"  delay RC   = {to_ps(result.delay_rc):7.2f} ps   (paper: 28.01 ps)")
    print(f"  delay RLC  = {to_ps(result.delay_rlc):7.2f} ps   (paper: 47.60 ps)")
    print(f"  delay ratio = {result.delay_ratio:5.2f}          (paper: 1.70)")
    print(f"  overshoot  = {result.overshoot_rlc * 100.0:5.1f} %")
    print(f"  undershoot = {result.undershoot_rlc * 100.0:5.1f} %")
    _emit_simulation(args, result.simulation_reports())
    return 0


def _emit_simulation(args: argparse.Namespace, sections) -> None:
    """Print simulation-health one-liners and feed the v3 report section."""
    for label in sorted(sections):
        section = sections[label]
        diag = section.get("diagnostics")
        health = section.get("netlist_health")
        parts = []
        if health is not None:
            parts.append("netlist clean" if health["clean"] else
                         f"netlist {health['num_errors']} error(s)")
        if diag is not None:
            parts.append(f"LTE p95 {diag['lte_p95']:.1e}")
            parts.append(f"energy residual {diag['energy_residual']:.1e}")
            if not diag.get("dt_adequate", True):
                parts.append("dt UNDERSAMPLED")
        if parts:
            print(f"  [{label}] " + ", ".join(parts))
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_simulation(sections)


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5

    result = run_fig5(n_traces=args.traces)
    print(f"Fig. 5 loop inductance matrix [nH] at {to_GHz(result.frequency):.1f} GHz")
    header = "       " + "".join(f"{name:>9}" for name in result.trace_names)
    print(header)
    for name, row in zip(result.trace_names, result.loop_matrix):
        cells = "".join(f"{to_nH(v):9.4f}" for v in row)
        print(f"  {name:>5}{cells}")
    f1, f2 = result.foundation1, result.foundation2
    print(f"  Foundation 1: {to_nH(f1.full_value):.4f} vs {to_nH(f1.reduced_value):.4f} nH"
          f"  (error {f1.relative_error * 100.0:.2f} %)")
    print(f"  Foundation 2: {to_nH(f2.full_value):.4f} vs {to_nH(f2.reduced_value):.4f} nH"
          f"  (error {f2.relative_error * 100.0:.2f} %)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    result = run_table1()
    print("Table I: linear cascading comparison "
          f"(at {to_GHz(result.frequency):.1f} GHz; paper errors: 3.57 %, 1.55 %)")
    print(f"  {'structure':>10} {'full L [nH]':>12} {'S/P comb [nH]':>14} {'error':>8}")
    for row in result.rows:
        cmp_ = row.comparison
        print(f"  {row.name:>10} {to_nH(cmp_.full_inductance):12.4f} "
              f"{to_nH(cmp_.combined_inductance):14.4f} {row.error_percent:7.2f}%")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import run_length_scaling

    result = run_length_scaling()
    print("Super-linear inductance length scaling (Sec. V)")
    print(f"  {'length [um]':>12} {'self L [nH]':>12} {'mutual L [nH]':>14}")
    for length, ls, lm in zip(
        result.lengths, result.self_inductance, result.mutual_inductance
    ):
        print(f"  {length * 1e6:12.0f} {to_nH(ls):12.4f} {to_nH(lm):14.4f}")
    print(f"  L(2000um)/L(1000um) = {result.doubling_ratio(1e-3):.3f} "
          "(paper: about 2.2)")
    return 0


def _cmd_skew(args: argparse.Namespace) -> int:
    from repro.experiments import run_htree_skew

    result = run_htree_skew(
        library=getattr(args, "library", None),
        solver=getattr(args, "solver", "auto"),
    )
    print("H-tree clock skew, RC-only vs RLC netlist (Sec. V)")
    print(f"  sinks: {result.htree.num_sinks}, levels: {result.htree.num_levels}")
    print(f"  skew RC  = {to_ps(result.rc_skew):7.2f} ps")
    print(f"  skew RLC = {to_ps(result.rlc_skew):7.2f} ps")
    print(f"  skew discrepancy  = {result.skew_discrepancy_percent:5.1f} % "
          "(paper: can exceed 10 %)")
    print(f"  delay discrepancy = {result.delay_discrepancy_percent:5.1f} %")
    _emit_simulation(args, result.comparison.simulation_reports())
    return 0


def _cmd_variation(args: argparse.Namespace) -> int:
    from repro.experiments import run_process_variation

    result = run_process_variation()
    print("Process variation: statistical RC vs nominal L (Sec. V)")
    print(f"  R spread (sigma/mean) = {result.r_spread * 100.0:5.2f} %")
    print(f"  C spread (sigma/mean) = {result.c_spread * 100.0:5.2f} %")
    print(f"  L spread (sigma/mean) = {result.l_spread * 100.0:5.2f} %")
    print(f"  L is {result.l_insensitivity_factor:.1f}x steadier than R/C "
          "-- nominal-L + statistical-RC is justified")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.experiments import run_table_accuracy

    result = run_table_accuracy()
    print("Table-based extraction accuracy and speed (Sec. III)")
    print(f"  characterization time: {result.characterization_time:.2f} s")
    print(f"  {'width [um]':>11} {'length [um]':>12} {'table [nH]':>11} "
          f"{'direct [nH]':>12} {'error':>8} {'speedup':>9}")
    for probe in result.probes:
        print(f"  {probe.width * 1e6:11.1f} {probe.length * 1e6:12.0f} "
              f"{to_nH(probe.table_inductance):11.4f} "
              f"{to_nH(probe.direct_inductance):12.4f} "
              f"{probe.relative_error * 100.0:7.2f}% {probe.speedup:8.0f}x")
    return 0


def _cmd_crosstalk(args: argparse.Namespace) -> int:
    from repro.bus import BusRLCExtractor, crosstalk_analysis
    from repro.geometry.trace import TraceBlock
    from repro.rc.capacitance import CapacitanceModel

    n = args.traces
    block = TraceBlock.from_widths_and_spacings(
        widths=[um(args.width)] * n,
        spacings=[um(args.spacing)] * (n - 1),
        length=um(args.length),
        thickness=um(args.thickness),
    )
    extractor = BusRLCExtractor(
        frequency=GHz(args.frequency),
        capacitance_model=CapacitanceModel(height_below=um(args.height_below)),
    )
    bus = extractor.extract(block)
    aggressor = f"T{(n + 1) // 2}"
    full = crosstalk_analysis(extractor, bus, aggressor=aggressor)
    cap_only = crosstalk_analysis(extractor, bus, aggressor=aggressor,
                                  include_mutual=False)
    print(f"{n}-trace bus crosstalk, aggressor {aggressor} "
          "(outer traces are shields)")
    print(f"  {'victim':>7} {'full RLC':>12} {'cap-only':>12}")
    for victim in sorted(full.victim_noise_peak):
        print(f"  {victim:>7} {full.noise_of(victim) * 1e3:9.1f} mV "
              f"{cap_only.noise_of(victim) * 1e3:9.1f} mV")
    print("  inductive coupling is long-range: far victims lose most of")
    print("  their noise when the mutual inductances are dropped.")
    return 0


def _cmd_spice(args: argparse.Namespace) -> int:
    from repro.circuit.spice_export import write_spice
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.clocktree.extractor import ClocktreeRLCExtractor
    from repro.clocktree.htree import HTree

    config = CoplanarWaveguideConfig(
        signal_width=um(args.signal_width), ground_width=um(args.ground_width),
        spacing=um(args.spacing), thickness=um(args.thickness),
        height_below=um(args.height_below),
    )
    extractor = ClocktreeRLCExtractor(config, frequency=GHz(args.frequency))
    htree = HTree.generate(levels=args.levels,
                           root_length=um(args.root_length), config=config)
    netlist = extractor.build_netlist(
        htree, include_inductance=not args.rc_only
    )
    path = write_spice(
        netlist.circuit, args.output,
        title=f"repro clocktree ({'RC' if args.rc_only else 'RLC'})",
        analyses=("tran 0.5p 3n",),
        probes=sorted(netlist.sink_nodes.values()),
    )
    print(f"wrote {path} ({path.read_text().count(chr(10))} cards, "
          f"{len(netlist.sink_nodes)} sinks)")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.clocktree.configs import CoplanarWaveguideConfig
    from repro.core.extraction import TableBasedExtractor

    config = CoplanarWaveguideConfig(
        signal_width=um(args.signal_width),
        ground_width=um(args.ground_width),
        spacing=um(args.spacing),
        thickness=um(args.thickness),
        height_below=um(args.height_below),
    )
    widths = [um(w) for w in args.widths]
    lengths = [um(l) for l in args.lengths]
    extractor = TableBasedExtractor.characterize(
        config, frequency=GHz(args.frequency), widths=widths, lengths=lengths,
    )
    extractor.save(args.output)
    print(f"characterized {len(widths)}x{len(lengths)} loop tables "
          f"at {args.frequency:.2f} GHz -> {args.output}")
    return 0


def _library_config(args: argparse.Namespace):
    from repro.clocktree.configs import CoplanarWaveguideConfig

    return CoplanarWaveguideConfig(
        signal_width=um(args.signal_width),
        ground_width=um(args.ground_width),
        spacing=um(args.spacing),
        thickness=um(args.thickness),
        height_below=um(args.height_below),
    )


def _cmd_library_build(args: argparse.Namespace) -> int:
    from repro.library import BuildRunner, standard_clocktree_jobs

    auditor = None
    if args.audit:
        from repro.quality import TableAuditor

        auditor = TableAuditor(
            samples=args.audit_samples, error_budget=args.audit_budget,
        )

    config = _library_config(args)
    jobs = standard_clocktree_jobs(
        config,
        frequency=GHz(args.frequency),
        widths=[um(w) for w in args.widths],
        lengths=[um(l) for l in args.lengths],
        spacings=[um(s) for s in args.cap_spacings] if args.cap_spacings else None,
        layer=args.layer,
        name_prefix=args.name_prefix,
    )

    def progress(tick):
        eta = tick.eta_seconds
        eta_text = f"{eta:5.0f} s" if eta != float("inf") else "    ? s"
        print(f"  [{tick.job.kind:>10}] {tick.done}/{tick.total} points "
              f"({tick.elapsed:6.1f} s, {tick.points_per_second:5.2f} pt/s, "
              f"eta {eta_text}, memo {tick.memo_hit_rate:4.0%})",
              end="\r", flush=True)

    runner = BuildRunner(
        args.root,
        workers=args.workers,
        parallel=not args.serial,
        progress=progress if not args.quiet else None,
        auditor=auditor,
        disk_memo=args.disk_memo,
    )
    stats = runner.build(jobs)
    if not args.quiet:
        print()
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        worker_metrics = stats.worker_metrics
        if worker_metrics is not None:
            session.add_worker_metrics(worker_metrics)
        session.add_worker_spans(stats.worker_spans)
        session.add_meta(
            library_root=str(args.root),
            workers=runner.effective_workers if runner.parallel else 1,
            parallel=runner.parallel,
            build_summary=stats.summary(),
        )
        if stats.health:
            session.add_table_health(stats.health.values())
    print(f"library {args.root}: {stats.summary()}")
    for job_stats in stats.jobs:
        state = "warm (skipped)" if job_stats.skipped else (
            f"{job_stats.points_solved} solved"
            + (f", {job_stats.points_resumed} resumed"
               if job_stats.points_resumed else "")
        )
        print(f"  {job_stats.kind:>12}  {job_stats.job_id[:12]}  "
              f"{state}  {job_stats.wall_time:.2f} s")
    if stats.health:
        from repro.quality import render_health

        print(render_health(list(stats.health.values())), end="")
    return 0


def _cmd_library_audit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.library import TableLibrary
    from repro.quality import audit_library, render_health

    lib = TableLibrary(args.root, create=False)
    reports, problems = audit_library(lib, budget=args.budget)
    print(render_health(reports, title=f"library {args.root} health"),
          end="")
    if args.output:
        from repro.ioutil import atomic_write_text

        payload = {
            "library": str(args.root),
            "reports": [r.to_dict() for r in reports],
            "problems": list(problems),
        }
        atomic_write_text(args.output, _json.dumps(payload, indent=1))
        print(f"health artifact -> {args.output}")
    for problem in problems:
        print(f"  PROBLEM {problem}")
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_table_health(reports)
        session.add_meta(library_root=str(args.root),
                         problems=len(problems))
    return 1 if problems else 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.quality import diff_benches, load_bench

    records = [load_bench(path) for path in args.files]
    if len(records) < 2:
        print("bench diff needs at least two records "
              "(baseline... candidate)")
        return 2
    diff = diff_benches(
        records[:-1], records[-1],
        threshold=args.threshold, mad_k=args.mad_k,
    )
    print(diff.render(), end="")
    return 0 if diff.passed else 1


def _cmd_library_list(args: argparse.Namespace) -> int:
    from repro.library import TableLibrary

    lib = TableLibrary(args.root, create=False)
    entries = lib.entries()
    if not entries:
        print(f"library {args.root} is empty")
        return 0
    print(f"library {args.root}: {len(entries)} table(s)")
    print(f"  {'key':>12} {'quantity':>26} {'layer':>6} {'freq [GHz]':>11} "
          f"{'shape':>10}  name")
    for e in entries:
        freq = f"{to_GHz(e.frequency):.3f}" if e.frequency else "-"
        shape = "x".join(str(n) for n in e.shape)
        print(f"  {e.key[:12]:>12} {e.quantity:>26} {e.layer or '-':>6} "
              f"{freq:>11} {shape:>10}  {e.name}")
    return 0


def _cmd_library_info(args: argparse.Namespace) -> int:
    import json as _json

    from repro.library import TableLibrary

    lib = TableLibrary(args.root, create=False)
    entry = lib.entry(args.key)
    table = lib.get(entry.key)
    print(f"key       {entry.key}")
    print(f"name      {entry.name}")
    print(f"quantity  {entry.quantity}")
    print(f"layer     {entry.layer or '-'}")
    print(f"family    {entry.family[:16] + '...' if entry.family else '-'}")
    print(f"frequency {entry.frequency if entry.frequency else '-'}")
    print(f"axes      {', '.join(f'{n}[{s}]' for n, s in zip(entry.axis_names, entry.shape))}")
    print(f"file      {entry.file}")
    print(f"sha256    {entry.sha256}")
    for name, axis in zip(table.axis_names, table.axes):
        print(f"  axis {name}: {axis.min():.4g} .. {axis.max():.4g} m "
              f"({axis.size} points)")
    print(f"  values: {table.values.min():.6g} .. {table.values.max():.6g}")
    if args.json:
        print(_json.dumps(entry.to_dict(), indent=1))
    return 0


def _cmd_library_verify(args: argparse.Namespace) -> int:
    from repro.library import TableLibrary
    from repro.library.store import iter_problems_summary

    lib = TableLibrary(args.root, create=False)
    problems = lib.verify()
    print(f"library {args.root} ({len(lib)} tables): "
          f"{iter_problems_summary(problems)}")
    return 1 if problems else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry import load_report, render_report

    report = load_report(args.file)
    if args.trace_json:
        from repro.telemetry import write_chrome_trace

        path = write_chrome_trace(report, args.trace_json)
        print(f"chrome trace -> {path} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        if not args.spans_jsonl:
            return 0
    if args.spans_jsonl:
        print(report.spans_jsonl(), end="")
        return 0
    print(render_report(report, max_spans=args.max_spans), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path as _Path

    from repro.circuit.lint import lint_spice

    path = _Path(args.netlist)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 2
    report = lint_spice(text, name=path.name)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render())
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_simulation({path.name: {"netlist_health": report.to_dict()}})
    if not report.clean:
        return 1
    if report.warnings and args.strict:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ExtractionService, run_server
    from repro.telemetry.logs import configure_logging, install_stdlib_bridge
    from repro.telemetry.slo import SLOConfig, SLOMonitor

    # Structured JSON logs to stderr (plus --log-file); the stdlib
    # bridge routes http.server / library `logging` calls through the
    # same pipeline so every daemon line is one JSON object.
    configure_logging(
        stream=sys.stderr, path=args.log_file, level=args.log_level,
    )
    install_stdlib_bridge()

    if args.slo_latency_ms <= 0:
        print("--slo-latency-ms must be positive", file=sys.stderr)
        return 2
    service = ExtractionService(
        args.library,
        config=_library_config(args),
        frequency=GHz(args.frequency) if args.frequency else None,
        cache_size=args.cache_size,
        compute_width=args.compute_width,
        max_inflight=args.max_inflight,
        disk_memo=args.disk_memo,
        slo=SLOMonitor(SLOConfig(latency_threshold=args.slo_latency_ms / 1e3)),
    )
    health = service.health()
    print(f"repro serve v{health['version']}: kit {args.library} "
          f"({health['kit']['tables']} tables, "
          f"manifest {health['kit']['manifest_sha'][:12]})")
    if args.disk_memo:
        print(f"  disk memo {args.disk_memo}: "
              f"{service.disk_memo_entries} entries warmed")
    print(f"  http://{args.host}:{args.port}  "
          f"(POST /extract /lookup /skew; "
          f"GET /healthz /metrics /statusz /debug/requests)")
    print(f"  max inflight {args.max_inflight}, result cache "
          f"{args.cache_size}, compute width {args.compute_width}, "
          f"slo latency {args.slo_latency_ms:.0f} ms")
    code = run_server(
        service, host=args.host, port=args.port,
        drain_timeout=args.drain_timeout,
    )
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_slo(service.slo.summary())
        session.add_meta(
            library_root=str(args.library),
            requests_total=service.requests.total,
            rejected=service.limiter.rejected,
        )
    return code


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.loadgen import run_load

    payload = _json.loads(args.payload) if args.payload else {
        "root_length_um": 3000.0, "levels": 2,
    }
    if not isinstance(payload, dict):
        print("--payload must be a JSON object", file=sys.stderr)
        return 2

    server = None
    service = None
    if args.url:
        base_url = args.url
    elif args.library:
        from repro.serve import ExtractionService, start_server

        service = ExtractionService(
            args.library, max_inflight=max(args.max_inflight, args.threads),
        )
        server = start_server(service)
        base_url = server.url
        print(f"in-process daemon on {base_url} (kit {args.library})")
    else:
        print("bench serve needs --url or --library", file=sys.stderr)
        return 2

    try:
        if args.warmup:
            run_load(base_url, args.endpoint, payload,
                     threads=1, requests_per_thread=args.warmup)
        report = run_load(
            base_url, args.endpoint, payload,
            threads=args.threads, requests_per_thread=args.requests,
        )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()

    print(report.summary())
    if report.errors:
        print(f"  WARNING: {report.errors} request(s) failed "
              f"(statuses: {report.to_dict()['status_counts']})")
    if args.record:
        from repro.quality import record_bench

        record_bench(args.record, {"serve_load": report.to_dict()})
        print(f"bench record -> {args.record}")
    session = getattr(args, "_telemetry_session", None)
    if session is not None:
        session.add_meta(serve_load=report.to_dict())
        if service is not None:
            session.add_slo(service.slo.summary())
    return 1 if report.errors else 0


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="write a structured run report (JSON) to FILE; render it "
             "back with `repro report FILE`",
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="sample wall-clock stacks for the whole run and write "
             "collapsed-stack flamegraph text to FILE",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=5.0, metavar="MS",
        help="sampling interval in milliseconds (default 5)",
    )


def _add_library_parser(sub) -> None:
    p_lib = sub.add_parser(
        "library",
        help="characterization library: build / list / info / verify",
    )
    lib_sub = p_lib.add_subparsers(dest="library_command", required=True)

    p_build = lib_sub.add_parser(
        "build", help="run characterization jobs into a library")
    p_build.add_argument("--root", required=True, help="library directory")
    p_build.add_argument("--layer", default="", help="layer tag, e.g. M5")
    p_build.add_argument("--name-prefix", default="loop")
    p_build.add_argument("--signal-width", type=float, default=10.0,
                         help="nominal signal width [um]")
    p_build.add_argument("--ground-width", type=float, default=5.0)
    p_build.add_argument("--spacing", type=float, default=1.0)
    p_build.add_argument("--thickness", type=float, default=2.0)
    p_build.add_argument("--height-below", type=float, default=2.0)
    p_build.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_build.add_argument("--widths", type=float, nargs="+",
                         default=[4.0, 8.0, 12.0, 16.0], help="[um]")
    p_build.add_argument("--lengths", type=float, nargs="+",
                         default=[500.0, 1500.0, 3000.0, 6000.0], help="[um]")
    p_build.add_argument("--cap-spacings", type=float, nargs="+", default=None,
                         help="also build a C(width, spacing) table [um]")
    p_build.add_argument("--workers", type=int, default=None,
                         help="process count (default: CPU count)")
    p_build.add_argument("--serial", action="store_true",
                         help="disable the process pool")
    p_build.add_argument("--quiet", action="store_true")
    p_build.add_argument("--audit", action="store_true",
                         help="spot-check every freshly built table "
                              "against direct re-solves and embed the "
                              "health report into the manifest")
    p_build.add_argument("--audit-samples", type=int, default=8,
                         help="off-grid sample points per job")
    p_build.add_argument("--disk-memo", default=None, metavar="FILE",
                         help="persistent Lp memo shard warmed before and "
                              "flushed after the build (shared across "
                              "processes and repeated builds)")
    p_build.add_argument("--audit-budget", type=float, default=0.05,
                         help="p95 relative-error budget (fraction)")
    _add_telemetry_arg(p_build)
    _add_profile_args(p_build)
    p_build.set_defaults(func=_cmd_library_build)

    p_list = lib_sub.add_parser("list", help="list stored tables")
    p_list.add_argument("--root", required=True)
    p_list.set_defaults(func=_cmd_library_list)

    p_info = lib_sub.add_parser("info", help="inspect one stored table")
    p_info.add_argument("--root", required=True)
    p_info.add_argument("key", help="cache key (unique prefix ok)")
    p_info.add_argument("--json", action="store_true",
                        help="also dump the manifest entry as JSON")
    p_info.set_defaults(func=_cmd_library_info)

    p_verify = lib_sub.add_parser(
        "verify", help="integrity-check every blob against the manifest")
    p_verify.add_argument("--root", required=True)
    p_verify.set_defaults(func=_cmd_library_verify)

    p_audit = lib_sub.add_parser(
        "audit",
        help="check the table-health reports embedded in the manifest")
    p_audit.add_argument("--root", required=True)
    p_audit.add_argument("--budget", type=float, default=None,
                         help="override the recorded p95 error budget "
                              "(fraction)")
    p_audit.add_argument("--output", default=None, metavar="FILE",
                         help="also write the health reports as JSON")
    _add_telemetry_arg(p_audit)
    p_audit.set_defaults(func=_cmd_library_audit)


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for testing)."""
    from repro.version import get_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clocktree RLC extraction with efficient inductance "
                    "modeling (DATE 2000 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {get_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="Figs. 1-3 delay comparison")
    p_fig1.add_argument("--drive-resistance", type=float, default=15.0)
    _add_telemetry_arg(p_fig1)
    p_fig1.set_defaults(func=_cmd_fig1)

    p_fig5 = sub.add_parser("fig5", help="Fig. 5 loop-L matrix + Foundations")
    p_fig5.add_argument("--traces", type=int, default=5)
    p_fig5.set_defaults(func=_cmd_fig5)

    sub.add_parser("table1", help="Table I cascading comparison").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("scaling", help="super-linear length scaling").set_defaults(
        func=_cmd_scaling
    )
    p_skew = sub.add_parser("skew", help="H-tree skew RC vs RLC")
    p_skew.add_argument("--library", default=None,
                        help="characterization library to pull tables from")
    p_skew.add_argument("--solver", default="auto",
                        choices=["auto", "dense", "sparse"],
                        help="MNA factorization backend (auto picks dense "
                             "for small trees, sparse at chip scale)")
    _add_telemetry_arg(p_skew)
    p_skew.set_defaults(func=_cmd_skew)
    sub.add_parser("variation", help="process variation study").set_defaults(
        func=_cmd_variation
    )
    p_accuracy = sub.add_parser("accuracy",
                                help="table accuracy and speedup")
    _add_telemetry_arg(p_accuracy)
    p_accuracy.set_defaults(func=_cmd_accuracy)

    p_xtalk = sub.add_parser("crosstalk", help="bus aggressor/victim noise")
    p_xtalk.add_argument("--traces", type=int, default=7)
    p_xtalk.add_argument("--width", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--spacing", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--length", type=float, default=2000.0, help="[um]")
    p_xtalk.add_argument("--thickness", type=float, default=1.0, help="[um]")
    p_xtalk.add_argument("--height-below", type=float, default=2.0, help="[um]")
    p_xtalk.add_argument("--frequency", type=float, default=6.4, help="[GHz]")
    p_xtalk.set_defaults(func=_cmd_crosstalk)

    p_spice = sub.add_parser("spice", help="export an extracted clocktree deck")
    p_spice.add_argument("--output", required=True, help="output .sp file")
    p_spice.add_argument("--levels", type=int, default=2)
    p_spice.add_argument("--root-length", type=float, default=4000.0,
                         help="[um]")
    p_spice.add_argument("--signal-width", type=float, default=10.0)
    p_spice.add_argument("--ground-width", type=float, default=5.0)
    p_spice.add_argument("--spacing", type=float, default=1.0)
    p_spice.add_argument("--thickness", type=float, default=2.0)
    p_spice.add_argument("--height-below", type=float, default=2.0)
    p_spice.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_spice.add_argument("--rc-only", action="store_true",
                         help="omit the inductances")
    p_spice.set_defaults(func=_cmd_spice)

    p_char = sub.add_parser("characterize", help="build and save loop tables")
    p_char.add_argument("--output", required=True, help="output directory")
    p_char.add_argument("--signal-width", type=float, default=10.0,
                        help="nominal signal width [um]")
    p_char.add_argument("--ground-width", type=float, default=5.0)
    p_char.add_argument("--spacing", type=float, default=1.0)
    p_char.add_argument("--thickness", type=float, default=2.0)
    p_char.add_argument("--height-below", type=float, default=2.0)
    p_char.add_argument("--frequency", type=float, default=3.2, help="[GHz]")
    p_char.add_argument("--widths", type=float, nargs="+",
                        default=[4.0, 8.0, 12.0, 16.0], help="[um]")
    p_char.add_argument("--lengths", type=float, nargs="+",
                        default=[500.0, 1500.0, 3000.0, 6000.0], help="[um]")
    _add_telemetry_arg(p_char)
    p_char.set_defaults(func=_cmd_characterize)

    _add_library_parser(sub)

    p_bench = sub.add_parser(
        "bench", help="benchmark records: regression diff")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bdiff = bench_sub.add_parser(
        "diff",
        help="compare a candidate bench record against baseline history; "
             "exits nonzero on regressions")
    p_bdiff.add_argument(
        "files", nargs="+", metavar="FILE",
        help="bench/telemetry JSON records: one or more baselines "
             "followed by the candidate (last)")
    p_bdiff.add_argument("--threshold", type=float, default=0.25,
                         help="relative regression gate per metric "
                              "(default 0.25)")
    p_bdiff.add_argument("--mad-k", type=float, default=3.0,
                         help="MAD multiplier widening the gate on noisy "
                              "baselines")
    p_bdiff.set_defaults(func=_cmd_bench_diff)

    p_bserve = bench_sub.add_parser(
        "serve",
        help="load-test an extraction daemon: N threads x M requests, "
             "latency percentiles + RPS")
    p_bserve.add_argument("--url", default=None,
                          help="base URL of a running daemon "
                               "(e.g. http://127.0.0.1:8080)")
    p_bserve.add_argument("--library", default=None, metavar="ROOT",
                          help="start an in-process daemon over this kit "
                               "instead of targeting --url")
    p_bserve.add_argument("--endpoint", default="extract",
                          choices=["extract", "lookup", "skew"])
    p_bserve.add_argument("--payload", default=None,
                          help="JSON request body (default: a 2-level "
                               "3000 um extract)")
    p_bserve.add_argument("--threads", type=int, default=4)
    p_bserve.add_argument("--requests", type=int, default=25,
                          help="requests per thread")
    p_bserve.add_argument("--warmup", type=int, default=1,
                          help="untimed warmup requests (0 for a "
                               "cold-cache measurement)")
    p_bserve.add_argument("--max-inflight", type=int, default=8,
                          help="daemon admission ceiling (in-process "
                               "mode; raised to --threads if lower)")
    p_bserve.add_argument("--record", default=None, metavar="FILE",
                          help="write/merge a BENCH_*.json record "
                               "gated by `repro bench diff`")
    _add_telemetry_arg(p_bserve)
    _add_profile_args(p_bserve)
    p_bserve.set_defaults(func=_cmd_bench_serve)

    p_report = sub.add_parser(
        "report", help="render a --telemetry run report (span tree + metrics)")
    p_report.add_argument("file", help="report JSON written by --telemetry")
    p_report.add_argument("--max-spans", type=int, default=200,
                          help="span-tree lines to render before truncating")
    p_report.add_argument("--spans-jsonl", action="store_true",
                          help="dump the flattened span records as JSONL "
                               "instead of rendering")
    p_report.add_argument("--trace-json", default=None, metavar="FILE",
                          help="export the span tree as a Chrome "
                               "trace-event (Perfetto) timeline to FILE")
    p_report.set_defaults(func=_cmd_report)

    p_serve = sub.add_parser(
        "serve",
        help="extraction-as-a-service daemon over a characterization kit")
    p_serve.add_argument("--library", required=True, metavar="ROOT",
                         help="characterization library (kit) to serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="admission ceiling; beyond it requests "
                              "get 429 immediately")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="result-cache entries (LRU)")
    p_serve.add_argument("--compute-width", type=int, default=1,
                         help="distinct cache-missing computations "
                              "running at once (memo locality gate)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds to wait for in-flight requests "
                              "on SIGTERM")
    p_serve.add_argument("--frequency", type=float, default=None,
                         help="extraction frequency [GHz] (default: the "
                              "kit's characterized frequency)")
    p_serve.add_argument("--disk-memo", default=None, metavar="FILE",
                         help="persistent Lp memo shard warmed at startup")
    p_serve.add_argument("--signal-width", type=float, default=10.0,
                         help="default geometry [um]; must match the "
                              "kit's characterized family for table hits")
    p_serve.add_argument("--ground-width", type=float, default=5.0)
    p_serve.add_argument("--spacing", type=float, default=1.0)
    p_serve.add_argument("--thickness", type=float, default=2.0)
    p_serve.add_argument("--height-below", type=float, default=2.0)
    p_serve.add_argument("--log-file", default=None, metavar="FILE",
                         help="also append the structured JSON logs "
                              "(access log included) to FILE")
    p_serve.add_argument("--log-level", default="info",
                         choices=["debug", "info", "warning", "error"],
                         help="minimum structured-log severity")
    p_serve.add_argument("--slo-latency-ms", type=float, default=500.0,
                         help="latency-SLI threshold [ms] for the "
                              "rolling SLO monitor")
    _add_telemetry_arg(p_serve)
    _add_profile_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="netlist health lint for a SPICE deck; exits nonzero "
                     "on errors")
    p_lint.add_argument("netlist", help="SPICE deck (.sp) to check")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the health report as JSON")
    p_lint.add_argument("--strict", action="store_true",
                        help="also fail (exit 1) on warnings")
    _add_telemetry_arg(p_lint)
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    profile_path = getattr(args, "profile", None)
    profiler = None
    if profile_path:
        from repro.telemetry.profiler import SamplingProfiler

        interval_ms = getattr(args, "profile_interval", 5.0)
        profiler = SamplingProfiler(interval=interval_ms / 1e3).start()
    try:
        return _dispatch(args, profiler)
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.write_collapsed(profile_path)
            print(f"profile ({profiler.samples} samples, "
                  f"{len(profiler.stacks)} stacks) -> {profile_path}")


def _dispatch(args: argparse.Namespace, profiler=None) -> int:
    """Run the selected command, inside a telemetry session if asked."""
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path is None:
        return args.func(args)

    from repro.telemetry import telemetry_session

    command = args.command
    library_command = getattr(args, "library_command", None)
    if library_command:
        command = f"{command} {library_command}"
    with telemetry_session(f"repro {command}") as session:
        # Commands that aggregate worker telemetry (library build) pick
        # the session up from the namespace.
        args._telemetry_session = session
        code = args.func(args)
        if profiler is not None:
            # Stop before the session assembles so the report's v4
            # ``profile`` section covers exactly the command's work.
            profiler.stop()
            session.add_profile(profiler.summary())
    report = session.report
    assert report is not None  # telemetry_session always assembles one
    report.meta.setdefault("exit_code", code)
    path = report.save(telemetry_path)
    print(f"telemetry report -> {path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
