"""Crash-safe filesystem primitives shared by tables and the library.

A characterization build can be killed at any moment (Ctrl-C, OOM, a
cluster preemption); a half-written JSON table or manifest must never be
observable.  :func:`atomic_write_text` gives the standard POSIX recipe:
write to a temporary file *in the same directory* (so the final rename
stays on one filesystem), flush + fsync, then :func:`os.replace` into
place -- readers see either the old file or the complete new one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """Atomically replace *path* with *text*; returns the path.

    The temporary file lives next to the target so ``os.replace`` is an
    atomic rename even across mount points being different elsewhere.
    On any failure the temporary file is removed and the original file
    (if any) is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(target))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def fsync_directory(path: Union[str, Path]) -> None:
    """Best-effort fsync of a directory (persists a rename across crash)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
