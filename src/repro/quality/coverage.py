"""Lookup-domain coverage: where do extraction queries actually land?

The paper's accuracy claim (Table I: a few percent against field-solver
truth) only holds *inside* the characterized grid; the bicubic spline
happily answers outside it with the edge polynomial, and that answer
degrades silently the further out the query drifts -- exactly the
failure mode the superconductor-inductance measurement literature
documents near geometry-range edges.  This module makes the domain
question observable:

* :func:`classify_axis` / :func:`classify_point` classify every query
  per axis as ``interior`` / ``edge`` (the outermost spline cell, where
  the cubic has one-sided support) / ``low`` / ``high`` (extrapolated),
  in exact agreement with ``in_range`` on boundary points: a query *on*
  ``axis[0]`` or ``axis[-1]`` is in range (an edge cell), never
  extrapolated.
* Every instrumented lookup ticks the ``table_lookup`` /
  ``table_lookup_edge`` / ``table_lookup_extrapolated`` counters, the
  latter with per-axis tags (``table_lookup_extrapolated.width.high``).
* A process-wide :class:`CoverageTracker` accumulates per-table
  :class:`TableCoverage` maps -- axis-bucketed hit histograms plus a
  bounded set of extrapolation hot-spots recording the offending
  geometry -- which :func:`render_coverage` turns into the coverage-map
  section of run reports.

Only :mod:`repro.telemetry.registry` is imported here (never
:mod:`repro.tables`): the tables layer imports *this* module to
instrument its lookups, so the dependency must point one way.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import (
    TABLE_LOOKUP,
    TABLE_LOOKUP_EDGE,
    TABLE_LOOKUP_EXTRAPOLATED,
    get_registry,
)

__all__ = [
    "AXIS_INTERIOR",
    "AXIS_EDGE",
    "AXIS_LOW",
    "AXIS_HIGH",
    "classify_axis",
    "classify_point",
    "record_lookup",
    "AxisCoverage",
    "TableCoverage",
    "CoverageTracker",
    "get_coverage_tracker",
    "render_coverage",
]

#: Per-axis classifications.
AXIS_INTERIOR = "interior"
AXIS_EDGE = "edge"
AXIS_LOW = "low"
AXIS_HIGH = "high"

#: Overall point classifications.
POINT_INTERIOR = "interior"
POINT_EDGE = "edge"
POINT_EXTRAPOLATED = "extrapolated"


def classify_axis(axis: Sequence[float], q: float) -> str:
    """Classify coordinate *q* against one strictly increasing *axis*.

    ``low`` / ``high`` mean extrapolation (strictly outside the knots);
    ``edge`` means the outermost spline cell -- including exact boundary
    points, so the classifier agrees with ``in_range`` everywhere:
    ``q == axis[0]`` and ``q == axis[-1]`` are in range, classified
    ``edge``.  Axes with at most two knots are all edge.
    """
    lo, hi = float(axis[0]), float(axis[-1])
    if q < lo:
        return AXIS_LOW
    if q > hi:
        return AXIS_HIGH
    if len(axis) <= 2:
        return AXIS_EDGE
    if q <= float(axis[1]) or q >= float(axis[-2]):
        return AXIS_EDGE
    return AXIS_INTERIOR


def classify_point(
    axes: Sequence[Sequence[float]], point: Sequence[float]
) -> Tuple[str, Tuple[str, ...]]:
    """Overall + per-axis classification of a lookup point.

    Overall is ``extrapolated`` when *any* axis extrapolates, else
    ``edge`` when any axis lands in an edge cell, else ``interior``.
    """
    per_axis = tuple(
        classify_axis(axis, float(q)) for axis, q in zip(axes, point)
    )
    if any(c in (AXIS_LOW, AXIS_HIGH) for c in per_axis):
        return POINT_EXTRAPOLATED, per_axis
    if any(c == AXIS_EDGE for c in per_axis):
        return POINT_EDGE, per_axis
    return POINT_INTERIOR, per_axis


# ----------------------------------------------------------------------
# per-table accumulators
# ----------------------------------------------------------------------
class AxisCoverage:
    """Hit histogram over one axis: per-cell counts plus out-of-range tails."""

    __slots__ = ("name", "knots", "below", "above", "cells")

    def __init__(self, name: str, knots: Sequence[float]):
        self.name = name
        self.knots = tuple(float(k) for k in knots)
        self.below = 0
        self.above = 0
        # One bucket per spline cell; a single-knot axis gets one bucket.
        self.cells = [0] * max(1, len(self.knots) - 1)

    def record(self, q: float) -> None:
        if q < self.knots[0]:
            self.below += 1
        elif q > self.knots[-1]:
            self.above += 1
        else:
            index = bisect_right(self.knots, q) - 1
            self.cells[min(max(index, 0), len(self.cells) - 1)] += 1

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "knots": list(self.knots),
            "below": self.below,
            "cells": list(self.cells),
            "above": self.above,
        }


class TableCoverage:
    """Coverage accumulator for one named table."""

    #: Distinct extrapolated geometries retained per table; further
    #: distinct points only bump :attr:`hot_spot_overflow`.
    MAX_HOT_SPOTS = 16

    def __init__(self, table: str, axis_names: Sequence[str],
                 axes: Sequence[Sequence[float]]):
        self.table = table
        self.axis_names = tuple(str(n) for n in axis_names)
        self.lookups = 0
        self.interior = 0
        self.edge = 0
        self.extrapolated = 0
        self.axes = [
            AxisCoverage(name, axis)
            for name, axis in zip(self.axis_names, axes)
        ]
        #: Offending geometry of extrapolated lookups: "width=3e-05
        #: length=0.002" -> hit count.
        self.hot_spots: Dict[str, int] = {}
        self.hot_spot_overflow = 0

    def record(self, point: Sequence[float], overall: str) -> None:
        self.lookups += 1
        if overall == POINT_EXTRAPOLATED:
            self.extrapolated += 1
            key = " ".join(
                f"{name}={float(q):.6g}"
                for name, q in zip(self.axis_names, point)
            )
            if key in self.hot_spots:
                self.hot_spots[key] += 1
            elif len(self.hot_spots) < self.MAX_HOT_SPOTS:
                self.hot_spots[key] = 1
            else:
                self.hot_spot_overflow += 1
        elif overall == POINT_EDGE:
            self.edge += 1
        else:
            self.interior += 1
        for axis, q in zip(self.axes, point):
            axis.record(float(q))

    @property
    def extrapolation_fraction(self) -> float:
        return self.extrapolated / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "axis_names": list(self.axis_names),
            "lookups": self.lookups,
            "interior": self.interior,
            "edge": self.edge,
            "extrapolated": self.extrapolated,
            "extrapolation_fraction": round(self.extrapolation_fraction, 6),
            "axes": [axis.to_dict() for axis in self.axes],
            "hot_spots": dict(
                sorted(self.hot_spots.items(),
                       key=lambda kv: (-kv[1], kv[0]))
            ),
            "hot_spot_overflow": self.hot_spot_overflow,
        }


class CoverageTracker:
    """Process-wide, thread-safe registry of per-table coverage maps."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: Dict[str, TableCoverage] = {}

    def record(
        self,
        table: str,
        axis_names: Sequence[str],
        axes: Sequence[Sequence[float]],
        point: Sequence[float],
        overall: str,
    ) -> None:
        with self._lock:
            coverage = self._tables.get(table)
            if coverage is None:
                coverage = self._tables[table] = TableCoverage(
                    table, axis_names, axes
                )
            coverage.record(point, overall)

    def get(self, table: str) -> Optional[TableCoverage]:
        with self._lock:
            return self._tables.get(table)

    def lookup_counts(self) -> Dict[str, int]:
        """Per-table lookup totals (for session deltas)."""
        with self._lock:
            return {name: c.lookups for name, c in self._tables.items()}

    def report(self) -> List[dict]:
        """Every table's coverage map as plain dicts, sorted by name."""
        with self._lock:
            return [
                self._tables[name].to_dict()
                for name in sorted(self._tables)
            ]

    def reset(self) -> None:
        with self._lock:
            self._tables.clear()


_GLOBAL_TRACKER = CoverageTracker()


def get_coverage_tracker() -> CoverageTracker:
    """The process-wide :class:`CoverageTracker`."""
    return _GLOBAL_TRACKER


# ----------------------------------------------------------------------
# the instrumentation entry point (called by the tables layer)
# ----------------------------------------------------------------------
def record_lookup(
    axes: Sequence[Sequence[float]],
    point: Sequence[float],
    name: Optional[str] = None,
    axis_names: Optional[Sequence[str]] = None,
) -> Tuple[str, Tuple[str, ...]]:
    """Classify one lookup, tick the counters, feed the tracker.

    Counters always tick; the per-table coverage accumulator only
    records when the lookup belongs to a *named* table (anonymous
    interpolators stay out of the coverage map).  Returns the
    classification so the caller can decide whether to warn.
    """
    overall, per_axis = classify_point(axes, point)
    registry = get_registry()
    registry.inc(TABLE_LOOKUP)
    if overall == POINT_EXTRAPOLATED:
        registry.inc(TABLE_LOOKUP_EXTRAPOLATED)
        names = axis_names or [f"axis{i}" for i in range(len(per_axis))]
        for axis_name, cls in zip(names, per_axis):
            if cls in (AXIS_LOW, AXIS_HIGH):
                registry.inc(
                    f"{TABLE_LOOKUP_EXTRAPOLATED}.{axis_name}.{cls}"
                )
    elif overall == POINT_EDGE:
        registry.inc(TABLE_LOOKUP_EDGE)
    if name is not None:
        names = axis_names or [f"axis{i}" for i in range(len(per_axis))]
        get_coverage_tracker().record(name, names, axes, point, overall)
    return overall, per_axis


# ----------------------------------------------------------------------
# rendering (the coverage-map section of `repro report`)
# ----------------------------------------------------------------------
def _render_axis_line(axis: dict) -> str:
    knots = axis.get("knots", [])
    cells = " ".join(str(c) for c in axis.get("cells", []))
    span = (f"[{knots[0]:.4g} .. {knots[-1]:.4g}]" if knots else "[]")
    return (
        f"    axis {axis.get('name', '?'):<10} {span:<24} "
        f"<{axis.get('below', 0)} | {cells} | {axis.get('above', 0)}>"
    )


def render_coverage(entries: Sequence[dict]) -> str:
    """Human-readable coverage map from :meth:`TableCoverage.to_dict` rows.

    Axis lines read ``<below | cell hits ... | above>``: nonzero tails
    are extrapolation hot-spots.
    """
    lines: List[str] = [f"lookup-domain coverage ({len(entries)} table(s))"]
    for entry in entries:
        lookups = entry.get("lookups", 0)
        extrapolated = entry.get("extrapolated", 0)
        fraction = entry.get("extrapolation_fraction", 0.0)
        flag = "  << EXTRAPOLATION" if extrapolated else ""
        lines.append(
            f"  {entry.get('table', '?')}: {lookups} lookup(s)  "
            f"interior {entry.get('interior', 0)}  "
            f"edge {entry.get('edge', 0)}  "
            f"extrapolated {extrapolated} ({fraction:.1%}){flag}"
        )
        for axis in entry.get("axes", []):
            lines.append(_render_axis_line(axis))
        hot_spots = entry.get("hot_spots", {})
        if hot_spots:
            lines.append("    extrapolation hot spots (offending geometry):")
            for key, count in hot_spots.items():
                lines.append(f"      {key}  x{count}")
            overflow = entry.get("hot_spot_overflow", 0)
            if overflow:
                lines.append(
                    f"      ... {overflow} more extrapolated lookup(s) "
                    "at unlisted points"
                )
    return "\n".join(lines) + "\n"
