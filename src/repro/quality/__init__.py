"""Extraction-quality observability: coverage maps, audits, regression gates.

``repro.quality`` builds on :mod:`repro.telemetry` to make *numerical*
trustworthiness a first-class artifact, the way PR 3 did for
performance.  Three pieces:

* :mod:`~repro.quality.coverage` -- lookup-domain coverage: every table
  lookup classifies as interior / edge-cell / extrapolated per axis,
  ticking counters and feeding a process-wide per-table coverage map
  with extrapolation hot-spots (the offending geometry).
* :mod:`~repro.quality.audit` -- residual spot-checks:
  :class:`TableAuditor` re-solves a seeded off-grid sample with the
  real solvers, grades the spline against it and emits a
  schema-versioned :class:`TableHealthReport` (p95 relative error vs a
  configurable budget) embedded into library manifests at build time
  and re-checkable via ``repro library audit``.
* :mod:`~repro.quality.regress` -- the bench regression watchdog:
  ``repro bench diff`` compares bench/telemetry records over a
  median/MAD gate, so both speed and accuracy trajectories fail CI
  instead of drifting silently.

Typical use::

    from repro.quality import TableAuditor, get_coverage_tracker

    stats = BuildRunner(root, auditor=TableAuditor()).build(jobs)
    reports, problems = audit_library(TableLibrary(root, create=False))
    assert not problems
"""

from repro.quality.coverage import (
    AXIS_EDGE,
    AXIS_HIGH,
    AXIS_INTERIOR,
    AXIS_LOW,
    AxisCoverage,
    CoverageTracker,
    TableCoverage,
    classify_axis,
    classify_point,
    get_coverage_tracker,
    record_lookup,
    render_coverage,
)
from repro.quality.audit import (
    DEFAULT_ERROR_BUDGET,
    HEALTH_SCHEMA_VERSION,
    TableAuditor,
    TableHealthReport,
    audit_library,
    render_health,
)
from repro.quality.regress import (
    BENCH_SCHEMA_VERSION,
    BenchDiff,
    MetricDelta,
    diff_benches,
    flatten_metrics,
    git_sha,
    load_bench,
    metric_direction,
    record_bench,
    run_metadata,
)

__all__ = [
    # coverage
    "AXIS_INTERIOR", "AXIS_EDGE", "AXIS_LOW", "AXIS_HIGH",
    "classify_axis", "classify_point", "record_lookup",
    "AxisCoverage", "TableCoverage", "CoverageTracker",
    "get_coverage_tracker", "render_coverage",
    # audit
    "HEALTH_SCHEMA_VERSION", "DEFAULT_ERROR_BUDGET",
    "TableAuditor", "TableHealthReport", "audit_library", "render_health",
    # regress
    "BENCH_SCHEMA_VERSION", "run_metadata", "record_bench", "git_sha",
    "flatten_metrics", "metric_direction",
    "MetricDelta", "BenchDiff", "diff_benches", "load_bench",
]
