"""Bench regression watchdog: compare canonical bench records over time.

The repo commits its benchmark numbers (``BENCH_kernel.json``,
``BENCH_library.json``) and telemetry artifacts
(``BENCH_kernel_telemetry.json``), but until now they were raw numbers
with no provenance and nothing comparing them run over run.  This
module supplies both halves:

* :func:`run_metadata` stamps every bench record with git sha,
  ISO timestamp, host and schema version (the ``meta`` block the
  benchmark writers attach), so records from different machines and
  commits are comparable artifacts rather than loose floats.
* :func:`diff_benches` loads one *candidate* record against one or more
  *baselines* and applies median/MAD-style thresholds per metric:
  a metric regresses when it moves against its direction-of-goodness by
  more than ``max(threshold * |median|, mad_k * MAD)`` -- the MAD term
  widens the gate automatically when the baseline history is noisy.
  Metric direction is inferred from the name: wall-time-like metrics
  (``*seconds``, ``*_ms``, ``duration``, ``ratio_vs_naive``) are
  lower-is-better, ``*speedup`` / ``*hit_rate`` / ``*dedup_factor`` are
  higher-is-better, everything else is informational (tracked, never
  failing).

``repro bench diff old.json [older.json ...] new.json`` is the CLI
front end; it exits nonzero on any regression, which is what the CI
``quality-gate`` job keys on.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import QualityError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "git_sha",
    "run_metadata",
    "record_bench",
    "flatten_metrics",
    "metric_direction",
    "MetricDelta",
    "BenchDiff",
    "diff_benches",
    "load_bench",
]

#: Bump when the bench-record ``meta`` layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Name fragments marking a metric as lower-is-better (latency-like).
_LOWER_MARKERS = ("seconds", "_ms", "duration", "ratio_vs_naive")
#: Name suffixes marking a metric as higher-is-better (throughput-like).
#: Higher markers win over lower on overlap, so ``requests_per_second``
#: gates as throughput even though latency metrics end in ``seconds``.
_HIGHER_MARKERS = ("speedup", "hit_rate", "dedup_factor", "per_second")


def git_sha() -> str:
    """The repo's HEAD sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_metadata() -> Dict[str, object]:
    """The provenance block every bench writer stamps as ``meta``."""
    now = time.time()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                   time.localtime(now)),
        "unix_time": round(now, 3),
        "host": platform.node() or "unknown",
        "python": platform.python_version(),
    }


def record_bench(path: Union[str, Path], update: dict) -> dict:
    """Read-merge-write one ``BENCH_*.json`` record with provenance.

    Every write refreshes the record's ``meta`` block (schema version,
    git sha, ISO timestamp, host, python version) via
    :func:`run_metadata`, so committed benchmark numbers are comparable
    artifacts for ``repro bench diff`` rather than loose floats.  Shared
    by the pytest benchmarks (``benchmarks/conftest.py``) and the
    ``repro bench serve`` load driver.
    """
    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    data["meta"] = run_metadata()
    path.write_text(json.dumps(data, indent=1) + "\n")
    _ledger_bench(path, data)
    return data


def _ledger_bench(path: Path, data: dict) -> None:
    """Mirror a bench record into the run ledger when one is active.

    Gated on ``$REPRO_LEDGER`` so plain unit-test runs stay side-effect
    free; CI exports it, and every benchmark then lands as a
    ``bench:<stem>`` scenario run that ``repro runs diff`` can compare
    across shas.  Best-effort: a broken ledger never fails a benchmark.
    """
    root = os.environ.get("REPRO_LEDGER", "").strip()
    if not root:
        return
    try:
        from repro.library.store import cache_key
        from repro.scenarios.ledger import RunLedger

        scenario = f"bench:{path.stem}"
        metrics = {k: v for k, v in data.items() if k != "meta"}
        run_key = cache_key({
            "kind": "bench-record",
            "scenario": scenario,
            "git_sha": data.get("meta", {}).get("git_sha", "unknown"),
            "metric_names": sorted(metrics),
        })
        RunLedger(root).record(
            scenario=scenario,
            run_key=run_key,
            params={"record": path.name},
            metrics=metrics,
            meta=data.get("meta"),
        )
    except Exception:  # noqa: BLE001 -- observability must not gate
        pass


# ----------------------------------------------------------------------
# record flattening
# ----------------------------------------------------------------------
def flatten_metrics(data: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a bench record (or telemetry run report) to scalar metrics.

    Bench records flatten nested sections to dotted names
    (``assembly.speedup``); the ``meta`` provenance block is skipped.
    Telemetry run reports (recognized by their ``command`` +
    ``metrics`` keys) contribute their wall ``duration``, counter
    totals (``counter.loop_solve``) and per-histogram mean/p95 scalars
    (``histogram.serve_latency_seconds_p95``) -- the latency
    distributions gate through ``repro bench diff`` exactly like the
    counters, with direction inferred from the ``seconds`` leaf.
    """
    if not prefix and "command" in data and "metrics" in data:
        out: Dict[str, float] = {"duration": float(data.get("duration", 0.0))}
        counters = (data.get("metrics") or {}).get("counters", {})
        for name, value in counters.items():
            out[f"counter.{name}"] = float(value)
        worker = (data.get("worker_metrics") or {}).get("counters", {})
        for name, value in worker.items():
            key = f"counter.{name}"
            out[key] = out.get(key, 0.0) + float(value)
        from repro.telemetry.registry import HistogramSnapshot

        for name, hist_data in (
            (data.get("metrics") or {}).get("histograms", {}) or {}
        ).items():
            try:
                hist = HistogramSnapshot.from_dict(hist_data)
            except (KeyError, TypeError, ValueError):
                continue
            if not hist.count:
                continue
            out[f"histogram.{name}_mean"] = hist.mean
            out[f"histogram.{name}_p95"] = hist.quantile(0.95)
        return out

    out = {}
    for key, value in data.items():
        if not prefix and key == "meta":
            continue
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=name))
    return out


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` is better, or None (informational)."""
    leaf = name.rsplit(".", 1)[-1]
    if any(leaf.endswith(m) for m in _HIGHER_MARKERS):
        return "higher"
    if any(m in leaf for m in _LOWER_MARKERS):
        return "lower"
    return None


# ----------------------------------------------------------------------
# the diff itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricDelta:
    """One metric compared against its baseline history."""

    name: str
    direction: Optional[str]
    baseline_median: float
    baseline_mad: float
    candidate: float
    tolerance: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline_median

    @property
    def relative(self) -> float:
        """Signed relative change against the baseline median."""
        if self.baseline_median == 0.0:
            return 0.0 if self.delta == 0.0 else float("inf")
        return self.delta / abs(self.baseline_median)

    @property
    def regressed(self) -> bool:
        if self.direction == "lower":
            return self.delta > self.tolerance
        if self.direction == "higher":
            return -self.delta > self.tolerance
        return False

    @property
    def improved(self) -> bool:
        if self.direction == "lower":
            return -self.delta > self.tolerance
        if self.direction == "higher":
            return self.delta > self.tolerance
        return False


@dataclass
class BenchDiff:
    """Outcome of one candidate-vs-baselines comparison."""

    baseline_count: int
    threshold: float
    mad_k: float
    deltas: List[MetricDelta] = field(default_factory=list)
    candidate_meta: Dict[str, object] = field(default_factory=dict)
    baseline_meta: List[dict] = field(default_factory=list)
    #: Metric names the *caller* injected into both sides (e.g. the run
    #: wall ``duration`` that :func:`repro.scenarios.ledger.diff_runs`
    #: adds to every view).  They are always shared, so they must not
    #: count as evidence that the two records were actually comparable.
    synthetic: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def nothing_compared(self) -> bool:
        """True when baseline and candidate share no real metrics.

        A diff with zero (non-synthetic) common metrics used to render a
        vacuous PASS; callers should treat this as a distinct warning
        status (the CLI exits 3) because nothing was actually gated.
        """
        return not [d for d in self.deltas if d.name not in self.synthetic]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench diff: candidate vs {self.baseline_count} baseline(s), "
            f"threshold {self.threshold:.0%} + {self.mad_k:g}*MAD"
        ]
        meta = self.candidate_meta
        if meta:
            lines.append(
                f"  candidate: sha {str(meta.get('git_sha', '?'))[:12]}  "
                f"{meta.get('timestamp', '?')}  host {meta.get('host', '?')}"
            )
        width = max((len(d.name) for d in self.deltas), default=4)
        for delta in sorted(self.deltas, key=lambda d: d.name):
            mark = ("REGRESSED" if delta.regressed
                    else "improved" if delta.improved
                    else "")
            arrow = {"lower": "v", "higher": "^", None: "-"}[delta.direction]
            rel = delta.relative
            rel_text = f"{rel:+8.1%}" if rel != float("inf") else "    +inf"
            lines.append(
                f"  {delta.name:<{width}} {arrow} "
                f"{delta.baseline_median:12.4g} -> {delta.candidate:12.4g} "
                f"({rel_text})  {mark}".rstrip()
            )
        if self.nothing_compared:
            lines.append(
                "  WARNING: baseline and candidate share no common "
                "metrics -- nothing compared"
            )
            lines.append("  verdict: NOTHING COMPARED")
            return "\n".join(lines) + "\n"
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.regressions)} regression(s))"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines) + "\n"


def load_bench(path: Union[str, Path]) -> dict:
    """Load one bench/telemetry JSON record."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise QualityError(f"unreadable bench record {path}: {exc}")
    if not isinstance(data, dict):
        raise QualityError(f"bench record {path} is not a JSON object")
    return data


def diff_benches(
    baselines: Sequence[dict],
    candidate: dict,
    threshold: float = 0.25,
    mad_k: float = 3.0,
) -> BenchDiff:
    """Compare *candidate* against the *baselines* history.

    Per metric present in the candidate and at least one baseline, the
    gate is ``max(threshold * |median|, mad_k * MAD)`` around the
    baseline median; moving against the metric's direction-of-goodness
    by more than the gate is a regression.  The default 25 % threshold
    deliberately under-cuts the acceptance criterion's "flag a >= 30 %
    slowdown" so boundary cases are flagged without float hair-splitting.
    """
    if not baselines:
        raise QualityError("bench diff needs at least one baseline record")
    if threshold <= 0.0 or mad_k < 0.0:
        raise QualityError("threshold must be > 0 and mad_k >= 0")
    flat_baselines = [flatten_metrics(b) for b in baselines]
    flat_candidate = flatten_metrics(candidate)
    diff = BenchDiff(
        baseline_count=len(baselines),
        threshold=float(threshold),
        mad_k=float(mad_k),
        candidate_meta=dict(candidate.get("meta", {}) or {}),
        baseline_meta=[dict(b.get("meta", {}) or {}) for b in baselines],
    )
    for name in sorted(flat_candidate):
        history = [fb[name] for fb in flat_baselines if name in fb]
        if not history:
            continue
        median = statistics.median(history)
        mad = statistics.median(abs(v - median) for v in history)
        tolerance = max(threshold * abs(median), mad_k * mad, 1e-12)
        diff.deltas.append(MetricDelta(
            name=name,
            direction=metric_direction(name),
            baseline_median=float(median),
            baseline_mad=float(mad),
            candidate=flat_candidate[name],
            tolerance=float(tolerance),
        ))
    return diff
