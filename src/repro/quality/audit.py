"""Residual spot-check auditing: does the spline still track the solver?

The paper's economics rest on one numerical claim: a table lookup loses
almost nothing against a fresh field solve (Table I: 3.57 % / 1.55 %).
:class:`TableAuditor` checks that claim *on the tables actually built*:
it draws a deterministic (seeded) sample of off-grid points inside the
characterized domain, re-solves them with the real solvers, compares
against the spline lookups, and freezes the outcome into a
schema-versioned :class:`TableHealthReport` -- max / median / p95
relative error plus a pass/fail verdict against a configurable error
budget (default 5 %, per the paper).  Build runners embed the report
into library manifests so ``repro library audit`` can re-check a kit
long after the solvers that built it are gone.

Auditing is strictly **opt-in**: nothing here runs on a plain
extraction path, and every direct re-solve ticks the
``audit_direct_solve`` counter so the warm-path zero-solve tests can
prove that.

Tables are duck-typed (anything with ``name``, ``quantity``, ``axes``
and positional ``lookup``); :mod:`repro.tables` is deliberately *not*
imported, because the tables layer imports :mod:`repro.quality` for its
lookup instrumentation.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QualityError
from repro.telemetry.registry import AUDIT_SOLVE, get_registry
from repro.telemetry.spans import span

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "DEFAULT_ERROR_BUDGET",
    "TableHealthReport",
    "TableAuditor",
    "audit_library",
    "render_health",
]

#: Bump when the health-report JSON layout changes incompatibly.
HEALTH_SCHEMA_VERSION = 1

#: Default p95 relative-error budget: the paper's "a few percent".
DEFAULT_ERROR_BUDGET = 0.05


@dataclass
class TableHealthReport:
    """Frozen outcome of one table's residual spot-check."""

    table_name: str
    quantity: str = ""
    n_samples: int = 0
    seed: int = 0
    error_budget: float = DEFAULT_ERROR_BUDGET
    max_rel_error: float = 0.0
    median_rel_error: float = 0.0
    p95_rel_error: float = 0.0
    passed: bool = True
    created_at: float = 0.0
    git_sha: str = ""
    schema_version: int = HEALTH_SCHEMA_VERSION
    #: Per-sample records: point, lookup, direct, rel_error.
    samples: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "table_name": self.table_name,
            "quantity": self.quantity,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "error_budget": self.error_budget,
            "max_rel_error": self.max_rel_error,
            "median_rel_error": self.median_rel_error,
            "p95_rel_error": self.p95_rel_error,
            "passed": self.passed,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableHealthReport":
        version = data.get("schema_version")
        if version != HEALTH_SCHEMA_VERSION:
            raise QualityError(
                f"health report schema {version!r} != supported "
                f"{HEALTH_SCHEMA_VERSION}"
            )
        try:
            return cls(
                table_name=str(data["table_name"]),
                quantity=str(data.get("quantity", "")),
                n_samples=int(data.get("n_samples", 0)),
                seed=int(data.get("seed", 0)),
                error_budget=float(
                    data.get("error_budget", DEFAULT_ERROR_BUDGET)),
                max_rel_error=float(data.get("max_rel_error", 0.0)),
                median_rel_error=float(data.get("median_rel_error", 0.0)),
                p95_rel_error=float(data.get("p95_rel_error", 0.0)),
                passed=bool(data.get("passed", False)),
                created_at=float(data.get("created_at", 0.0)),
                git_sha=str(data.get("git_sha", "")),
                samples=list(data.get("samples", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QualityError(f"malformed health report: {exc}") from None

    def check(self, budget: Optional[float] = None) -> bool:
        """Pass/fail against *budget* (default: the recorded budget)."""
        budget = self.error_budget if budget is None else float(budget)
        return self.p95_rel_error <= budget

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"{self.table_name} [{self.quantity}]  "
            f"n={self.n_samples}  "
            f"max {self.max_rel_error:.2%}  "
            f"median {self.median_rel_error:.2%}  "
            f"p95 {self.p95_rel_error:.2%}  "
            f"budget {self.error_budget:.0%}  {verdict}"
        )


def _stable_rng(seed: int, key: str) -> np.random.Generator:
    """A deterministic generator from (seed, key) -- never ``hash()``,
    which is process-salted."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class TableAuditor:
    """Re-solve a seeded off-grid sample and grade the spline against it.

    Parameters
    ----------
    samples:
        Off-grid points to re-solve per table (the expensive knob).
    seed:
        Sampling seed; the actual point set also depends on the audited
        table/job key, so distinct tables get distinct samples while
        reruns stay reproducible.
    error_budget:
        p95 relative-error budget for the pass/fail verdict.
    margin:
        Fractional inset from each axis end when sampling, keeping the
        sample strictly in-range (extrapolation is the coverage map's
        job, not the auditor's).
    """

    def __init__(
        self,
        samples: int = 8,
        seed: int = 20260806,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        margin: float = 0.02,
    ):
        if samples < 1:
            raise QualityError("auditor needs at least one sample")
        if not 0.0 <= margin < 0.5:
            raise QualityError("margin must be in [0, 0.5)")
        if error_budget <= 0.0:
            raise QualityError("error budget must be positive")
        self.samples = int(samples)
        self.seed = int(seed)
        self.error_budget = float(error_budget)
        self.margin = float(margin)

    # ------------------------------------------------------------------
    def sample_points(
        self, axes: Sequence[Sequence[float]], key: str
    ) -> List[Tuple[float, ...]]:
        """Deterministic in-range off-grid sample for one table/job."""
        rng = _stable_rng(self.seed, key)
        points: List[Tuple[float, ...]] = []
        for _ in range(self.samples):
            coords = []
            for axis in axes:
                lo, hi = float(axis[0]), float(axis[-1])
                if hi <= lo:
                    coords.append(lo)
                    continue
                inset = self.margin * (hi - lo)
                coords.append(float(rng.uniform(lo + inset, hi - inset)))
            points.append(tuple(coords))
        return points

    # ------------------------------------------------------------------
    def audit(
        self,
        table,
        solve_fn: Callable[[Tuple[float, ...]], float],
        points: Optional[Sequence[Tuple[float, ...]]] = None,
    ) -> TableHealthReport:
        """Grade one table against direct re-solves of a sample.

        *solve_fn* receives one sample point (tuple in axis order) and
        returns the field-solver truth; *points* overrides the sample
        (used when several tables share one solve, e.g. L and R from a
        single loop problem).
        """
        if points is None:
            points = self.sample_points(table.axes, table.name)
        registry = get_registry()
        with span("quality.audit", table=table.name, samples=len(points)):
            records = []
            for point in points:
                registry.inc(AUDIT_SOLVE)
                direct = float(solve_fn(tuple(point)))
                lookup = float(table.lookup(*point))
                records.append((tuple(point), lookup, direct))
        return self._grade(table, records)

    def audit_job(self, job, tables: Sequence) -> Dict[str, TableHealthReport]:
        """Audit every output table of a characterization job at once.

        One :meth:`~repro.library.jobs.CharacterizationJob.solve_point`
        call yields every output column (a loop job returns (L, R)), so
        an n-sample audit of a two-table job costs n solves, not 2n.
        Returns ``{table name -> report}``.
        """
        outputs = {o.name: i for i, o in enumerate(job.outputs())}
        points = self.sample_points(job.axes(), job.job_id)
        registry = get_registry()
        with span("library.audit", job=job.kind, samples=len(points)):
            solved = []
            for point in points:
                registry.inc(AUDIT_SOLVE)
                solved.append(tuple(float(v) for v in job.solve_point(point)))
            reports: Dict[str, TableHealthReport] = {}
            for table in tables:
                column = outputs.get(table.name)
                if column is None:
                    continue
                records = [
                    (point, float(table.lookup(*point)), values[column])
                    for point, values in zip(points, solved)
                ]
                reports[table.name] = self._grade(table, records)
        return reports

    # ------------------------------------------------------------------
    def _grade(
        self,
        table,
        records: Sequence[Tuple[Tuple[float, ...], float, float]],
    ) -> TableHealthReport:
        from repro.quality.regress import git_sha

        errors = []
        samples = []
        for point, lookup, direct in records:
            scale = max(abs(direct), abs(lookup))
            rel = abs(lookup - direct) / scale if scale > 0.0 else 0.0
            errors.append(rel)
            samples.append({
                "point": [float(q) for q in point],
                "lookup": lookup,
                "direct": direct,
                "rel_error": round(rel, 8),
            })
        errs = np.asarray(errors, dtype=float)
        p95 = float(np.percentile(errs, 95.0)) if errs.size else 0.0
        report = TableHealthReport(
            table_name=str(table.name),
            quantity=str(getattr(table, "quantity", "")),
            n_samples=len(samples),
            seed=self.seed,
            error_budget=self.error_budget,
            max_rel_error=float(errs.max()) if errs.size else 0.0,
            median_rel_error=float(np.median(errs)) if errs.size else 0.0,
            p95_rel_error=p95,
            passed=p95 <= self.error_budget,
            created_at=time.time(),
            git_sha=git_sha(),
            samples=samples,
        )
        return report


# ----------------------------------------------------------------------
# stored-library auditing (`repro library audit`)
# ----------------------------------------------------------------------
def audit_library(
    library, budget: Optional[float] = None,
) -> Tuple[List[TableHealthReport], List[str]]:
    """Check the health reports embedded in a library's manifest.

    Libraries built with an auditor carry one ``metadata["health"]``
    report per table; this re-checks each against *budget* (default:
    the budget recorded at build time) and flags tables that were never
    audited.  Returns ``(reports, problems)`` -- an empty problem list
    means the kit is healthy.
    """
    reports: List[TableHealthReport] = []
    problems: List[str] = []
    for entry in library.entries():
        raw = (entry.metadata or {}).get("health")
        if raw is None:
            problems.append(
                f"{entry.key[:12]}: {entry.name} has no health report "
                "(built without --audit)"
            )
            continue
        try:
            report = TableHealthReport.from_dict(raw)
        except QualityError as exc:
            problems.append(f"{entry.key[:12]}: {entry.name}: {exc}")
            continue
        reports.append(report)
        if not report.check(budget):
            effective = report.error_budget if budget is None else budget
            problems.append(
                f"{entry.key[:12]}: {entry.name} p95 error "
                f"{report.p95_rel_error:.2%} exceeds budget {effective:.2%}"
            )
    return reports, problems


def render_health(reports: Sequence, title: str = "table health") -> str:
    """Render health reports (objects or dicts) as an aligned block."""
    lines = [f"{title} ({len(reports)} table(s))"]
    for report in reports:
        if isinstance(report, dict):
            report = TableHealthReport.from_dict(report)
        lines.append("  " + report.render())
    return "\n".join(lines) + "\n"
