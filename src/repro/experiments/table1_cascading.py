"""Table I: linear cascading of guarded segment loop inductances.

For each Fig. 6 tree: extract the loop inductance of the whole structure
with the full PEEC network ("Loop L from RI3"), extract each segment in
isolation and combine serially/in-parallel ("Eff. Loop L from S/P
combination"), and report the relative error.  The paper's values are
3.57 % and 1.55 %; tightly guarded structures reproduce with sub-percent
errors, growing with guard spacing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cascade.combine import CascadeComparison, cascading_comparison
from repro.cascade.tree import InterconnectTree, figure6a_tree, figure6b_tree
from repro.constants import GHz


@dataclass
class Table1Row:
    """One Table-I structure."""

    name: str
    comparison: CascadeComparison

    @property
    def error_percent(self) -> float:
        """Cascading inductance error [%]."""
        return self.comparison.inductance_error * 100.0


@dataclass
class Table1Result:
    """All Table-I rows at one frequency."""

    frequency: float
    rows: List[Table1Row]

    @property
    def max_error_percent(self) -> float:
        """Worst cascading error over the structures [%]."""
        return max(row.error_percent for row in self.rows)


def run_table1(
    frequency: float = GHz(3.0),
    trees: Optional[Dict[str, InterconnectTree]] = None,
    n_width: int = 1,
    n_thickness: int = 1,
) -> Table1Result:
    """Run the cascading comparison on the Fig. 6 trees (or custom ones)."""
    if trees is None:
        trees = {"fig6a": figure6a_tree(), "fig6b": figure6b_tree()}
    rows = [
        Table1Row(
            name=name,
            comparison=cascading_comparison(
                tree, frequency, n_width=n_width, n_thickness=n_thickness
            ),
        )
        for name, tree in trees.items()
    ]
    return Table1Result(frequency=frequency, rows=rows)
