"""Sec. V: clock skew error when inductance is omitted (> 10 % claim).

An asymmetric buffered H-tree (one branch deliberately longer, as
happens with blockage-driven routing) is extracted twice -- RC-only and
full RLC -- and simulated.  The paper states the skew difference without
inductance "can be more than 10 %"; this experiment measures the skew
and per-sink delay discrepancies between the two netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.clocktree.buffers import ClockBuffer
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor
from repro.clocktree.htree import HTree
from repro.clocktree.skew import SkewComparison, compare_rc_vs_rlc
from repro.constants import fF, ps, um
from repro.core.frequency import significant_frequency


@dataclass
class HTreeSkewResult:
    """RC vs RLC skew metrics for one H-tree."""

    comparison: SkewComparison
    htree: HTree

    @property
    def rc_skew(self) -> float:
        """Skew of the RC-only netlist [s]."""
        return self.comparison.rc.skew

    @property
    def rlc_skew(self) -> float:
        """Skew of the full RLC netlist [s]."""
        return self.comparison.rlc.skew

    @property
    def skew_discrepancy_percent(self) -> float:
        """Relative skew error of RC vs RLC [%]."""
        return self.comparison.skew_discrepancy * 100.0

    @property
    def delay_discrepancy_percent(self) -> float:
        """Relative max-delay error of RC vs RLC [%]."""
        return self.comparison.delay_discrepancy * 100.0


def default_htree(
    levels: int = 2,
    root_length: float = um(4000),
    asymmetry: float = 1.5,
) -> HTree:
    """A small buffered H-tree with one stretched branch.

    The ``s_LL`` branch is *asymmetry* times longer than its mirror, the
    kind of imbalance floorplan obstructions force.  Buffers use the
    strong-driver regime (15 ohm, 50 ps edges) where the line's ~27 ohm
    characteristic impedance makes inductance matter -- see the
    calibration note in :mod:`repro.experiments.fig1_delay`.
    """
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    buffer = ClockBuffer(
        drive_resistance=15.0, input_capacitance=fF(30),
        supply=1.8, rise_time=ps(50),
    )
    return HTree.generate(
        levels=levels,
        root_length=root_length,
        config=config,
        buffer=buffer,
        sink_capacitance=fF(50),
        branch_scale={"s_LL": asymmetry},
    )


def run_htree_skew(
    htree: Optional[HTree] = None,
    extractor: Optional[ClocktreeRLCExtractor] = None,
    t_stop: float = ps(3000),
    dt: float = ps(0.5),
    library: Optional[Union[str, Path, object]] = None,
    solver: str = "auto",
) -> HTreeSkewResult:
    """Extract and simulate the skew comparison on an H-tree.

    When *library* names a characterization library
    (:class:`~repro.library.store.TableLibrary` or its root path) the
    default extractor pulls its loop-L/R and capacitance tables from it;
    on a warm library the whole experiment runs without a single
    field-solver call.  *solver* picks the transient factorization
    backend (``"auto"`` / ``"dense"`` / ``"sparse"``).
    """
    if htree is None:
        htree = default_htree()
    if extractor is None:
        extractor = ClocktreeRLCExtractor(
            htree.config,
            frequency=significant_frequency(htree.buffer.rise_time),
            library=library,
        )
    comparison = compare_rc_vs_rlc(extractor, htree, t_stop=t_stop, dt=dt,
                                   solver=solver)
    return HTreeSkewResult(comparison=comparison, htree=htree)
