"""Fig. 5: loop inductance matrix of a trace array over a ground plane.

The paper shows (a) the loop-L matrix of a 5-trace array in layer N with
a ground plane in layer N-2, (b) that trace T1 solved alone over the
plane reproduces its in-array self loop L (Foundation 1), and (c) that
the (T1, T5) pair solved alone reproduces the in-array mutual loop L
(Foundation 2).  These are the checks that license the table reduction
for microstrip/stripline structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import GHz, um
from repro.core.foundations import (
    FoundationCheck,
    foundation1_check,
    foundation2_check,
    loop_inductance_matrix,
)
from repro.geometry.trace import TraceBlock
from repro.peec.ground_plane import plane_under_block


@dataclass
class Fig5Result:
    """The loop-L matrix plus both Foundation checks."""

    trace_names: List[str]
    loop_matrix: np.ndarray
    foundation1: FoundationCheck
    foundation2: FoundationCheck
    frequency: float

    @property
    def max_foundation_error(self) -> float:
        """Worst of the two reduction errors."""
        return max(
            self.foundation1.relative_error, self.foundation2.relative_error
        )


def run_fig5(
    n_traces: int = 5,
    width: float = um(5),
    spacing: float = um(5),
    thickness: float = um(1),
    plane_gap: float = um(8),
    plane_strips: int = 15,
    length: float = um(2000),
    frequency: float = GHz(1.0),
    n_width: int = 2,
    n_thickness: int = 1,
) -> Fig5Result:
    """Reproduce the Fig. 5 experiment on an n-trace microstrip array."""
    block = TraceBlock.from_widths_and_spacings(
        widths=[width] * n_traces,
        spacings=[spacing] * (n_traces - 1),
        length=length,
        thickness=thickness,
        ground_flags=[False] * n_traces,
    )
    plane = plane_under_block(block, gap=plane_gap, n_strips=plane_strips)
    matrix = loop_inductance_matrix(
        block, plane, frequency, n_width=n_width, n_thickness=n_thickness
    )
    check1 = foundation1_check(
        block, plane, frequency, trace_index=0,
        n_width=n_width, n_thickness=n_thickness,
    )
    check2 = foundation2_check(
        block, plane, frequency, index_a=0, index_b=n_traces - 1,
        n_width=n_width, n_thickness=n_thickness,
    )
    return Fig5Result(
        trace_names=[t.name for t in block.traces],
        loop_matrix=matrix,
        foundation1=check1,
        foundation2=check2,
        frequency=frequency,
    )
