"""Figs. 1-3: the motivating CPW clock-net delay experiment.

The paper's Fig. 1 structure: a 6000 um co-planar waveguide, 10 um
signal, 5 um grounds, 1 um spacing, 2 um thick metal, driven by a clock
buffer with ~40 ohm source resistance, an orthogonal signal layer below.
Simulated without inductance (RC netlist) the buffer-to-sink delay is
28.01 ps; with inductance 47.6 ps, with visible overshoot/undershoot
(Figs. 2 and 3).  This experiment extracts both netlists with the repro
flow and measures the same quantities.

Calibration note: faithfully extracting the stated geometry gives
C ~ 2.4 pF (the 1 um gaps to the 5 um shields couple hard) and loop
L ~ 1.7 nH, i.e. Z0 ~ 27 ohm.  A 40 ohm driver overdamps such a line,
so the paper's waveform shapes imply an effectively lighter-loaded /
stronger-driven net.  The defaults here use the strong-driver regime
the paper's introduction motivates ("large driver and therefore smaller
source impedance"): Rs = 15 ohm, t_r = 50 ps, which reproduces the
paper's shape -- RLC delay ~ 50 ps (paper: 47.6 ps), several times the
RC delay, with clear overshoot and undershoot.  Sweep
``drive_resistance`` to see the effect switch off as Rs crosses Z0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.circuit.diagnostics import TransientDiagnostics
from repro.circuit.lint import NetlistHealthReport, lint_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PulseSource
from repro.circuit.transient import transient_analysis
from repro.circuit.waveform import Waveform
from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.clocktree.extractor import ClocktreeRLCExtractor, SegmentRLC
from repro.constants import fF, ps, um
from repro.core.frequency import significant_frequency


@dataclass
class Fig1Result:
    """Delays and waveform metrics of the Fig. 1 experiment."""

    rlc: SegmentRLC
    delay_rc: float
    delay_rlc: float
    overshoot_rlc: float
    undershoot_rlc: float
    overshoot_rc: float
    driver_wave_rc: Waveform
    sink_wave_rc: Waveform
    driver_wave_rlc: Waveform
    sink_wave_rlc: Waveform
    #: Per-netlist transient diagnostics + health lint (PR 5).
    diagnostics_rc: Optional[TransientDiagnostics] = None
    diagnostics_rlc: Optional[TransientDiagnostics] = None
    health_rc: Optional[NetlistHealthReport] = None
    health_rlc: Optional[NetlistHealthReport] = None

    @property
    def delay_ratio(self) -> float:
        """RLC delay over RC delay (the paper's is 47.6 / 28.01 = 1.70)."""
        return self.delay_rlc / self.delay_rc

    def simulation_reports(self) -> Dict[str, Any]:
        """Per-netlist diagnostics/health dicts for RunReport v3."""
        sections: Dict[str, Any] = {}
        for label, diag, health in (
            ("rc", self.diagnostics_rc, self.health_rc),
            ("rlc", self.diagnostics_rlc, self.health_rlc),
        ):
            section: Dict[str, Any] = {}
            if diag is not None:
                section["diagnostics"] = diag.to_dict()
            if health is not None:
                section["netlist_health"] = health.to_dict()
            if section:
                sections[label] = section
        return sections


def _single_net_circuit(
    rlc: SegmentRLC,
    drive_resistance: float,
    supply: float,
    rise_time: float,
    sink_capacitance: float,
    sections: int,
    include_inductance: bool,
) -> Circuit:
    """Driver -> guarded-line ladder -> sink load."""
    circuit = Circuit("fig1_rlc" if include_inductance else "fig1_rc")
    source = PulseSource(
        v1=0.0, v2=supply, delay=rise_time, rise=rise_time,
        fall=rise_time, width=1.0,
    )
    circuit.add_voltage_source("Vclk", "src", "0", source)
    circuit.add_resistor("Rdrv", "src", "drv", drive_resistance)
    node = "drv"
    r_per = rlc.resistance / sections
    l_per = rlc.inductance / sections
    c_half = rlc.capacitance / (2.0 * sections)
    for k in range(sections):
        end = f"n{k + 1}"
        circuit.add_capacitor(f"C{k}a", node, "0", c_half)
        if include_inductance:
            mid = f"m{k + 1}"
            circuit.add_resistor(f"R{k}", node, mid, r_per)
            circuit.add_inductor(f"L{k}", mid, end, l_per)
        else:
            circuit.add_resistor(f"R{k}", node, end, r_per)
        circuit.add_capacitor(f"C{k}b", end, "0", c_half)
        node = end
    circuit.add_capacitor("Csink", node, "0", sink_capacitance)
    return circuit


def run_fig1(
    length: float = um(6000),
    signal_width: float = um(10),
    ground_width: float = um(5),
    spacing: float = um(1),
    thickness: float = um(2),
    height_below: float = um(2),
    drive_resistance: float = 15.0,
    supply: float = 1.8,
    rise_time: float = ps(50),
    sink_capacitance: float = fF(20),
    sections: int = 10,
    extractor: Optional[ClocktreeRLCExtractor] = None,
    t_stop: float = ps(1500),
    dt: float = ps(0.25),
    library=None,
) -> Fig1Result:
    """Extract and simulate the Fig. 1 net with and without inductance.

    *library* optionally names a characterization library (path or
    :class:`~repro.library.store.TableLibrary`); when its tables cover
    this structure family the extraction is pure lookups.
    """
    config = CoplanarWaveguideConfig(
        signal_width=signal_width,
        ground_width=ground_width,
        spacing=spacing,
        thickness=thickness,
        height_below=height_below,
    )
    if extractor is None:
        extractor = ClocktreeRLCExtractor(
            config, frequency=significant_frequency(rise_time),
            library=library,
        )
    rlc = extractor.segment_rlc(length, signal_width=signal_width)

    waves = {}
    diagnostics = {}
    health = {}
    for include_l in (False, True):
        circuit = _single_net_circuit(
            rlc, drive_resistance, supply, rise_time,
            sink_capacitance, sections, include_l,
        )
        sink_node = f"n{sections}"
        health[include_l] = lint_circuit(circuit)
        result = transient_analysis(circuit, t_stop=t_stop, dt=dt)
        diagnostics[include_l] = result.diagnostics
        waves[include_l] = (result.voltage("drv"), result.voltage(sink_node))

    threshold = 0.5 * supply
    delays = {}
    for include_l, (drv, sink) in waves.items():
        t_drv = drv.threshold_crossing(threshold)
        t_sink = sink.threshold_crossing(threshold)
        if t_drv is None or t_sink is None:
            raise RuntimeError("waveforms never cross threshold; extend t_stop")
        delays[include_l] = t_sink - t_drv

    sink_rc = waves[False][1]
    sink_rlc = waves[True][1]
    return Fig1Result(
        rlc=rlc,
        delay_rc=delays[False],
        delay_rlc=delays[True],
        overshoot_rlc=sink_rlc.overshoot(reference=supply),
        undershoot_rlc=sink_rlc.undershoot(reference=supply),
        overshoot_rc=sink_rc.overshoot(reference=supply),
        driver_wave_rc=waves[False][0],
        sink_wave_rc=sink_rc,
        driver_wave_rlc=waves[True][0],
        sink_wave_rlc=sink_rlc,
        diagnostics_rc=diagnostics[False],
        diagnostics_rlc=diagnostics[True],
        health_rc=health[False],
        health_rlc=health[True],
    )
