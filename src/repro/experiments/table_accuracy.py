"""Sec. III: table lookup accuracy and speed against direct field solves.

The paper's efficiency claim: precomputed tables with bicubic-spline
interpolation answer extraction queries with no practical loss of
accuracy and at a tiny fraction of a field-solve's cost.  This
experiment characterizes a CPW family, probes the tables at off-grid
points and reports interpolation error and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.core.extraction import AccuracyProbe, TableBasedExtractor


@dataclass
class TableAccuracyResult:
    """Probe errors and timings for one characterized family."""

    probes: List[AccuracyProbe]
    characterization_time: float

    @property
    def max_error(self) -> float:
        """Worst interpolation error over the probes."""
        return max(p.relative_error for p in self.probes)

    @property
    def mean_error(self) -> float:
        """Mean interpolation error over the probes."""
        return float(np.mean([p.relative_error for p in self.probes]))

    @property
    def mean_speedup(self) -> float:
        """Mean lookup speedup over a direct solve."""
        return float(np.mean([p.speedup for p in self.probes]))


def default_config() -> CoplanarWaveguideConfig:
    """The CPW family used for the accuracy study (Fig. 1-like)."""
    return CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )


def run_table_accuracy(
    config: Optional[CoplanarWaveguideConfig] = None,
    frequency: float = GHz(3.2),
    widths: Sequence[float] = tuple(um(w) for w in (4, 8, 12, 16)),
    lengths: Sequence[float] = tuple(um(l) for l in (500, 1500, 3000, 6000)),
    probe_points: Optional[Sequence[Tuple[float, float]]] = None,
) -> TableAccuracyResult:
    """Characterize, probe off-grid, report error and speedup."""
    import time

    if config is None:
        config = default_config()
    if probe_points is None:
        probe_points = [
            (um(6), um(1000)),
            (um(10), um(2200)),
            (um(14), um(4500)),
            (um(5), um(5000)),
        ]
    t0 = time.perf_counter()
    extractor = TableBasedExtractor.characterize(
        config, frequency=frequency, widths=widths, lengths=lengths,
    )
    characterization_time = time.perf_counter() - t0
    probes = [extractor.accuracy_probe(w, l) for w, l in probe_points]
    return TableAccuracyResult(
        probes=probes, characterization_time=characterization_time
    )
