"""Paper experiments, one module per table/figure.

Each ``run_*`` function reproduces one experiment from the evaluation
and returns a structured result; the benchmark harness, the examples and
the command line all call into these so the experiment definitions live
in exactly one place.

===========================  ==================================================
module                       paper content
===========================  ==================================================
``fig1_delay``               Figs. 1-3: CPW clock net delay RC vs RLC,
                             overshoot/undershoot
``fig5_foundations``         Fig. 5: loop-L matrix over a plane; Foundations
``table1_cascading``         Table I: linear cascading error on Fig. 6 trees
``length_scaling``           Sec. V: super-linear L(length)
``table_accuracy``           Sec. III: table interpolation accuracy + speedup
``htree_skew``               Sec. V: clock skew RC vs RLC (> 10 % claim)
``process_variation``        Sec. V: statistical RC + nominal L
===========================  ==================================================
"""

from repro.experiments.fig1_delay import Fig1Result, run_fig1
from repro.experiments.fig5_foundations import Fig5Result, run_fig5
from repro.experiments.htree_skew import HTreeSkewResult, run_htree_skew
from repro.experiments.length_scaling import LengthScalingResult, run_length_scaling
from repro.experiments.process_variation import (
    ProcessVariationResult,
    VariationSkewResult,
    run_process_variation,
    run_variation_skew,
)
from repro.experiments.table1_cascading import Table1Result, run_table1
from repro.experiments.table_accuracy import TableAccuracyResult, run_table_accuracy

__all__ = [
    "run_fig1", "Fig1Result",
    "run_fig5", "Fig5Result",
    "run_table1", "Table1Result",
    "run_length_scaling", "LengthScalingResult",
    "run_table_accuracy", "TableAccuracyResult",
    "run_htree_skew", "HTreeSkewResult",
    "run_process_variation", "ProcessVariationResult",
    "run_variation_skew", "VariationSkewResult",
]
