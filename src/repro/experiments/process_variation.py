"""Sec. V: statistical RC with nominal inductance.

The paper combines statistically generated RC (ref [4]) with the
*nominal* inductance when studying process impact on skew, arguing that
inductance is insensitive to process variation.  This experiment
verifies the premise -- loop L varies far less than R and C under the
same geometry perturbations -- and propagates the RC population through
a clock-net delay simulation with nominal L.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocktree.configs import CoplanarWaveguideConfig
from repro.constants import GHz, um
from repro.peec.loop import LoopProblem
from repro.rc.statistical import (
    ProcessVariation,
    StatisticalRC,
    monte_carlo_rc,
    perturb_block,
    sample_factors,
)


@dataclass
class ProcessVariationResult:
    """Relative variability of R, C and loop L under process variation."""

    statistical_rc: StatisticalRC
    loop_inductances: np.ndarray

    @property
    def r_spread(self) -> float:
        """sigma/mean of the signal resistance."""
        return self.statistical_rc.resistance_std / self.statistical_rc.resistance_mean

    @property
    def c_spread(self) -> float:
        """sigma/mean of the signal capacitance."""
        return self.statistical_rc.capacitance_std / self.statistical_rc.capacitance_mean

    @property
    def l_spread(self) -> float:
        """sigma/mean of the loop inductance."""
        return float(self.loop_inductances.std() / self.loop_inductances.mean())

    @property
    def l_insensitivity_factor(self) -> float:
        """How much steadier L is than the RC geometry quantities.

        min(r_spread, c_spread) / l_spread -- the paper's premise holds
        when this is well above 1.
        """
        if self.l_spread == 0.0:
            return float("inf")
        return min(self.r_spread, self.c_spread) / self.l_spread


@dataclass
class VariationSkewResult:
    """Skew distribution with statistical RC and nominal L (Sec. V)."""

    skews: np.ndarray
    max_delays: np.ndarray
    nominal_skew: float
    nominal_max_delay: float

    @property
    def skew_spread(self) -> float:
        """sigma/mean of the skew population."""
        return float(self.skews.std() / self.skews.mean())

    @property
    def delay_spread(self) -> float:
        """sigma/mean of the max-delay population."""
        return float(self.max_delays.std() / self.max_delays.mean())

    @property
    def worst_skew(self) -> float:
        """Largest sampled skew [s]."""
        return float(self.skews.max())


def run_variation_skew(
    variation: Optional[ProcessVariation] = None,
    n_samples: int = 15,
    seed: int = 11,
) -> VariationSkewResult:
    """Clock-skew distribution: statistical RC, nominal L (Sec. V).

    The paper's proposal verbatim: "we can combine the nominal
    inductance with the statistically generated RC in the formulation of
    RLC netlist in the study of process variation impact to clock skew."
    Each Monte-Carlo sample scales the wire R and C of an asymmetric
    H-tree netlist by factors drawn from the process model while the
    inductances stay at their nominal table values.
    """
    from repro.constants import ps
    from repro.core.frequency import significant_frequency
    from repro.clocktree.skew import simulate_clocktree
    from repro.experiments.htree_skew import default_htree
    from repro.rc.statistical import monte_carlo_rc

    if variation is None:
        variation = ProcessVariation(
            sigma_width=0.01, sigma_thickness=0.05,
            sigma_ild=0.07, sigma_resistivity=0.03,
        )
    htree = default_htree()
    from repro.clocktree.extractor import ClocktreeRLCExtractor

    extractor = ClocktreeRLCExtractor(
        htree.config, frequency=significant_frequency(htree.buffer.rise_time)
    )

    # per-sample R/C factors from the single-block statistical model
    block = htree.config.trace_block(um(2000))
    stats = monte_carlo_rc(
        block, htree.config.capacitance_model(), variation,
        n_samples=n_samples, seed=seed,
    )
    nominal = monte_carlo_rc(
        block, htree.config.capacitance_model(),
        ProcessVariation(0.0, 0.0, 0.0, 0.0), n_samples=1,
    )
    r_factors = stats.resistances / nominal.resistances[0]
    c_factors = stats.ground_capacitances / nominal.ground_capacitances[0]

    def simulate(rc_scale):
        netlist = extractor.build_netlist(htree, rc_scale=rc_scale)
        result = simulate_clocktree(
            netlist, supply=htree.buffer.supply,
            t_stop=ps(4000), dt=ps(1),
        )
        return result.skew, result.max_delay

    nominal_skew, nominal_delay = simulate((1.0, 1.0))
    skews = np.empty(n_samples)
    delays = np.empty(n_samples)
    for k in range(n_samples):
        skews[k], delays[k] = simulate((float(r_factors[k]),
                                        float(c_factors[k])))
    return VariationSkewResult(
        skews=skews,
        max_delays=delays,
        nominal_skew=nominal_skew,
        nominal_max_delay=nominal_delay,
    )


def run_process_variation(
    variation: Optional[ProcessVariation] = None,
    n_rc_samples: int = 200,
    n_l_samples: int = 25,
    length: float = um(2000),
    frequency: float = GHz(3.2),
    seed: int = 7,
) -> ProcessVariationResult:
    """Monte-Carlo R/C and loop-L populations on the Fig. 1 CPW.

    The default variation uses a 1 % width sigma: etch bias is an
    *absolute* excursion (~0.1 um), which on a 10 um clock wire is a
    small relative change -- applying minimum-width-style 5 % relative
    sigma to a wide wire would swallow the 1 um shield gap and overstate
    every spread.
    """
    if variation is None:
        variation = ProcessVariation(
            sigma_width=0.01, sigma_thickness=0.05,
            sigma_ild=0.07, sigma_resistivity=0.03,
        )
    config = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    block = config.trace_block(length)
    stats = monte_carlo_rc(
        block, config.capacitance_model(), variation,
        n_samples=n_rc_samples, seed=seed,
    )

    rng = np.random.default_rng(seed + 1)
    loop_values = np.empty(n_l_samples)
    for k in range(n_l_samples):
        sample = sample_factors(variation, rng)
        perturbed = perturb_block(block, sample)
        problem = LoopProblem(perturbed, n_width=1, n_thickness=1)
        _, loop_values[k] = problem.loop_rl(frequency)
    return ProcessVariationResult(
        statistical_rc=stats, loop_inductances=loop_values
    )
