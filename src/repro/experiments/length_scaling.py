"""Sec. V: inductance is a super-linear function of trace length.

The paper warns that self and mutual inductance do not scale linearly
with length (doubling a 1000 um segment multiplies L by about 2.2, not
2), which is why tables carry a length axis and why segments must be
extracted at their full length before cascading.  This experiment sweeps
the exact self and mutual partial inductances over length and reports
the doubling ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import um
from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.peec.hoer_love import bar_mutual_inductance, bar_self_inductance


@dataclass
class LengthScalingResult:
    """Self/mutual L over a length sweep plus doubling ratios."""

    lengths: np.ndarray
    self_inductance: np.ndarray
    mutual_inductance: np.ndarray
    width: float
    thickness: float
    pitch: float

    def doubling_ratio(self, length: float) -> float:
        """L(2 length) / L(length) for the self inductance."""
        l1 = float(np.interp(length, self.lengths, self.self_inductance))
        l2 = float(np.interp(2.0 * length, self.lengths, self.self_inductance))
        if not (self.lengths[0] <= 2.0 * length <= self.lengths[-1]):
            raise GeometryError("2x length outside the swept range")
        return l2 / l1

    def mutual_doubling_ratio(self, length: float) -> float:
        """M(2 length) / M(length) for the mutual inductance."""
        m1 = float(np.interp(length, self.lengths, self.mutual_inductance))
        m2 = float(np.interp(2.0 * length, self.lengths, self.mutual_inductance))
        return m2 / m1

    @property
    def per_length_slope_growth(self) -> float:
        """L/length at the longest point over L/length at the shortest --
        > 1 demonstrates super-linearity."""
        per_len = self.self_inductance / self.lengths
        return float(per_len[-1] / per_len[0])


def run_length_scaling(
    lengths: Sequence[float] = tuple(um(l) for l in (250, 500, 1000, 1500, 2000, 3000, 4000)),
    width: float = um(5),
    thickness: float = um(2),
    pitch: float = um(10),
) -> LengthScalingResult:
    """Sweep exact self/mutual partial inductance over trace length."""
    lengths = np.asarray(sorted(lengths), dtype=float)
    if lengths[0] <= 0.0:
        raise GeometryError("lengths must be positive")
    self_l = np.empty(lengths.size)
    mutual_l = np.empty(lengths.size)
    for i, length in enumerate(lengths):
        bar = RectBar(Point3D(0, 0, 0), float(length), width, thickness)
        other = RectBar(Point3D(0, pitch, 0), float(length), width, thickness)
        self_l[i] = bar_self_inductance(bar)
        mutual_l[i] = bar_mutual_inductance(bar, other)
    return LengthScalingResult(
        lengths=lengths,
        self_inductance=self_l,
        mutual_inductance=mutual_l,
        width=width,
        thickness=thickness,
        pitch=pitch,
    )
