"""The "at least equal width" guard rule (Sec. IV).

"Since the width of each ground wire is the same as that of the signal
wire and the shielding will improve if wider ground wires are used, we
have the at least equal width conclusion."  These helpers quantify the
rule: sweep the guard-to-signal width ratio and measure both the
cascading error (how self-contained each segment is) and the loop
inductance itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence


from repro.cascade.combine import cascading_comparison
from repro.cascade.tree import InterconnectTree
from repro.errors import GeometryError


@dataclass(frozen=True)
class GuardRulePoint:
    """One guard-width ratio evaluation."""

    width_ratio: float
    cascading_error: float
    loop_inductance: float


@dataclass
class GuardRuleStudy:
    """Cascading fidelity across guard-to-signal width ratios."""

    points: List[GuardRulePoint]

    def error_at(self, ratio: float) -> float:
        """Cascading error of the point closest to *ratio*."""
        closest = min(self.points, key=lambda p: abs(p.width_ratio - ratio))
        return closest.cascading_error

    @property
    def equal_width_error(self) -> float:
        """Cascading error at the paper's minimum recommended ratio (1.0)."""
        return self.error_at(1.0)

    def rule_holds(self, tolerance: float = 0.05) -> bool:
        """True when every ratio >= 1 cascades within *tolerance*."""
        return all(
            p.cascading_error <= tolerance
            for p in self.points if p.width_ratio >= 1.0 - 1e-12
        )


def guard_width_study(
    tree: InterconnectTree,
    width_ratios: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    frequency: float = 3.0e9,
) -> GuardRuleStudy:
    """Sweep the ground-wire width and re-run the Table-I comparison.

    The signal width stays fixed; the ground wires scale by each ratio.
    """
    if not width_ratios:
        raise GeometryError("need at least one width ratio")
    points: List[GuardRulePoint] = []
    for ratio in width_ratios:
        if ratio <= 0.0:
            raise GeometryError("width ratios must be positive")
        scaled = replace(tree, ground_width=tree.signal_width * ratio)
        comparison = cascading_comparison(scaled, frequency)
        points.append(
            GuardRulePoint(
                width_ratio=float(ratio),
                cascading_error=comparison.inductance_error,
                loop_inductance=comparison.full_inductance,
            )
        )
    return GuardRuleStudy(points=points)
