"""Guarded interconnect trees (the structures of the paper's Fig. 6).

Every segment of the tree is a three-wire system: a centre signal wire
sandwiched by two ground wires of equal (or greater) width.  The tree
branches at junction points; leaves are shorted signal-to-ground so the
whole structure forms one driving-point loop, which is what the paper's
Table I extracts with RI3 and compares against the series/parallel
combination of per-segment loop inductances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constants import RHO_CU
from repro.errors import GeometryError
from repro.geometry.primitives import Point3D, RectBar
from repro.geometry.trace import TraceBlock
from repro.peec.network import FilamentNetwork

#: Junction name of the tree root (the driven end).
ROOT = "ROOT"


@dataclass(frozen=True)
class SegmentSpec:
    """One guarded segment: *parent* is the upstream segment (None = root)."""

    name: str
    length: float
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise GeometryError(f"segment {self.name!r}: length must be positive")
        if self.name == ROOT:
            raise GeometryError(f"segment name {ROOT!r} is reserved")


@dataclass
class InterconnectTree:
    """A tree of guarded (ground-signal-ground) segments.

    Geometry is laid out in the z = 0 plane: the root segment runs along
    +x from the origin, and orientation alternates with tree depth (x,
    y, x, ...) as in an H-tree; the first child at a junction continues
    in the positive direction, the second in the negative.

    Parameters
    ----------
    segments:
        Segment specs; exactly one must have ``parent=None``.
    signal_width, ground_width, spacing, thickness:
        The shared three-wire cross-section [m].  The paper's guard
        condition requires ``ground_width >= signal_width``.
    """

    segments: List[SegmentSpec]
    signal_width: float
    ground_width: float
    spacing: float
    thickness: float
    resistivity: float = RHO_CU

    def __post_init__(self) -> None:
        if not self.segments:
            raise GeometryError("tree needs at least one segment")
        if min(self.signal_width, self.ground_width, self.spacing, self.thickness) <= 0.0:
            raise GeometryError("cross-section dimensions must be positive")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise GeometryError(f"duplicate segment names in {names}")
        roots = [s for s in self.segments if s.parent is None]
        if len(roots) != 1:
            raise GeometryError(f"tree must have exactly one root, found {len(roots)}")
        by_name = {s.name: s for s in self.segments}
        for seg in self.segments:
            if seg.parent is not None and seg.parent not in by_name:
                raise GeometryError(
                    f"segment {seg.name!r} references unknown parent {seg.parent!r}"
                )
        # reject cycles / unreachable segments
        for seg in self.segments:
            seen = set()
            cursor = seg
            while cursor.parent is not None:
                if cursor.name in seen:
                    raise GeometryError(f"cycle through segment {cursor.name!r}")
                seen.add(cursor.name)
                cursor = by_name[cursor.parent]
        self._by_name = by_name

    @property
    def root(self) -> SegmentSpec:
        """The root segment."""
        return next(s for s in self.segments if s.parent is None)

    def segment(self, name: str) -> SegmentSpec:
        """Look up a segment by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GeometryError(f"unknown segment {name!r}") from None

    def children(self, name: str) -> List[SegmentSpec]:
        """Segments whose parent is *name*, in declaration order."""
        return [s for s in self.segments if s.parent == name]

    def leaves(self) -> List[SegmentSpec]:
        """Segments with no children (shorted signal-to-ground ends)."""
        return [s for s in self.segments if not self.children(s.name)]

    def depth(self, name: str) -> int:
        """Number of ancestors of segment *name*."""
        seg = self.segment(name)
        count = 0
        while seg.parent is not None:
            seg = self.segment(seg.parent)
            count += 1
        return count

    # ------------------------------------------------------------------
    # geometric layout
    # ------------------------------------------------------------------
    def layout(self) -> Dict[str, Tuple[Tuple[float, float], str, float]]:
        """Geometric placement of every segment.

        Returns ``{name: ((x_start, y_start), axis, direction)}`` where
        *axis* is ``'x'`` or ``'y'`` and *direction* is +1.0 or -1.0.
        """
        placements: Dict[str, Tuple[Tuple[float, float], str, float]] = {}
        ends: Dict[str, Tuple[float, float]] = {ROOT: (0.0, 0.0)}

        def place(seg: SegmentSpec, start: Tuple[float, float], depth: int,
                  direction: float) -> None:
            axis = "x" if depth % 2 == 0 else "y"
            placements[seg.name] = (start, axis, direction)
            dx = seg.length * direction if axis == "x" else 0.0
            dy = seg.length * direction if axis == "y" else 0.0
            end = (start[0] + dx, start[1] + dy)
            ends[seg.name] = end
            for idx, child in enumerate(self.children(seg.name)):
                child_dir = 1.0 if idx % 2 == 0 else -1.0
                place(child, end, depth + 1, child_dir)

        place(self.root, (0.0, 0.0), 0, 1.0)
        return placements

    def _segment_bars(
        self, seg: SegmentSpec, start: Tuple[float, float], axis: str,
        direction: float,
    ) -> Tuple[RectBar, RectBar, RectBar]:
        """(signal, ground_left, ground_right) bars for one placed segment."""
        lateral_offset = self.signal_width / 2.0 + self.spacing + self.ground_width / 2.0
        x0, y0 = start
        if direction < 0:
            if axis == "x":
                x0 -= seg.length
            else:
                y0 -= seg.length

        def bar(width: float, lateral: float) -> RectBar:
            if axis == "x":
                origin = Point3D(x0, y0 + lateral - width / 2.0, 0.0)
            else:
                origin = Point3D(x0 + lateral - width / 2.0, y0, 0.0)
            return RectBar(
                origin=origin, length=seg.length, width=width,
                thickness=self.thickness, axis=axis,
            )

        signal = bar(self.signal_width, 0.0)
        ground_left = bar(self.ground_width, -lateral_offset)
        ground_right = bar(self.ground_width, +lateral_offset)
        return signal, ground_left, ground_right

    def segment_block(self, name: str) -> TraceBlock:
        """The isolated three-wire block of one segment (laid along x at
        the origin) -- the geometry a per-segment table characterizes."""
        seg = self.segment(name)
        return TraceBlock.coplanar_waveguide(
            signal_width=self.signal_width,
            ground_width=self.ground_width,
            spacing=self.spacing,
            length=seg.length,
            thickness=self.thickness,
        )

    # ------------------------------------------------------------------
    # full-structure PEEC network (the "RI3 run" of Table I)
    # ------------------------------------------------------------------
    def build_network(
        self,
        n_width: int = 1,
        n_thickness: int = 1,
        grading: float = 1.0,
        short_resistance: float = 1e-6,
    ) -> FilamentNetwork:
        """Full PEEC network of the whole tree with leaf shorts.

        Drive it between ``sig_ROOT`` and ``gnd_ROOT`` (which is also the
        network's ground node) to obtain the Table-I loop impedance.
        """
        network = FilamentNetwork(ground=f"gnd_{ROOT}")
        placements = self.layout()
        for seg in self.segments:
            start, axis, direction = placements[seg.name]
            signal, gnd_l, gnd_r = self._segment_bars(seg, start, axis, direction)
            upstream = seg.parent if seg.parent is not None else ROOT
            network.add_conductor(
                f"{seg.name}_sig", signal,
                f"sig_{upstream}", f"sig_{seg.name}",
                resistivity=self.resistivity,
                n_width=n_width, n_thickness=n_thickness, grading=grading,
            )
            for suffix, bar in (("gl", gnd_l), ("gr", gnd_r)):
                network.add_conductor(
                    f"{seg.name}_{suffix}", bar,
                    f"gnd_{upstream}", f"gnd_{seg.name}",
                    resistivity=self.resistivity,
                    n_width=n_width, n_thickness=n_thickness, grading=grading,
                )
        for leaf in self.leaves():
            network.add_resistor(
                f"{leaf.name}_short",
                f"sig_{leaf.name}",
                f"gnd_{leaf.name}",
                resistance=short_resistance,
            )
        return network


def figure6a_tree(width: float = 1.2e-6, thickness: float = 0.7e-6,
                  spacing: float = 1.2e-6) -> InterconnectTree:
    """The paper's Fig. 6(a) tree: ab -> (bc -> ce) || (bd -> df).

    Segment lengths follow the figure's annotations (100-250 um); all
    three wires share the 1.2 um width.
    """
    return InterconnectTree(
        segments=[
            SegmentSpec("ab", 100e-6, None),
            SegmentSpec("bc", 150e-6, "ab"),
            SegmentSpec("ce", 250e-6, "bc"),
            SegmentSpec("bd", 100e-6, "ab"),
            SegmentSpec("df", 250e-6, "bd"),
        ],
        signal_width=width,
        ground_width=width,
        spacing=spacing,
        thickness=thickness,
    )


def figure6b_tree(width: float = 1.2e-6, thickness: float = 0.7e-6,
                  spacing: float = 1.2e-6) -> InterconnectTree:
    """The paper's Fig. 6(b) tree: longer runs (300-600 um) with a stub."""
    return InterconnectTree(
        segments=[
            SegmentSpec("ab", 600e-6, None),
            SegmentSpec("bc", 300e-6, "ab"),
            SegmentSpec("bd", 20e-6, "ab"),
            SegmentSpec("de", 600e-6, "bd"),
        ],
        signal_width=width,
        ground_width=width,
        spacing=spacing,
        thickness=thickness,
    )
