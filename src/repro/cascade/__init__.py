"""Linearly cascaded inductance modeling (paper Sec. IV).

A signal wire guarded by two same-or-wider ground wires is inductively
self-contained, so the loop inductance of a routed tree equals the
series/parallel combination of independently extracted segment loop
inductances.  :mod:`repro.cascade.tree` describes guarded interconnect
trees (the paper's Fig. 6 structures) and builds their full PEEC
networks; :mod:`repro.cascade.combine` performs the per-segment
extraction, the series/parallel combination and the comparison against
the full-structure solve (Table I).
"""

from repro.cascade.combine import (
    CascadeComparison,
    cascading_comparison,
    combined_loop_rl,
    per_segment_loop_rl,
)
from repro.cascade.guard_rule import GuardRuleStudy, guard_width_study
from repro.cascade.tree import InterconnectTree, SegmentSpec

__all__ = [
    "GuardRuleStudy",
    "guard_width_study",
    "InterconnectTree",
    "SegmentSpec",
    "CascadeComparison",
    "cascading_comparison",
    "combined_loop_rl",
    "per_segment_loop_rl",
]
