"""Series/parallel combination of segment loop impedances (Sec. IV).

The paper's experiment: extract the loop inductance of each guarded
segment *independently* (as if it were alone in the world), combine the
values serially along paths and in parallel across branches, and compare
with a full-structure extraction of the whole tree.  Agreement (Table I
reports 3.57 % and 1.55 %) establishes that the two guard wires confine
the segment's inductive coupling, which is what licenses the clocktree
extractor to work segment-by-segment from tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import GeometryError, SolverError
from repro.cascade.tree import ROOT, InterconnectTree
from repro.peec.loop import LoopProblem


def per_segment_loop_rl(
    tree: InterconnectTree,
    frequency: float,
    n_width: int = 1,
    n_thickness: int = 1,
    grading: float = 1.0,
) -> Dict[str, Tuple[float, float]]:
    """Loop (R, L) of every segment extracted in isolation.

    Each segment is solved as a stand-alone three-wire loop problem at
    the origin -- position independence is exactly what the Foundations
    guarantee for guarded structures.
    """
    results: Dict[str, Tuple[float, float]] = {}
    for seg in tree.segments:
        block = tree.segment_block(seg.name)
        problem = LoopProblem(
            block,
            n_width=n_width,
            n_thickness=n_thickness,
            grading=grading,
            resistivity=tree.resistivity,
        )
        results[seg.name] = problem.loop_rl(frequency)
    return results


def _combine_subtree(
    tree: InterconnectTree,
    segment_name: str,
    values: Mapping[str, float],
) -> float:
    """Effective series/parallel value looking into *segment_name*."""
    try:
        own = values[segment_name]
    except KeyError:
        raise GeometryError(f"no per-segment value for {segment_name!r}") from None
    children = tree.children(segment_name)
    if not children:
        return own
    child_values = [_combine_subtree(tree, c.name, values) for c in children]
    if any(v <= 0.0 for v in child_values):
        raise SolverError("series/parallel combination needs positive values")
    parallel = 1.0 / sum(1.0 / v for v in child_values)
    return own + parallel


def combined_loop_rl(
    tree: InterconnectTree,
    per_segment: Mapping[str, Tuple[float, float]],
) -> Tuple[float, float]:
    """Series/parallel combination of per-segment (R, L) over the tree.

    Both resistance and inductance combine with the same series/parallel
    algebra (the paper's ``L_ab + (L_bc + L_ce) || (L_bd + L_df)``).
    """
    r_values = {name: rl[0] for name, rl in per_segment.items()}
    l_values = {name: rl[1] for name, rl in per_segment.items()}
    root = tree.root.name
    return (
        _combine_subtree(tree, root, r_values),
        _combine_subtree(tree, root, l_values),
    )


@dataclass(frozen=True)
class CascadeComparison:
    """Full-structure vs cascaded loop extraction (one Table-I row)."""

    frequency: float
    full_resistance: float
    full_inductance: float
    combined_resistance: float
    combined_inductance: float

    @property
    def inductance_error(self) -> float:
        """Relative error of the cascaded L vs the full extraction."""
        return abs(self.combined_inductance - self.full_inductance) / self.full_inductance

    @property
    def resistance_error(self) -> float:
        """Relative error of the cascaded R vs the full extraction."""
        return abs(self.combined_resistance - self.full_resistance) / self.full_resistance


def cascading_comparison(
    tree: InterconnectTree,
    frequency: float,
    n_width: int = 1,
    n_thickness: int = 1,
    grading: float = 1.0,
) -> CascadeComparison:
    """Run both sides of the Table-I experiment for one tree."""
    network = tree.build_network(
        n_width=n_width, n_thickness=n_thickness, grading=grading
    )
    full_r, full_l = network.loop_rl(f"sig_{ROOT}", f"gnd_{ROOT}", frequency)
    per_segment = per_segment_loop_rl(
        tree, frequency, n_width=n_width, n_thickness=n_thickness, grading=grading
    )
    comb_r, comb_l = combined_loop_rl(tree, per_segment)
    return CascadeComparison(
        frequency=frequency,
        full_resistance=full_r,
        full_inductance=full_l,
        combined_resistance=comb_r,
        combined_inductance=comb_l,
    )
