"""Package version resolution for the CLI and the serving daemon.

``repro --version`` and the daemon's ``/healthz`` endpoint both report
the package version.  The repo is routinely run straight off a source
checkout (``PYTHONPATH=src``) where no distribution metadata exists, so
resolution tries, in order:

1. the ``pyproject.toml`` sitting above the package (source checkout --
   the authoritative number while developing),
2. installed distribution metadata (``pip install`` -ed environments),
3. a sentinel ``0.0.0+unknown`` so callers never crash on packaging
   questions.

The result is cached per process.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional

__all__ = ["get_version"]

_FALLBACK = "0.0.0+unknown"
_cached: Optional[str] = None


def _from_pyproject() -> Optional[str]:
    """Version from the source checkout's pyproject.toml, if any."""
    # src/repro/version.py -> src/repro -> src -> repo root
    root = Path(__file__).resolve().parents[2]
    pyproject = root / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return None
    # [project] version = "..." -- a regex keeps 3.9 (no tomllib) happy.
    match = re.search(
        r'^\s*version\s*=\s*["\']([^"\']+)["\']', text, re.MULTILINE
    )
    return match.group(1) if match else None


def _from_metadata() -> Optional[str]:
    """Version from installed distribution metadata, if any."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - 3.9+ always has it
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def get_version() -> str:
    """The repro package version string (cached after the first call)."""
    global _cached
    if _cached is None:
        _cached = _from_pyproject() or _from_metadata() or _FALLBACK
    return _cached
