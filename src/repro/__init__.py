"""repro: Clocktree RLC extraction with efficient inductance modeling.

A full reimplementation of Chang, Lin, He, Nakagawa, Xie (DATE 2000):
table-based on-chip inductance extraction built on an exact PEEC field
solver, a 2-D capacitance field solver, linearly cascaded segment
modeling, and a buffered H-tree clocktree RLC extraction flow with an
MNA circuit simulator for delay/skew studies.

Quick start::

    from repro import CoplanarWaveguideConfig, TableBasedExtractor, um, GHz

    cpw = CoplanarWaveguideConfig(
        signal_width=um(10), ground_width=um(5), spacing=um(1),
        thickness=um(2), height_below=um(2),
    )
    extractor = TableBasedExtractor.characterize(
        cpw, frequency=GHz(3.2),
        widths=[um(4), um(8), um(12)],
        lengths=[um(500), um(2000), um(6000)],
    )
    l_loop = extractor.loop_inductance(um(10), um(3000))
"""

from repro.constants import GHz, fF, mm, nH, pF, ps, um
from repro.circuit import (
    Circuit,
    PulseSource,
    PWLSource,
    Waveform,
    ac_analysis,
    operating_point,
    transient_analysis,
)
from repro.bus import BusRLC, BusRLCExtractor, crosstalk_analysis
from repro.cascade import InterconnectTree, SegmentSpec, cascading_comparison
from repro.clocktree import (
    ClockBuffer,
    ClocktreeRLCExtractor,
    CoplanarWaveguideConfig,
    HTree,
    MicrostripConfig,
    StriplineConfig,
    compare_rc_vs_rlc,
    simulate_clocktree,
)
from repro.core import (
    TableBasedExtractor,
    foundation1_check,
    foundation2_check,
    loop_inductance_matrix,
    significant_frequency,
)
from repro.geometry import Layer, Stackup, Trace, TraceBlock
from repro.peec import (
    FilamentNetwork,
    GroundPlane,
    LoopProblem,
    PartialInductanceSolver,
    bar_mutual_inductance,
    bar_self_inductance,
    plane_under_block,
)
from repro.library import (
    BuildRunner,
    TableLibrary,
    build_library,
    standard_clocktree_jobs,
)
from repro.rc import CapacitanceModel, CrossSection2D, FieldSolver2D
from repro.tables import ExtractionTable

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # units
    "um", "mm", "nH", "pF", "fF", "ps", "GHz",
    # geometry
    "Trace", "TraceBlock", "Layer", "Stackup",
    # peec
    "LoopProblem", "FilamentNetwork", "GroundPlane", "plane_under_block",
    "PartialInductanceSolver", "bar_self_inductance", "bar_mutual_inductance",
    # rc
    "CapacitanceModel", "CrossSection2D", "FieldSolver2D",
    # tables / core
    "ExtractionTable", "TableBasedExtractor", "significant_frequency",
    "foundation1_check", "foundation2_check", "loop_inductance_matrix",
    # characterization library
    "TableLibrary", "BuildRunner", "build_library",
    "standard_clocktree_jobs",
    # bus
    "BusRLC", "BusRLCExtractor", "crosstalk_analysis",
    # cascade
    "InterconnectTree", "SegmentSpec", "cascading_comparison",
    # clocktree
    "CoplanarWaveguideConfig", "MicrostripConfig", "StriplineConfig",
    "ClockBuffer", "HTree",
    "ClocktreeRLCExtractor", "simulate_clocktree", "compare_rc_vs_rlc",
    # circuit
    "Circuit", "PulseSource", "PWLSource", "Waveform",
    "transient_analysis", "ac_analysis", "operating_point",
]
