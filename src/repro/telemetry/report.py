"""Structured run reports: one JSON artifact per instrumented run.

A :class:`RunReport` freezes everything a run did into a reproducible
artifact: the command, wall duration, the parent process's metric
deltas, the aggregated worker-process metrics of a parallel build, the
span tree, and free-form metadata (build stats, library root, ...).
Every CLI entry point can emit one via ``--telemetry out.json``, and
``repro report out.json`` renders it back as a span tree + top-metrics
table -- performance claims become diffable files instead of scrollback.

:func:`telemetry_session` is the capture harness: it enables span
recording, wraps the body in a root span, and on exit (even a raising
one) assembles the report from the registry delta and the drained trace
tree.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import TelemetryError
from repro.ioutil import atomic_write_text
from repro.telemetry.registry import (
    MetricsSnapshot,
    get_registry,
)
from repro.telemetry.spans import get_tracer, spans_to_jsonl

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "RunReport",
    "telemetry_session",
    "render_report",
    "load_report",
]

#: Bump when the report JSON layout changes incompatibly.
#: v2 (PR 4) added the ``coverage`` and ``table_health`` sections; v3
#: (PR 5) added the ``simulation`` section (transient diagnostics +
#: netlist-health summaries); v4 (PR 8) added the ``slo`` section
#: (rolling burn-rate summary from :class:`repro.telemetry.slo.SLOMonitor`)
#: and the ``profile`` section (sampling-profiler header +
#: collapsed-stack hot list); v5 (PR 10) added the ``campaign`` section
#: (sweep-campaign summary: per-status point counts, throughput, merged
#: solver/memo economics from :mod:`repro.scenarios.sweep`).  Older
#: reports still load (they migrate to empty sections).
REPORT_SCHEMA_VERSION = 5

#: Older schema versions :meth:`RunReport.from_dict` accepts and migrates.
_COMPATIBLE_SCHEMA_VERSIONS = (1, 2, 3, 4, REPORT_SCHEMA_VERSION)


@dataclass
class RunReport:
    """A structured telemetry report for one run."""

    command: str
    started_at: float = 0.0
    duration: float = 0.0
    #: Parent-process metric deltas over the session.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Aggregated pool-worker metric deltas (parallel builds), if any.
    worker_metrics: Optional[MetricsSnapshot] = None
    #: Serialized span trees (see :meth:`repro.telemetry.Span.to_dict`).
    spans: List[dict] = field(default_factory=list)
    #: Free-form extras (build stats, argv, library root, ...).
    meta: Dict[str, object] = field(default_factory=dict)
    #: Per-table lookup-domain coverage maps touched during the session
    #: (see :meth:`repro.quality.coverage.TableCoverage.to_dict`); empty
    #: for sessions that never hit a named table and for v1 reports.
    coverage: List[dict] = field(default_factory=list)
    #: Table-health reports attached by audited builds (see
    #: :meth:`repro.quality.audit.TableHealthReport.to_dict`).
    table_health: List[dict] = field(default_factory=list)
    #: Simulation-observability section (v3): per-netlist transient
    #: diagnostics and netlist-health summaries keyed by a caller-chosen
    #: label (``"rc"`` / ``"rlc"`` for the skew and fig1 experiments).
    #: Empty for non-simulating runs and for migrated v1/v2 reports.
    simulation: Dict[str, dict] = field(default_factory=dict)
    #: SLO section (v4): the burn-rate summary a serving session ended
    #: with (see :meth:`repro.telemetry.slo.SLOMonitor.summary`); empty
    #: for non-serving runs and migrated pre-v4 reports.
    slo: Dict[str, object] = field(default_factory=dict)
    #: Profile section (v4): sampling-profiler header + hottest stacks
    #: (see :meth:`repro.telemetry.profiler.SamplingProfiler.summary`);
    #: empty unless the run passed ``--profile``.
    profile: Dict[str, object] = field(default_factory=dict)
    #: Campaign section (v5): the sweep-campaign summary
    #: (:meth:`repro.scenarios.campaign.CampaignReport.summary`) when
    #: the session drove a parameter sweep; empty otherwise and for
    #: migrated pre-v5 reports.
    campaign: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def totals(self) -> MetricsSnapshot:
        """Parent + worker metrics combined: the *true* run totals."""
        if self.worker_metrics is None:
            return self.metrics
        return self.metrics.merged(self.worker_metrics)

    def spans_jsonl(self) -> str:
        """The span tree flattened to JSONL (one span per line)."""
        return spans_to_jsonl(self.spans)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "command": self.command,
            "started_at": self.started_at,
            "duration": self.duration,
            "metrics": self.metrics.to_dict(),
            "spans": self.spans,
            "meta": self.meta,
            "coverage": self.coverage,
            "table_health": self.table_health,
            "simulation": self.simulation,
            "slo": self.slo,
            "profile": self.profile,
            "campaign": self.campaign,
        }
        if self.worker_metrics is not None:
            data["worker_metrics"] = self.worker_metrics.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a report; v1/v2 records migrate (empty new sections)."""
        version = data.get("schema_version")
        if version not in _COMPATIBLE_SCHEMA_VERSIONS:
            raise TelemetryError(
                f"report schema {version!r} != supported {REPORT_SCHEMA_VERSION}"
            )
        worker = data.get("worker_metrics")
        return cls(
            command=str(data.get("command", "")),
            started_at=float(data.get("started_at", 0.0)),
            duration=float(data.get("duration", 0.0)),
            metrics=MetricsSnapshot.from_dict(data.get("metrics", {})),
            worker_metrics=(
                MetricsSnapshot.from_dict(worker) if worker is not None else None
            ),
            spans=list(data.get("spans", [])),
            meta=dict(data.get("meta", {})),
            # v1 reports predate the quality sections, v1/v2 the
            # simulation section, pre-v4 the slo/profile sections,
            # pre-v5 the campaign section: all migrate to empty.
            coverage=list(data.get("coverage", [])),
            table_health=list(data.get("table_health", [])),
            simulation=dict(data.get("simulation", {})),
            slo=dict(data.get("slo", {})),
            profile=dict(data.get("profile", {})),
            campaign=dict(data.get("campaign", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the report JSON to *path*."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_dict(), indent=1))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"unreadable telemetry report {path}: {exc}")
        if not isinstance(data, dict):
            raise TelemetryError(f"telemetry report {path} is not a JSON object")
        return cls.from_dict(data)


def load_report(path: Union[str, Path]) -> RunReport:
    """Load a report previously written by :meth:`RunReport.save`."""
    return RunReport.load(path)


class TelemetrySession:
    """Mutable holder populated by :func:`telemetry_session`."""

    def __init__(self, command: str):
        self.command = command
        self.meta: Dict[str, object] = {}
        self.worker_metrics: Optional[MetricsSnapshot] = None
        self.worker_spans: List[dict] = []
        self.table_health: List[dict] = []
        self.simulation: Dict[str, dict] = {}
        self.slo: Dict[str, object] = {}
        self.profile: Dict[str, object] = {}
        self.campaign: Dict[str, object] = {}
        #: The finished report; available after the ``with`` block exits.
        self.report: Optional[RunReport] = None

    def add_meta(self, **items: object) -> None:
        """Attach free-form metadata to the final report."""
        self.meta.update(items)

    def add_worker_metrics(self, snapshot: MetricsSnapshot) -> None:
        """Merge a worker-process metrics snapshot into the run totals."""
        if self.worker_metrics is None:
            self.worker_metrics = snapshot
        else:
            self.worker_metrics = self.worker_metrics.merged(snapshot)

    def add_worker_spans(self, spans: List[dict]) -> None:
        """Append span trees shipped back from pool workers.

        They join the parent's own span trees as additional roots of the
        report, so ``repro report`` renders worker chunks alongside the
        parent timeline.
        """
        self.worker_spans.extend(spans)

    def add_table_health(self, reports) -> None:
        """Attach table-health reports (dicts or objects) to the report.

        Audited builds (``repro library build --audit``) call this so
        ``repro report`` can render the health verdicts next to the
        build's span tree and counters.
        """
        for report in reports:
            if hasattr(report, "to_dict"):
                report = report.to_dict()
            self.table_health.append(dict(report))

    def add_simulation(self, sections: Dict[str, dict]) -> None:
        """Attach simulation-observability sections (schema v3).

        *sections* maps a netlist label (``"rc"``, ``"rlc"``, ...) to a
        dict with optional ``diagnostics``
        (:meth:`~repro.circuit.diagnostics.TransientDiagnostics.to_dict`)
        and ``netlist_health``
        (:meth:`~repro.circuit.lint.NetlistHealthReport.to_dict`)
        entries -- exactly what
        :meth:`repro.clocktree.skew.SkewComparison.simulation_reports`
        returns.  Repeated calls merge by label.
        """
        for label, section in sections.items():
            self.simulation[str(label)] = dict(section)

    def add_slo(self, summary: Dict[str, object]) -> None:
        """Attach an SLO summary (schema v4).

        *summary* is :meth:`repro.telemetry.slo.SLOMonitor.summary`
        output; the serve daemon calls this at drain so the report
        records the burn-rate state the session ended with.
        """
        self.slo = dict(summary)

    def add_profile(self, summary: Dict[str, object]) -> None:
        """Attach a sampling-profiler summary (schema v4).

        *summary* is
        :meth:`repro.telemetry.profiler.SamplingProfiler.summary`
        output (sample counts + hottest stacks); the full collapsed
        stacks live in the ``--profile`` output file, not the report.
        """
        self.profile = dict(summary)

    def add_campaign(self, summary: Dict[str, object]) -> None:
        """Attach a sweep-campaign summary (schema v5).

        *summary* is
        :meth:`repro.scenarios.campaign.CampaignReport.summary` output
        (point counts by status, throughput, merged solver/memo
        economics); the full per-point table lives in the ledger's
        campaign record, not the run report.
        """
        self.campaign = dict(summary)


@contextmanager
def telemetry_session(command: str) -> Iterator[TelemetrySession]:
    """Capture a :class:`RunReport` for the enclosed block.

    Enables span recording for the duration, opens a root span named
    after *command*, and on exit -- normal or raising -- assembles
    ``session.report`` from the registry delta and the drained span
    trees.  Metric deltas are measured against the session start, so a
    warm process can run several sessions without cross-talk.
    """
    # Lazy import: the quality layer instruments repro.tables, which
    # telemetry must not import at module scope.
    from repro.quality.coverage import get_coverage_tracker

    registry = get_registry()
    tracer = get_tracer()
    session = TelemetrySession(command)
    start_snapshot = registry.snapshot()
    coverage_start = get_coverage_tracker().lookup_counts()
    previous_enabled = tracer.enabled
    tracer.enabled = True
    started_at = time.time()
    t0 = time.perf_counter()
    try:
        with tracer.span(command):
            yield session
    finally:
        duration = time.perf_counter() - t0
        tracer.enabled = previous_enabled
        # Only tables whose lookup count moved during the session make
        # the report: a warm process can run several sessions without
        # re-reporting stale coverage.
        coverage = [
            entry for entry in get_coverage_tracker().report()
            if entry["lookups"] != coverage_start.get(entry["table"], 0)
        ]
        session.report = RunReport(
            command=command,
            started_at=started_at,
            duration=duration,
            metrics=registry.snapshot().minus(start_snapshot),
            worker_metrics=session.worker_metrics,
            spans=([sp.to_dict() for sp in tracer.drain()]
                   + list(session.worker_spans)),
            meta=dict(session.meta),
            coverage=coverage,
            table_health=list(session.table_health),
            simulation=dict(session.simulation),
            slo=dict(session.slo),
            profile=dict(session.profile),
            campaign=dict(session.campaign),
        )


# ----------------------------------------------------------------------
# rendering (the `repro report` subcommand)
# ----------------------------------------------------------------------
def _format_span_line(node: dict, depth: int, width: int) -> str:
    label = "  " * depth + str(node.get("name", "?"))
    duration = float(node.get("duration", 0.0))
    status = node.get("status", "ok")
    tags = node.get("tags") or {}
    metrics = node.get("metrics") or {}
    extras = []
    for key in sorted(tags):
        extras.append(f"{key}={tags[key]}")
    for key in sorted(metrics):
        extras.append(f"{key}={metrics[key]}")
    if status != "ok":
        extras.append(f"status={status}")
        if node.get("error"):
            extras.append(str(node["error"]))
    suffix = ("  " + " ".join(extras)) if extras else ""
    return f"  {label:<{width}} {duration * 1e3:10.2f} ms{suffix}"


def _walk_spans(nodes: List[dict], depth: int = 0):
    for node in nodes:
        yield node, depth
        yield from _walk_spans(node.get("children", []), depth + 1)


def render_report(report: RunReport, max_spans: int = 200) -> str:
    """Human-readable rendering: span tree + top metrics table."""
    lines: List[str] = []
    lines.append(f"telemetry report: {report.command}")
    when = time.strftime("%Y-%m-%d %H:%M:%S",
                         time.localtime(report.started_at))
    lines.append(f"  started {when}   wall {report.duration:.2f} s")
    if report.meta:
        for key in sorted(report.meta):
            lines.append(f"  {key}: {report.meta[key]}")

    flattened = list(_walk_spans(report.spans))
    if flattened:
        lines.append("")
        lines.append(f"span tree ({len(flattened)} span(s))")
        width = max(
            len("  " * depth + str(node.get("name", "?")))
            for node, depth in flattened[:max_spans]
        )
        for node, depth in flattened[:max_spans]:
            lines.append(_format_span_line(node, depth, width))
        if len(flattened) > max_spans:
            lines.append(f"  ... {len(flattened) - max_spans} more span(s)")

    totals = report.totals()
    if totals.counters:
        lines.append("")
        lines.append("counters (parent + workers)")
        width = max(len(name) for name in totals.counters)
        for name in sorted(totals.counters):
            parent = report.metrics.counter(name)
            workers = totals.counter(name) - parent
            detail = (f"  (parent {parent}, workers {workers})"
                      if report.worker_metrics is not None else "")
            lines.append(f"  {name:<{width}} {totals.counters[name]:>12}{detail}")
        rate = totals.memo_hit_rate
        if totals.counter("lp_memo_hit") or totals.counter("lp_memo_miss"):
            lines.append(f"  {'memo_hit_rate':<{width}} {rate:>11.1%}")
        if totals.counter("lp_pair_total"):
            lines.append(
                f"  {'dedup_factor':<{width}} {totals.dedup_factor:>11.2f}x"
            )

    if totals.histograms:
        lines.append("")
        lines.append("histograms")
        width = max(len(name) for name in totals.histograms)
        for name in sorted(totals.histograms):
            hist = totals.histograms[name]
            lines.append(
                f"  {name:<{width}}  n={hist.count:<8} "
                f"mean={hist.mean:.3e} s  p50<={hist.quantile(0.5):.0e} "
                f"p95<={hist.quantile(0.95):.0e}"
            )

    # Quality sections (PR 4): render only when the report carries them,
    # so pre-v2 reports fall through untouched.  Lazy imports keep the
    # telemetry layer free of a hard quality dependency.
    if report.coverage:
        from repro.quality.coverage import render_coverage

        lines.append("")
        lines.append(render_coverage(report.coverage).rstrip("\n"))
    if report.table_health:
        from repro.quality.audit import render_health

        lines.append("")
        lines.append(render_health(report.table_health).rstrip("\n"))
    if report.simulation:
        lines.append("")
        lines.append(_render_simulation(report.simulation).rstrip("\n"))
    if report.slo:
        lines.append("")
        lines.append(_render_slo(report.slo).rstrip("\n"))
    if report.profile:
        lines.append("")
        lines.append(_render_profile(report.profile).rstrip("\n"))
    if report.campaign:
        lines.append("")
        lines.append(_render_campaign(report.campaign).rstrip("\n"))
    return "\n".join(lines) + "\n"


def _render_campaign(campaign: Dict[str, object]) -> str:
    """Render the v5 ``campaign`` section (sweep-campaign summary)."""
    lines = [
        f"campaign {campaign.get('campaign_id') or '?'}: "
        f"{campaign.get('scenario', '?')}  "
        f"{campaign.get('points', 0)} point(s): "
        f"{campaign.get('completed', 0)} completed, "
        f"{campaign.get('failed', 0)} failed, "
        f"{campaign.get('skipped', 0)} skipped"
    ]
    lines.append(
        f"  {float(campaign.get('points_per_second', 0.0)):.2f} pt/s  "
        f"solver calls {campaign.get('solver_call_count', 0)}  "
        f"memo hit {float(campaign.get('memo_hit_rate', 0.0)):.0%}"
    )
    return "\n".join(lines) + "\n"


def _render_slo(slo: Dict[str, object]) -> str:
    """Render the v4 ``slo`` section (burn-rate state per endpoint)."""
    lines = [f"slo status: {slo.get('status', '?')}"]
    endpoints = slo.get("endpoints") or {}
    for endpoint in sorted(endpoints):
        slis = endpoints[endpoint].get("slis", {})
        parts = []
        for sli in sorted(slis):
            info = slis[sli]
            parts.append(
                f"{sli}={info.get('status', '?')}"
                f" (burn {info.get('burn_rate', 0.0)})"
            )
        lifetime = endpoints[endpoint].get("lifetime", {})
        total = lifetime.get("total", 0)
        lines.append(f"  {endpoint}: {'  '.join(parts)}  [{total} req]")
    return "\n".join(lines) + "\n"


def _render_profile(profile: Dict[str, object]) -> str:
    """Render the v4 ``profile`` section (hottest sampled stacks)."""
    lines = [
        "profile: "
        f"{profile.get('samples', 0)} samples "
        f"@ {profile.get('interval_seconds', 0.0)} s interval, "
        f"{profile.get('distinct_stacks', 0)} distinct stack(s)"
    ]
    for entry in profile.get("hottest", [])[:10]:
        lines.append(f"  {entry.get('count', 0):>8}  {entry.get('leaf', '?')}")
    return "\n".join(lines) + "\n"


def _render_simulation(simulation: Dict[str, dict]) -> str:
    """Render the v3 ``simulation`` section (diagnostics + health)."""
    lines = [f"simulation ({len(simulation)} netlist(s))"]
    for label in sorted(simulation):
        section = simulation[label]
        diag = section.get("diagnostics")
        if diag:
            adequacy = "ok" if diag.get("dt_adequate", True) else "UNDERSAMPLED"
            lines.append(
                f"  {label}: {diag.get('method', '?')} "
                f"steps={diag.get('steps', '?')} dt={diag.get('dt', 0.0):.3e} s "
                f"({adequacy})"
            )
            lte = diag.get("lte_p95")
            residual = diag.get("energy_residual")
            detail = []
            if lte is not None:
                detail.append(f"LTE p95={lte:.3e}")
            if residual is not None:
                detail.append(f"energy residual={residual:.3e}")
            if diag.get("dt_snapped"):
                detail.append(
                    f"dt snapped from {diag.get('requested_dt', 0.0):.3e} s"
                )
            if diag.get("dc_start_fallback"):
                detail.append("dc-start fallback")
            if detail:
                lines.append("      " + "  ".join(detail))
        health = section.get("netlist_health")
        if health:
            verdict = "clean" if health.get("clean") else (
                f"{health.get('num_errors', '?')} error(s)"
            )
            warn = health.get("num_warnings", 0)
            if warn:
                verdict += f", {warn} warning(s)"
            name = health.get("name") or label
            lines.append(f"      netlist health [{name}]: {verdict}")
    return "\n".join(lines) + "\n"
