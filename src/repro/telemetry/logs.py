"""Structured JSON logging with request/chunk correlation.

The third observability pillar (after the PR-3 metrics and spans): every
log line is one JSON object, and a *correlation id* carried on a
:mod:`contextvars` context variable is stamped onto every record emitted
inside its scope -- ``request_id`` for serve requests, ``chunk_id`` for
build-pool chunks.  The same ids are auto-tagged onto tracer spans
(:meth:`repro.telemetry.spans.Tracer.span` merges
:func:`current_correlation`), so one grep through the access log leads
straight to the span tree and the Perfetto timeline of the slow request.

Pieces:

* :func:`correlation_scope` / :func:`bind_correlation` -- set the
  correlation ids for the enclosed work.  ContextVars are per-thread by
  construction (a new thread starts with an empty context), which is
  exactly the isolation a thread-per-request server needs.
* :class:`StructuredLogger` (via :func:`get_logger`) -- ``.info("event",
  key=value, ...)`` emitters building one flat JSON record per call.
* :class:`LogRing` -- a bounded in-memory ring of recent records; always
  on, so ``/statusz`` can show the last errors of a daemon that logs
  nowhere else.  :func:`recent_logs` reads it.
* :func:`configure_logging` -- optional stderr/stream and file sinks
  (one JSON line per record) plus the minimum level.
* :func:`install_stdlib_bridge` -- a :class:`logging.Handler` routing
  existing ``logging.getLogger(...)`` calls (http.server, libraries)
  through the same pipeline, correlation ids included.

Every emitted record ticks the observational ``log_record`` counter
(plus ``log_record.<level>``), so log volume itself is visible on
``/metrics`` without ever counting as solver work.
"""

from __future__ import annotations

import contextvars
import json
import logging
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.telemetry.registry import LOG_RECORD, get_registry

__all__ = [
    "LEVELS",
    "new_request_id",
    "current_correlation",
    "correlation_ids",
    "bind_correlation",
    "correlation_scope",
    "sweep_scope",
    "StructuredLogger",
    "get_logger",
    "LogRing",
    "get_log_ring",
    "recent_logs",
    "configure_logging",
    "log_to_stream",
    "install_stdlib_bridge",
    "uninstall_stdlib_bridge",
]

#: Level name -> numeric severity (stdlib-compatible values).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: The ContextVar carrying the correlation ids of the current scope as
#: an immutable tuple of ``(key, value)`` pairs.  Tuples (not dicts)
#: keep reads allocation-free on the span hot path.
_CORRELATION: "contextvars.ContextVar[Tuple[Tuple[str, str], ...]]" = (
    contextvars.ContextVar("repro_correlation", default=())
)


def new_request_id() -> str:
    """A fresh, log-greppable request id (``req-`` + 12 hex chars)."""
    return "req-" + uuid.uuid4().hex[:12]


def current_correlation() -> Tuple[Tuple[str, str], ...]:
    """The active correlation pairs (empty tuple outside any scope)."""
    return _CORRELATION.get()


def correlation_ids() -> Dict[str, str]:
    """The active correlation ids as a dict (copy; safe to mutate)."""
    return dict(_CORRELATION.get())


def bind_correlation(**ids: str) -> "contextvars.Token":
    """Merge *ids* into the current correlation; returns the reset token.

    Prefer :func:`correlation_scope` -- this low-level form exists for
    callers that cannot use a ``with`` block (e.g. request handlers
    spreading work across callbacks).
    """
    merged = dict(_CORRELATION.get())
    merged.update({k: str(v) for k, v in ids.items()})
    return _CORRELATION.set(tuple(sorted(merged.items())))


@contextmanager
def correlation_scope(**ids: str) -> Iterator[Dict[str, str]]:
    """Stamp *ids* onto every log record and span inside the block::

        with correlation_scope(request_id=rid):
            service.handle(endpoint, payload)   # spans + logs carry rid
    """
    token = bind_correlation(**ids)
    try:
        yield correlation_ids()
    finally:
        _CORRELATION.reset(token)


@contextmanager
def sweep_scope(sweep_id: str, **extra: str) -> Iterator[Dict[str, str]]:
    """Stamp a sweep-campaign correlation id onto logs and spans.

    The campaign-level sibling of the request/chunk ids: every log
    record and tracer span inside the block carries ``sweep_id`` (plus
    any *extra* ids, e.g. ``point=7``), so one grep connects a campaign
    to every per-point scenario run it fanned out -- across processes,
    because pool workers re-enter the scope with the same id.
    """
    with correlation_scope(sweep_id=str(sweep_id), **extra) as ids:
        yield ids


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
class LogRing:
    """Bounded, thread-safe ring of the most recent log records."""

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._lock = threading.Lock()
        self._records: "deque[dict]" = deque(maxlen=max(1, int(capacity)))
        #: Records discarded because the ring was full.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._records.maxlen or 0

    def append(self, record: dict) -> None:
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)

    def records(
        self,
        limit: Optional[int] = None,
        min_level: Optional[str] = None,
    ) -> List[dict]:
        """Most-recent-last records, optionally filtered by severity."""
        with self._lock:
            records = list(self._records)
        if min_level is not None:
            floor = LEVELS.get(min_level, 0)
            records = [
                r for r in records if LEVELS.get(r.get("level", ""), 0) >= floor
            ]
        if limit is not None:
            records = records[-max(0, int(limit)):]
        return records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0


# ----------------------------------------------------------------------
# emitter pipeline (module-global, mutated under one lock)
# ----------------------------------------------------------------------
_EMIT_LOCK = threading.Lock()
_RING = LogRing()
_STREAM: Optional[IO[str]] = None
_FILE: Optional[IO[str]] = None
_MIN_LEVEL = LEVELS["info"]


def get_log_ring() -> LogRing:
    """The process-wide ring buffer of recent records."""
    return _RING


def recent_logs(
    limit: Optional[int] = None, min_level: Optional[str] = None
) -> List[dict]:
    """Recent structured records (most recent last); see :class:`LogRing`."""
    return _RING.records(limit=limit, min_level=min_level)


def configure_logging(
    stream: Optional[IO[str]] = None,
    path: Optional[Union[str, "object"]] = None,
    level: str = "info",
    ring_capacity: Optional[int] = None,
) -> None:
    """(Re)configure the structured-log sinks.

    *stream* receives one JSON line per record (``sys.stderr`` for the
    daemon; ``None`` keeps records ring-only -- the test default).
    *path*, when given, appends the same lines to a file (opened here,
    closed on the next reconfigure).  *level* is the minimum severity
    emitted at all; *ring_capacity* resizes the in-memory ring.
    """
    global _STREAM, _FILE, _MIN_LEVEL, _RING
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} "
                         f"(one of {sorted(LEVELS)})")
    with _EMIT_LOCK:
        _MIN_LEVEL = LEVELS[level]
        _STREAM = stream
        if _FILE is not None:
            try:
                _FILE.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
            _FILE = None
        if path is not None:
            _FILE = open(path, "a", encoding="utf-8")
        if ring_capacity is not None:
            _RING = LogRing(ring_capacity)


@contextmanager
def log_to_stream(stream: IO[str], level: str = "debug") -> Iterator[None]:
    """Temporarily route records to *stream* (test harness helper)."""
    global _STREAM, _MIN_LEVEL
    with _EMIT_LOCK:
        previous_stream, previous_level = _STREAM, _MIN_LEVEL
    configure_logging(stream=stream, level=level)
    try:
        yield
    finally:
        with _EMIT_LOCK:
            _STREAM = previous_stream
            _MIN_LEVEL = previous_level


def _emit(record: dict) -> None:
    """Stamp, ring-buffer, serialize and count one record."""
    for key, value in _CORRELATION.get():
        record.setdefault(key, value)
    _RING.append(record)
    line: Optional[str] = None
    with _EMIT_LOCK:
        if _STREAM is not None or _FILE is not None:
            line = json.dumps(record, sort_keys=True, default=str)
            if _STREAM is not None:
                try:
                    _STREAM.write(line + "\n")
                    _STREAM.flush()
                except (OSError, ValueError):  # closed/broken stream
                    pass
            if _FILE is not None:
                try:
                    _FILE.write(line + "\n")
                    _FILE.flush()
                except (OSError, ValueError):
                    pass
    registry = get_registry()
    registry.inc(LOG_RECORD)
    registry.inc(f"{LOG_RECORD}.{record.get('level', 'info')}")


class StructuredLogger:
    """Named emitter of structured records (one JSON object per call)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, event: str, **fields: object) -> None:
        """Emit one record: ``{ts, level, logger, event, **fields}``."""
        if LEVELS.get(level, 0) < _MIN_LEVEL:
            return
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        _emit(record)

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


_LOGGERS: Dict[str, StructuredLogger] = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """The (cached) :class:`StructuredLogger` named *name*."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = StructuredLogger(name)
    return logger


# ----------------------------------------------------------------------
# stdlib-logging bridge
# ----------------------------------------------------------------------
class StdlibBridgeHandler(logging.Handler):
    """Routes stdlib ``logging`` records through the structured pipeline.

    Existing ``log.info("served %s", path)`` calls keep working and
    come out the other side as JSON records with the caller's logger
    name, rendered message and the active correlation ids.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            level = record.levelname.lower()
            if level not in LEVELS:
                level = "error" if record.levelno >= 40 else "info"
            if LEVELS[level] < _MIN_LEVEL:
                return
            structured: Dict[str, object] = {
                "ts": round(record.created, 6),
                "level": level,
                "logger": record.name,
                "event": record.getMessage(),
            }
            if record.exc_info and record.exc_info[0] is not None:
                structured["exception"] = record.exc_info[0].__name__
            _emit(structured)
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


_BRIDGE: Optional[StdlibBridgeHandler] = None


def install_stdlib_bridge(
    level: int = logging.INFO, logger: str = ""
) -> StdlibBridgeHandler:
    """Attach the bridge to stdlib *logger* (root by default); idempotent."""
    global _BRIDGE
    target = logging.getLogger(logger)
    if _BRIDGE is None:
        _BRIDGE = StdlibBridgeHandler()
    if _BRIDGE not in target.handlers:
        target.addHandler(_BRIDGE)
    _BRIDGE.setLevel(level)
    if target.level == logging.NOTSET or target.level > level:
        target.setLevel(level)
    return _BRIDGE


def uninstall_stdlib_bridge(logger: str = "") -> None:
    """Detach the bridge installed by :func:`install_stdlib_bridge`."""
    global _BRIDGE
    if _BRIDGE is not None:
        logging.getLogger(logger).removeHandler(_BRIDGE)
        _BRIDGE = None
