"""Rolling-window SLO monitor with multi-window burn-rate status.

Tracks two service-level indicators per endpoint, each over sliding
windows of 1 minute / 10 minutes / 1 hour:

* **availability** -- fraction of requests that did not fail
  (HTTP < 500, admission rejections count as failures);
* **latency** -- fraction of requests completing under the configured
  threshold (default 500 ms).

Status follows the multi-window burn-rate recipe: with an objective
``target`` (say 99 %), the *burn rate* of a window is::

    burn = bad_fraction / (1 - target)

i.e. burn 1.0 consumes the error budget exactly at the sustainable
rate.  The monitor reports, per endpoint and SLI:

* ``page`` when both the short (1 m) and mid (10 m) windows burn above
  :attr:`SLOConfig.page_burn` -- fast, real, actionable;
* ``warn`` when both the mid (10 m) and long (1 h) windows burn above
  :attr:`SLOConfig.warn_burn` -- slow sustained burn;
* ``ok`` otherwise.

Observations land in per-second buckets on a ring sized by the longest
window, so memory is O(window seconds) regardless of traffic, and a
window read is one pass over at most 3600 buckets.  The clock is
injectable so tests can drive window expiry deterministically.

The serve layer feeds the monitor from the same measurements that feed
``serve_latency_seconds`` (see ``ExtractionService.handle``), and its
summary surfaces in ``/healthz``, ``/statusz``, ``/metrics`` (as
``slo_*`` gauges) and schema-v4 run reports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.registry import get_registry

__all__ = [
    "SLOConfig",
    "WindowStats",
    "SLOMonitor",
    "STATUS_ORDER",
]

#: Severity ordering for aggregation (worst wins).
STATUS_ORDER: Tuple[str, ...] = ("ok", "warn", "page")


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and window geometry for one :class:`SLOMonitor`."""

    #: Availability objective (fraction of requests that must succeed).
    availability_target: float = 0.99
    #: Latency objective (fraction of requests under the threshold).
    latency_target: float = 0.95
    #: Latency threshold in seconds for the latency SLI.
    latency_threshold: float = 0.5
    #: Sliding windows in seconds, short to long.
    windows: Tuple[int, ...] = (60, 600, 3600)
    #: Burn rate over (short, mid) windows that pages.
    page_burn: float = 14.4
    #: Burn rate over (mid, long) windows that warns.
    warn_burn: float = 6.0
    #: Ignore windows with fewer observations than this (avoids paging
    #: on the very first failed request of a quiet service).
    min_events: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if not 0.0 < self.latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if self.latency_threshold <= 0.0:
            raise ValueError("latency_threshold must be positive")
        if len(self.windows) != 3 or list(self.windows) != sorted(
            set(self.windows)
        ):
            raise ValueError("windows must be 3 strictly increasing spans")


@dataclass
class WindowStats:
    """Aggregate of one SLI over one sliding window."""

    window: int
    total: int = 0
    bad: int = 0

    @property
    def bad_fraction(self) -> float:
        return (self.bad / self.total) if self.total else 0.0

    def burn_rate(self, target: float) -> float:
        """Error-budget burn rate (1.0 = budget consumed exactly on pace)."""
        return self.bad_fraction / (1.0 - target)

    def to_dict(self, target: float) -> dict:
        return {
            "window_seconds": self.window,
            "total": self.total,
            "bad": self.bad,
            "bad_fraction": round(self.bad_fraction, 6),
            "burn_rate": round(self.burn_rate(target), 3),
        }


class _SecondRing:
    """Per-second ``(total, avail_bad, latency_bad)`` buckets.

    A plain list ring indexed by ``epoch_second % size``; a bucket is
    lazily zeroed when the clock first lands on a new second, so stale
    laps of the ring never leak into a window sum.
    """

    __slots__ = ("size", "seconds", "totals", "avail_bad", "latency_bad")

    def __init__(self, size: int):
        self.size = size
        self.seconds = [-1] * size          # epoch second owning the slot
        self.totals = [0] * size
        self.avail_bad = [0] * size
        self.latency_bad = [0] * size

    def add(self, second: int, ok: bool, fast: bool) -> None:
        idx = second % self.size
        if self.seconds[idx] != second:
            self.seconds[idx] = second
            self.totals[idx] = 0
            self.avail_bad[idx] = 0
            self.latency_bad[idx] = 0
        self.totals[idx] += 1
        if not ok:
            self.avail_bad[idx] += 1
        if not fast:
            self.latency_bad[idx] += 1

    def window_sums(
        self, now_second: int, window: int
    ) -> Tuple[int, int, int]:
        """``(total, avail_bad, latency_bad)`` over the last *window* s."""
        total = avail = latency = 0
        span = min(window, self.size)
        for second in range(now_second - span + 1, now_second + 1):
            idx = second % self.size
            if self.seconds[idx] == second:
                total += self.totals[idx]
                avail += self.avail_bad[idx]
                latency += self.latency_bad[idx]
        return total, avail, latency


class SLOMonitor:
    """Per-endpoint rolling SLO tracking; thread-safe.

    ``observe()`` is the single write path (called once per request,
    including admission rejections).  ``status()`` / ``summary()`` are
    the read paths for health endpoints and reports;
    ``export_gauges()`` publishes ``slo_*`` gauges to the registry so
    the burn rates ride the existing Prometheus text endpoint.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._rings: Dict[str, _SecondRing] = {}
        self._totals: Dict[str, Dict[str, int]] = {}
        self.started_at = clock()

    # -- write path ----------------------------------------------------
    def observe(
        self, endpoint: str, latency: float, ok: bool = True
    ) -> None:
        """Record one finished request for *endpoint*.

        *ok* is the availability outcome (False for 5xx and admission
        rejections); the latency SLI compares *latency* against the
        configured threshold.  Rejected requests are by definition not
        latency-compliant from the client's point of view, so ``ok=False``
        also marks the latency SLI bad regardless of how quickly the
        rejection was produced.
        """
        fast = ok and latency < self.config.latency_threshold
        second = int(self._clock())
        with self._lock:
            ring = self._rings.get(endpoint)
            if ring is None:
                ring = self._rings[endpoint] = _SecondRing(
                    self.config.windows[-1]
                )
                self._totals[endpoint] = {"total": 0, "bad": 0, "slow": 0}
            ring.add(second, ok, fast)
            totals = self._totals[endpoint]
            totals["total"] += 1
            if not ok:
                totals["bad"] += 1
            if not fast:
                totals["slow"] += 1

    # -- read paths ----------------------------------------------------
    def windows(self, endpoint: str) -> Dict[str, List[WindowStats]]:
        """Availability and latency :class:`WindowStats` per window."""
        now_second = int(self._clock())
        with self._lock:
            ring = self._rings.get(endpoint)
            if ring is None:
                return {"availability": [], "latency": []}
            sums = [
                (w,) + ring.window_sums(now_second, w)
                for w in self.config.windows
            ]
        return {
            "availability": [
                WindowStats(window=w, total=t, bad=a) for w, t, a, _ in sums
            ],
            "latency": [
                WindowStats(window=w, total=t, bad=s) for w, t, _, s in sums
            ],
        }

    def _sli_status(
        self, stats: List[WindowStats], target: float
    ) -> Tuple[str, float]:
        """(status, worst considered burn) for one SLI's window trio."""
        cfg = self.config
        burns = [s.burn_rate(target) for s in stats]
        counted = [s.total >= cfg.min_events for s in stats]
        short, mid, long_ = burns
        if (counted[0] and counted[1]
                and short >= cfg.page_burn and mid >= cfg.page_burn):
            return "page", max(short, mid)
        if (counted[1] and counted[2]
                and mid >= cfg.warn_burn and long_ >= cfg.warn_burn):
            return "warn", max(mid, long_)
        considered = [b for b, c in zip(burns, counted) if c]
        return "ok", max(considered) if considered else 0.0

    def status(self, endpoint: str) -> Dict[str, dict]:
        """Per-SLI status dict for one endpoint."""
        cfg = self.config
        windows = self.windows(endpoint)
        out: Dict[str, dict] = {}
        for sli, target in (
            ("availability", cfg.availability_target),
            ("latency", cfg.latency_target),
        ):
            stats = windows[sli]
            if not stats:
                out[sli] = {"status": "ok", "burn_rate": 0.0,
                            "target": target, "windows": []}
                continue
            state, burn = self._sli_status(stats, target)
            out[sli] = {
                "status": state,
                "burn_rate": round(burn, 3),
                "target": target,
                "windows": [s.to_dict(target) for s in stats],
            }
        return out

    def endpoints(self) -> List[str]:
        with self._lock:
            return sorted(self._rings)

    def overall_status(self) -> str:
        """Worst status across every endpoint and SLI."""
        worst = "ok"
        for endpoint in self.endpoints():
            for sli in self.status(endpoint).values():
                if STATUS_ORDER.index(sli["status"]) > STATUS_ORDER.index(worst):
                    worst = sli["status"]
        return worst

    def summary(self) -> dict:
        """The JSON summary embedded in /healthz, /statusz and reports."""
        cfg = self.config
        endpoints = {}
        with self._lock:
            lifetime = {k: dict(v) for k, v in self._totals.items()}
        for endpoint in self.endpoints():
            endpoints[endpoint] = {
                "slis": self.status(endpoint),
                "lifetime": lifetime.get(
                    endpoint, {"total": 0, "bad": 0, "slow": 0}
                ),
            }
        return {
            "status": self.overall_status(),
            "config": {
                "availability_target": cfg.availability_target,
                "latency_target": cfg.latency_target,
                "latency_threshold_seconds": cfg.latency_threshold,
                "windows_seconds": list(cfg.windows),
                "page_burn": cfg.page_burn,
                "warn_burn": cfg.warn_burn,
            },
            "endpoints": endpoints,
        }

    def export_gauges(self, registry=None) -> None:
        """Publish ``slo_*`` gauges (burn rate, status code) per endpoint."""
        registry = registry or get_registry()
        status_code = {name: i for i, name in enumerate(STATUS_ORDER)}
        for endpoint in self.endpoints():
            for sli, info in self.status(endpoint).items():
                registry.set_gauge(
                    f"slo_burn_rate.{endpoint}.{sli}", info["burn_rate"]
                )
                registry.set_gauge(
                    f"slo_status.{endpoint}.{sli}",
                    status_code[info["status"]],
                )
        registry.set_gauge(
            "slo_status", status_code[self.overall_status()]
        )
