"""Exporters: metrics snapshots as Prometheus text or canonical JSON.

Both formats are deterministic (sorted metric names, fixed float
formatting), so golden-file tests can compare exported text exactly and
diffs between two runs are meaningful.
"""

from __future__ import annotations

import json
from typing import List

from repro.telemetry.registry import MetricsSnapshot

__all__ = ["prometheus_text", "snapshot_json"]


def _fmt(value: float) -> str:
    """Stable short float formatting (``0.001``, ``1e-06``, ``42``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sanitize(name: str) -> str:
    """Make *name* a legal Prometheus metric name."""
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_"
        for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def prometheus_text(snapshot: MetricsSnapshot, prefix: str = "repro_") -> str:
    """Render *snapshot* in the Prometheus text exposition format.

    Counters become ``<prefix><name>``; histograms expand to the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Metric families are emitted in sorted-name order with a
    ``# TYPE`` header each.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _sanitize(prefix + name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        metric = _sanitize(prefix + name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        metric = _sanitize(prefix + name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_json(snapshot: MetricsSnapshot, indent: int = 1) -> str:
    """Canonical JSON text of *snapshot* (sorted keys, stable layout)."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)
