"""Exporters: metrics snapshots as Prometheus text or canonical JSON.

Both formats are deterministic (sorted metric names, fixed float
formatting), so golden-file tests can compare exported text exactly and
diffs between two runs are meaningful.
"""

from __future__ import annotations

import json
from typing import List

from repro.telemetry.registry import MetricsSnapshot

__all__ = ["prometheus_text", "snapshot_json"]

#: Help strings for well-known metrics (``# HELP`` lines).  Tagged
#: variants (``serve_request.extract``) fall back to their base name's
#: entry; anything else gets a generic kind-derived line.
_HELP = {
    "loop_solve": "Loop R/L extractions solved directly (PEEC)",
    "lp_pair_eval": "Partial-inductance pair kernel evaluations",
    "field_solve_2d": "2-D capacitance field-solver invocations",
    "matrix_assembly": "Partial-element matrix assemblies",
    "table_lookup": "Extraction-table spline lookups",
    "memo_cache_entries": "Live entries in the Lp pair memo cache",
    "lookup_latency_seconds": "Extraction-table lookup latency",
    "serve_request": "Requests handled by the extraction service",
    "serve_cache_hit": "Service requests answered from the result cache",
    "serve_cache_miss": "Service requests that missed the result cache",
    "serve_coalesced": "Requests that shared another request's computation",
    "serve_rejected": "Requests rejected by admission control",
    "serve_inflight": "Service requests currently in flight",
    "serve_cache_entries": "Live entries in the service result cache",
    "serve_latency_seconds": "End-to-end service request latency",
    "log_record": "Structured log records emitted",
    "profiler_sample": "Stacks captured by the sampling profiler",
    "slo_burn_rate": "SLO error-budget burn rate (worst considered window)",
    "slo_status": "SLO status code (0=ok, 1=warn, 2=page)",
    "sweep_running": "Whether a sweep campaign is currently running",
    "sweep_points_total": "Grid points in the running sweep campaign",
    "sweep_points_done": "Sweep points finished (any status)",
    "sweep_points_failed": "Sweep points that failed",
    "sweep_points_skipped": "Sweep points replayed from the run ledger",
    "sweep_points_per_second": "Sweep campaign throughput",
    "sweep_eta_seconds": "Estimated seconds until the sweep completes",
    "sweep_memo_hit_rate": "Merged Lp memo hit rate across sweep points",
    "sweep_solver_calls": "Merged solver-call count across sweep points",
}


def _help_for(name: str, kind: str) -> str:
    """The ``# HELP`` text for one metric family."""
    text = _HELP.get(name) or _HELP.get(name.split(".", 1)[0])
    return text if text is not None else f"repro {kind} metric"


def _fmt(value: float) -> str:
    """Stable short float formatting (``0.001``, ``1e-06``, ``42``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sanitize(name: str) -> str:
    """Make *name* a legal Prometheus metric name."""
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_"
        for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def prometheus_text(snapshot: MetricsSnapshot, prefix: str = "repro_") -> str:
    """Render *snapshot* in the Prometheus text exposition format.

    Counters become ``<prefix><name>``; histograms expand to the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Metric families are emitted in sorted-name order, each
    preceded by its ``# HELP`` and ``# TYPE`` comment lines as the
    exposition format prescribes.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _sanitize(prefix + name)
        lines.append(f"# HELP {metric} {_help_for(name, 'counter')}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        metric = _sanitize(prefix + name)
        lines.append(f"# HELP {metric} {_help_for(name, 'gauge')}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        metric = _sanitize(prefix + name)
        lines.append(f"# HELP {metric} {_help_for(name, 'histogram')}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_json(snapshot: MetricsSnapshot, indent: int = 1) -> str:
    """Canonical JSON text of *snapshot* (sorted keys, stable layout)."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)
