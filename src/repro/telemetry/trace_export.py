"""Chrome trace-event (Perfetto) export for span trees.

Serializes the span trees captured by :class:`~repro.telemetry.spans.Tracer`
(or embedded in a :class:`~repro.telemetry.report.RunReport`) into the
Chrome trace-event JSON format, loadable by ``chrome://tracing`` and
https://ui.perfetto.dev -- a full extract -> simulate experiment renders
as one zoomable timeline instead of a text tree.

Format notes (the subset emitted here):

* one ``"ph": "X"`` *complete* event per span, with ``ts`` (start) and
  ``dur`` in **microseconds** relative to the earliest root span,
* span tags, counter deltas and error status ride along in ``args``,
* each root span tree gets its own ``tid`` lane, so worker span trees
  shipped into a parallel build's report render side by side instead of
  stacking into one false hierarchy,
* ``"ph": "M"`` metadata events name the process and the lanes,
* an optional sampling profile merges as ``"ph": "i"`` *instant* events
  on a dedicated ``profiler`` lane, one per captured stack sample, so a
  slow span lines up visually with what the interpreter was executing.

Clock hygiene: a span records its start as epoch seconds
(``time.time``) but its duration on the monotonic clock
(``time.perf_counter``).  The two can disagree by microseconds, which
would make a child poke past its parent's right edge and break nesting
in the viewer; child intervals are therefore clamped into their
parent's interval, preserving the invariant Perfetto's flame view
expects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.ioutil import atomic_write_text

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "profiler_trace_events",
    "write_chrome_trace",
]

#: Microseconds per second (trace-event timestamps are in us).
_US = 1e6


def _span_event(
    node: Dict[str, Any],
    ts_us: float,
    pid: int,
    tid: int,
) -> Dict[str, Any]:
    args: Dict[str, Any] = {}
    if node.get("tags"):
        args.update({str(k): v for k, v in node["tags"].items()})
    if node.get("metrics"):
        args["counters"] = dict(node["metrics"])
    status = node.get("status", "ok")
    if status != "ok":
        args["status"] = status
        if node.get("error"):
            args["error"] = node["error"]
    event = {
        "name": str(node.get("name", "?")),
        "cat": str(node.get("name", "?")).split(".")[0],
        "ph": "X",
        "ts": round(ts_us, 3),
        "dur": round(float(node.get("duration", 0.0)) * _US, 3),
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def _emit_tree(
    node: Dict[str, Any],
    epoch_zero: float,
    pid: int,
    tid: int,
    events: List[Dict[str, Any]],
    parent_interval: Optional[tuple] = None,
) -> None:
    start_us = (float(node.get("started_at", epoch_zero)) - epoch_zero) * _US
    dur_us = float(node.get("duration", 0.0)) * _US
    if parent_interval is not None:
        lo, hi = parent_interval
        # Clamp into the parent so mixed-clock jitter cannot break the
        # flame-graph nesting invariant (child within parent).
        start_us = min(max(start_us, lo), hi)
        dur_us = max(0.0, min(start_us + dur_us, hi) - start_us)
    event = _span_event(node, start_us, pid, tid)
    # Round start and end (not start and duration): round() is monotone,
    # so child_end <= parent_end survives the rounding exactly and the
    # viewer's nesting invariant cannot be broken by the last digit.
    ts = round(start_us, 3)
    event["ts"] = ts
    event["dur"] = round(start_us + dur_us, 3) - ts
    events.append(event)
    interval = (start_us, start_us + dur_us)
    for child in node.get("children", ()):
        _emit_tree(child, epoch_zero, pid, tid, events, interval)


def chrome_trace_events(
    spans: List[Dict[str, Any]],
    pid: int = 1,
    process_name: str = "repro",
) -> List[Dict[str, Any]]:
    """Flatten span-tree dicts into a list of trace events.

    Each root tree gets its own thread lane (``tid``); timestamps are
    microseconds since the earliest root's start.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    if not spans:
        return events
    epoch_zero = min(
        float(root.get("started_at", 0.0)) for root in spans
    )
    for tid, root in enumerate(spans):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"trace {tid}: {root.get('name', '?')}"},
        })
        _emit_tree(root, epoch_zero, pid, tid, events)
    return events


#: Lane id for merged profiler samples (far from real span lanes).
_PROFILER_TID = 10_000


def profiler_trace_events(
    timeline: List[Dict[str, Any]],
    epoch_zero: float,
    pid: int = 1,
    tid: int = _PROFILER_TID,
) -> List[Dict[str, Any]]:
    """Profiler timeline samples as ``"ph": "i"`` instant events.

    *timeline* is
    :meth:`~repro.telemetry.profiler.SamplingProfiler.timeline_events`
    output (``{"ts": epoch_s, "stack": (frame, ...)}``); events land on
    their own named lane with the leaf frame as the event name and the
    full collapsed stack in ``args`` -- zooming into a slow span shows
    exactly which kernel frame the sampler kept catching.
    """
    if not timeline:
        return []
    events: List[Dict[str, Any]] = [{
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": "profiler samples"},
    }]
    for sample in timeline:
        stack = tuple(sample.get("stack", ()))
        if not stack:
            continue
        events.append({
            "name": stack[-1],
            "cat": "profiler",
            "ph": "i",
            "s": "t",
            "ts": round((float(sample["ts"]) - epoch_zero) * _US, 3),
            "pid": pid,
            "tid": tid,
            "args": {"stack": ";".join(stack)},
        })
    return events


def chrome_trace(
    source,
    process_name: Optional[str] = None,
    profile: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build the top-level trace JSON object.

    *source* is either a list of span-tree dicts or anything with
    ``.spans`` (a :class:`~repro.telemetry.report.RunReport`); the
    report's command names the process and its metadata lands in
    ``otherData`` so the context survives into the viewer.  *profile*,
    when given, is a profiler timeline
    (:meth:`~repro.telemetry.profiler.SamplingProfiler.timeline_events`)
    merged onto a dedicated lane.
    """
    other: Dict[str, Any] = {}
    if hasattr(source, "spans"):
        spans = source.spans
        name = process_name or getattr(source, "command", "repro")
        other = {
            "command": getattr(source, "command", ""),
            "duration_s": getattr(source, "duration", 0.0),
        }
    else:
        spans = list(source)
        name = process_name or "repro"
    events = chrome_trace_events(spans, process_name=name)
    if profile:
        # Share the span lanes' time origin (earliest root start) so the
        # profiler lane lines up; samples taken before any span land at
        # negative ts, which the viewers accept.
        if spans:
            epoch_zero = min(
                float(root.get("started_at", 0.0)) for root in spans
            )
        else:
            epoch_zero = min(
                (float(s["ts"]) for s in profile if "ts" in s), default=0.0
            )
        events.extend(profiler_trace_events(profile, epoch_zero))
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if other:
        trace["otherData"] = other
    return trace


def write_chrome_trace(
    source,
    path: Union[str, Path],
    process_name: Optional[str] = None,
    profile: Optional[List[Dict[str, Any]]] = None,
) -> Path:
    """Atomically write a Chrome trace JSON file and return its path."""
    path = Path(path)
    atomic_write_text(
        path,
        json.dumps(
            chrome_trace(source, process_name=process_name, profile=profile)
        ),
    )
    return path
