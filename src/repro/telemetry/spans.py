"""Hierarchical tracing spans over the extraction pipeline.

A *span* is one timed region of work with a name, free-form tags, the
wall time it took, and the registry **counter deltas** that accumulated
inside it -- so a ``peec.assemble`` span carries exactly how many
Hoer-Love pair evaluations it performed, and a ``library.job`` span
carries its solver-call totals.  Spans nest: entering a span inside
another makes it a child, producing an in-memory trace tree::

    with span("htree.extract", segments=len(htree.segments)):
        for seg in htree.segments:
            with span("clocktree.segment", name=seg.name, length=seg.length):
                ...

Design points:

* **Exception safe** -- a raising block still closes its span (status
  ``"error"``, the exception recorded) and restores the parent, then
  re-raises.  The trace tree never corrupts on failure.
* **Cheap when off** -- ``set_spans_enabled(False)`` (or the
  ``spans_disabled()`` context manager) turns :func:`span` into a
  near-free no-op; the tier-1 overhead guard asserts the *enabled* cost
  on a reference kernel assembly stays under 5 %.
* **Thread-aware** -- the active-span stack is thread-local; each
  thread's top-level spans become roots of the shared trace.
* **Bounded** -- completed root spans are retained up to
  :attr:`Tracer.max_roots`; beyond that the oldest are dropped and
  counted, so long-lived processes cannot leak memory into the tracer.
* **Serializable** -- :meth:`Span.to_dict` / :func:`spans_to_jsonl`
  dump the tree as nested dicts or flat JSONL records (one span per
  line with ``id``/``parent``/``depth``), the format run reports embed
  and pool workers ship back to the build parent.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.telemetry.logs import current_correlation
from repro.telemetry.registry import MetricsRegistry, get_registry

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "spans_enabled",
    "set_spans_enabled",
    "spans_disabled",
    "spans_to_jsonl",
]


class Span:
    """One completed (or in-flight) traced region."""

    __slots__ = (
        "name", "tags", "started_at", "duration", "children",
        "metrics", "status", "error",
    )

    def __init__(self, name: str, tags: Optional[Dict[str, object]] = None):
        self.name = name
        #: Free-form key/value annotations (JSON-compatible values).
        self.tags: Dict[str, object] = dict(tags or {})
        #: Wall-clock epoch seconds when the span opened.
        self.started_at = time.time()
        #: Wall seconds inside the span (filled at close).
        self.duration = 0.0
        self.children: List["Span"] = []
        #: Registry counter deltas accumulated inside the span.
        self.metrics: Dict[str, int] = {}
        self.status = "ok"
        self.error: Optional[str] = None

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
        }
        if self.tags:
            data["tags"] = dict(self.tags)
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration:.6f}s, "
                f"{len(self.children)} children, {self.status})")


class Tracer:
    """Collects span trees for one process.

    The active-span stack is per-thread; completed top-of-stack spans
    attach to their parent, completed bottom-of-stack spans are appended
    (under a lock) to :attr:`roots`, bounded by :attr:`max_roots`.
    """

    DEFAULT_MAX_ROOTS = 4096

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = True,
        max_roots: int = DEFAULT_MAX_ROOTS,
    ):
        self._registry = registry
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: List[Span] = []
        #: Root spans discarded because the retention bound was hit.
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span of this thread (None outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[Optional[Span]]:
        """Open a traced region; yields the live :class:`Span` (or None
        when tracing is disabled)."""
        if not self.enabled:
            yield None
            return
        registry = self.registry
        sp = Span(name, tags)
        # Correlation ids (request_id / chunk_id) ride onto every span so
        # a slow request found in the access log can be opened as a trace.
        # Tuple iteration keeps the no-correlation hot path allocation-free
        # (the tier-1 overhead guard holds span cost under 5 %).
        correlation = current_correlation()
        if correlation:
            for key, value in correlation:
                sp.tags.setdefault(key, value)
        stack = self._stack()
        start_counters = registry.counters_snapshot()
        stack.append(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            sp.duration = time.perf_counter() - t0
            end_counters = registry.counters_snapshot()
            sp.metrics = {
                key: end_counters[key] - start_counters.get(key, 0)
                for key in end_counters
                if end_counters[key] - start_counters.get(key, 0)
            }
            stack.pop()
            if stack:
                stack[-1].children.append(sp)
            else:
                with self._lock:
                    self.roots.append(sp)
                    while len(self.roots) > self.max_roots:
                        self.roots.pop(0)
                        self.dropped += 1

    # ------------------------------------------------------------------
    def drain(self) -> List[Span]:
        """Return and clear every completed root span."""
        with self._lock:
            roots, self.roots = self.roots, []
        return roots

    def reset(self) -> None:
        """Drop completed roots and the dropped-span counter."""
        with self._lock:
            self.roots = []
            self.dropped = 0

    def clear_stack(self) -> None:
        """Drop this thread's open-span stack (inherited-state hygiene).

        A ``fork()`` taken while a span is open copies the parent's
        open-span stack into the child, where it can never close --
        every span the child then records would attach to the phantom
        inherited parent instead of becoming a drainable root.  Pool
        workers call this (plus :meth:`reset`) at task start so their
        trace begins from a clean slate.
        """
        self._local.stack = []


#: The process-wide tracer every instrumented layer writes to.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return _GLOBAL_TRACER


def span(name: str, **tags: object):
    """Open a span on the global tracer (the usual entry point)::

        with span("tables.build_loop", points=n):
            ...
    """
    return _GLOBAL_TRACER.span(name, **tags)


def spans_enabled() -> bool:
    """Whether the global tracer records spans."""
    return _GLOBAL_TRACER.enabled


def set_spans_enabled(enabled: bool) -> None:
    """Globally switch span recording on or off."""
    _GLOBAL_TRACER.enabled = bool(enabled)


@contextmanager
def spans_disabled() -> Iterator[None]:
    """Suspend span recording inside the block (overhead baselines)."""
    previous = _GLOBAL_TRACER.enabled
    _GLOBAL_TRACER.enabled = False
    try:
        yield
    finally:
        _GLOBAL_TRACER.enabled = previous


def spans_to_jsonl(spans: List[dict]) -> str:
    """Flatten span-tree dicts into JSONL (one span per line).

    Each line carries ``id``, ``parent`` (None for roots) and ``depth``
    alongside the span's own fields, children removed -- the streaming-
    friendly format for log shippers and ad-hoc ``jq`` analysis.
    """
    counter = itertools.count()
    lines: List[str] = []

    def emit(node: dict, parent: Optional[int], depth: int) -> None:
        span_id = next(counter)
        record = {k: v for k, v in node.items() if k != "children"}
        record.update({"id": span_id, "parent": parent, "depth": depth})
        lines.append(json.dumps(record, sort_keys=True))
        for child in node.get("children", ()):
            emit(child, span_id, depth + 1)

    for root in spans:
        emit(root, None, 0)
    return "\n".join(lines) + ("\n" if lines else "")
