"""Zero-dependency observability for the extraction pipeline.

``repro.telemetry`` supersedes and absorbs :mod:`repro.instrumentation`
(which remains as a thin compatibility shim).  Four pieces:

* :mod:`~repro.telemetry.registry` -- a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms) with atomic snapshots and
  the snapshot algebra (``minus`` / ``merged``) that powers
  cross-process aggregation.
* :mod:`~repro.telemetry.spans` -- hierarchical tracing spans
  (``with span("htree.extract", ...)``) recording wall time, counter
  deltas and tags into an in-memory trace tree, dumpable as JSONL.
* :mod:`~repro.telemetry.export` -- deterministic Prometheus-text and
  JSON exporters for snapshots.
* :mod:`~repro.telemetry.trace_export` -- Chrome trace-event (Perfetto)
  exporter turning span trees into loadable timelines
  (``repro report out.json --trace-json trace.json``).
* :mod:`~repro.telemetry.report` -- structured :class:`RunReport`
  artifacts (``--telemetry out.json`` on the CLI, rendered back by
  ``repro report``), captured by :func:`telemetry_session`.

Typical use::

    from repro.telemetry import get_registry, metrics_meter, span

    with metrics_meter() as meter:
        with span("htree.extract", segments=n):
            extractor.build_netlist(htree)
    assert meter.delta.counter("loop_solve") == 0      # warm path
    print(meter.delta.memo_hit_rate)                   # race-free
"""

from repro.telemetry.registry import (
    AUDIT_SOLVE,
    BUILD_CHUNK_SECONDS,
    DEFAULT_TIME_BUCKETS,
    FIELD_SOLVE_2D,
    LOG_RECORD,
    LOOKUP_LATENCY,
    LOOP_SOLVE,
    LP_DEDUP_BYPASS,
    LP_DISK_MEMO_CORRUPT,
    LP_DISK_MEMO_FLUSH,
    LP_DISK_MEMO_WARM,
    LP_MEMO_HIT,
    LP_MEMO_MISS,
    LP_PAIR_EVAL,
    LP_PAIR_TOTAL,
    LTE_SUBSAMPLED,
    SOLVER_FACTOR_DENSE,
    SOLVER_FACTOR_SPARSE,
    PARTIAL_SOLVE,
    PROFILER_SAMPLE,
    SERVE_CACHE_HIT,
    SERVE_CACHE_MISS,
    SERVE_COALESCED,
    SERVE_LATENCY,
    SERVE_REJECTED,
    SERVE_REQUEST,
    TABLE_BUILD_POINT,
    TABLE_LOOKUP,
    TABLE_LOOKUP_EDGE,
    TABLE_LOOKUP_EXTRAPOLATED,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    metrics_meter,
)
from repro.telemetry.spans import (
    Span,
    Tracer,
    get_tracer,
    set_spans_enabled,
    span,
    spans_disabled,
    spans_enabled,
    spans_to_jsonl,
)
from repro.telemetry.logs import (
    LogRing,
    StructuredLogger,
    bind_correlation,
    configure_logging,
    correlation_ids,
    correlation_scope,
    current_correlation,
    get_log_ring,
    get_logger,
    install_stdlib_bridge,
    new_request_id,
    recent_logs,
    uninstall_stdlib_bridge,
)
from repro.telemetry.slo import SLOConfig, SLOMonitor, WindowStats
from repro.telemetry.profiler import SamplingProfiler, profiling
from repro.telemetry.export import prometheus_text, snapshot_json
from repro.telemetry.trace_export import (
    chrome_trace,
    chrome_trace_events,
    profiler_trace_events,
    write_chrome_trace,
)
from repro.telemetry.report import (
    REPORT_SCHEMA_VERSION,
    RunReport,
    TelemetrySession,
    load_report,
    render_report,
    telemetry_session,
)

__all__ = [
    # metric names
    "LOOP_SOLVE", "PARTIAL_SOLVE", "FIELD_SOLVE_2D",
    "LP_PAIR_EVAL", "LP_PAIR_TOTAL", "LP_MEMO_HIT", "LP_MEMO_MISS",
    "LP_DEDUP_BYPASS", "LP_DISK_MEMO_WARM", "LP_DISK_MEMO_FLUSH",
    "LP_DISK_MEMO_CORRUPT",
    "LTE_SUBSAMPLED", "SOLVER_FACTOR_DENSE", "SOLVER_FACTOR_SPARSE",
    "LOOKUP_LATENCY", "TABLE_BUILD_POINT", "BUILD_CHUNK_SECONDS",
    "TABLE_LOOKUP", "TABLE_LOOKUP_EDGE", "TABLE_LOOKUP_EXTRAPOLATED",
    "AUDIT_SOLVE",
    "SERVE_REQUEST", "SERVE_CACHE_HIT", "SERVE_CACHE_MISS",
    "SERVE_COALESCED", "SERVE_REJECTED", "SERVE_LATENCY",
    "LOG_RECORD", "PROFILER_SAMPLE",
    "DEFAULT_TIME_BUCKETS",
    # registry
    "MetricsRegistry", "MetricsSnapshot", "HistogramSnapshot",
    "get_registry", "metrics_meter",
    # spans
    "Span", "Tracer", "get_tracer", "span",
    "spans_enabled", "set_spans_enabled", "spans_disabled",
    "spans_to_jsonl",
    # structured logs + correlation
    "LogRing", "StructuredLogger", "get_logger", "get_log_ring",
    "recent_logs", "configure_logging",
    "correlation_scope", "bind_correlation", "correlation_ids",
    "current_correlation", "new_request_id",
    "install_stdlib_bridge", "uninstall_stdlib_bridge",
    # slo + profiler
    "SLOConfig", "SLOMonitor", "WindowStats",
    "SamplingProfiler", "profiling",
    # exporters
    "prometheus_text", "snapshot_json",
    "chrome_trace", "chrome_trace_events", "profiler_trace_events",
    "write_chrome_trace",
    # reports
    "REPORT_SCHEMA_VERSION", "RunReport", "TelemetrySession",
    "telemetry_session", "render_report", "load_report",
]
