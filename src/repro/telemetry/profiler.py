"""Opt-in sampling wall-clock profiler (zero dependencies).

A background daemon thread wakes every ``interval`` seconds, walks
``sys._current_frames()`` and records each live thread's Python stack.
Aggregated stacks come out in the *collapsed-stack* format flamegraph
tooling eats directly (``flamegraph.pl``, speedscope, Firefox
Profiler)::

    module.func;module.inner;kernel.mutual_inductance_batch 412

Design points:

* **Wall-clock, not CPU** -- a thread blocked on a lock or a solver
  call is sampled where it blocks, which is what an operator debugging
  a slow request wants to see.
* **Bounded** -- aggregation is a ``Counter`` keyed by stack tuple
  (thousands of entries at most for real programs) plus a bounded
  timeline of ``(epoch_ts, stack_index)`` samples for the Perfetto
  merge; long sessions stop appending to the timeline rather than
  growing without bound.
* **Low overhead** -- at the default 5 ms interval a sample costs one
  ``sys._current_frames()`` walk; the profiler thread itself is
  excluded from its own samples.  The serve-bench regression gate is
  the overhead backstop (<5 % p95).

Used by ``repro serve --profile``, ``repro library build --profile``
and ``repro bench serve --profile``; see also
:func:`repro.telemetry.trace_export.chrome_trace` which merges a
profile's timeline as instant events on a dedicated lane.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.telemetry.registry import PROFILER_SAMPLE, get_registry

__all__ = [
    "SamplingProfiler",
    "profiling",
]

#: Stack frames deeper than this are truncated (innermost kept).
MAX_STACK_DEPTH = 64


def _frame_stack(frame) -> Tuple[str, ...]:
    """Outermost-first ``module.function`` labels for one frame chain."""
    labels: List[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        labels.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Background stack sampler; ``start()`` / ``stop()`` or use as a
    context manager (see :func:`profiling`)."""

    DEFAULT_INTERVAL = 0.005
    #: Timeline samples retained for the Perfetto merge (aggregation in
    #: :attr:`stacks` continues past this bound).
    MAX_TIMELINE = 200_000

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        #: Collapsed stack tuple -> sample count (all threads merged).
        self.stacks: "Counter[Tuple[str, ...]]" = Counter()
        #: Bounded ``(epoch_ts, stack_index)`` for timeline export.
        self.timeline: List[Tuple[float, int]] = []
        #: Stable stack-tuple interning for :attr:`timeline` indices.
        self._stack_ids: Dict[Tuple[str, ...], int] = {}
        self._stacks_by_id: List[Tuple[str, ...]] = []
        self.samples = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.time()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _run(self) -> None:
        own_id = threading.get_ident()
        registry = get_registry()
        while not self._stop.wait(self.interval):
            now = time.time()
            frames = sys._current_frames()
            captured = 0
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = _frame_stack(frame)
                    if not stack:
                        continue
                    self.stacks[stack] += 1
                    captured += 1
                    if len(self.timeline) < self.MAX_TIMELINE:
                        stack_id = self._stack_ids.get(stack)
                        if stack_id is None:
                            stack_id = len(self._stacks_by_id)
                            self._stack_ids[stack] = stack_id
                            self._stacks_by_id.append(stack)
                        self.timeline.append((now, stack_id))
                self.samples += captured
            if captured:
                registry.inc(PROFILER_SAMPLE, captured)

    # -- output --------------------------------------------------------
    def collapsed(self, min_count: int = 1) -> str:
        """Collapsed-stack text: ``frame;frame;frame count`` per line,
        hottest stacks first."""
        with self._lock:
            items = sorted(
                self.stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in items
            if count >= min_count
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def timeline_events(self) -> List[dict]:
        """Timeline samples as dicts for the Perfetto/trace merge."""
        with self._lock:
            timeline = list(self.timeline)
            stacks = list(self._stacks_by_id)
        return [
            {"ts": ts, "stack": stacks[stack_id]}
            for ts, stack_id in timeline
        ]

    def summary(self) -> dict:
        """Profile header for run reports and /statusz."""
        with self._lock:
            distinct = len(self.stacks)
            timeline_len = len(self.timeline)
            hottest = self.stacks.most_common(10)
        duration = None
        if self.started_at is not None:
            end = self.stopped_at if self.stopped_at else time.time()
            duration = round(end - self.started_at, 3)
        return {
            "interval_seconds": self.interval,
            "samples": self.samples,
            "distinct_stacks": distinct,
            "timeline_samples": timeline_len,
            "duration_seconds": duration,
            "hottest": [
                {"leaf": stack[-1], "count": count}
                for stack, count in hottest
            ],
        }

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.collapsed())


@contextmanager
def profiling(
    interval: float = SamplingProfiler.DEFAULT_INTERVAL,
) -> Iterator[SamplingProfiler]:
    """Run a :class:`SamplingProfiler` around the block::

        with profiling(interval=0.005) as prof:
            heavy_work()
        Path("profile.txt").write_text(prof.collapsed())
    """
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
