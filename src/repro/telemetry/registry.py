"""Metrics registry: counters, gauges and fixed-bucket histograms.

The paper's headline claim is economic -- characterize once, answer
every extraction by table lookup with *zero* solves on the hot path --
and the registry is what makes that claim (and the kernel-layer
economics behind it) continuously measurable.  One process-wide
:class:`MetricsRegistry` holds three metric kinds:

* **Counters** -- monotone event counts (``loop_solve``,
  ``lp_pair_eval``, ``lp_memo_hit`` ...).  The expensive entry points
  tick them; warm-path acceptance tests assert their deltas are zero.
* **Gauges** -- last-written values (``memo_cache_entries``).
* **Histograms** -- fixed-bucket latency distributions
  (``lookup_latency_seconds``, ``table_build_point_seconds``).  Bucket
  upper bounds are inclusive (Prometheus ``le`` semantics).

Everything is guarded by **one** registry lock, so
:meth:`MetricsRegistry.snapshot` is atomic across every metric: derived
quantities like the memo hit rate are computed from a single coherent
snapshot instead of two racy reads (the bug the old
``instrumentation.memo_hit_rate`` had).

Snapshots are plain, picklable, JSON-able value objects
(:class:`MetricsSnapshot`) supporting difference (``minus``) and sum
(``merged``) -- the algebra the cross-process build aggregation in
:mod:`repro.library.runner` is built on: each pool worker returns the
snapshot *delta* of its chunk, and the parent merges the deltas into
true build totals.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import TelemetryError

__all__ = [
    "LOOP_SOLVE",
    "PARTIAL_SOLVE",
    "FIELD_SOLVE_2D",
    "LP_PAIR_EVAL",
    "LP_PAIR_TOTAL",
    "LP_MEMO_HIT",
    "LP_MEMO_MISS",
    "LP_DEDUP_BYPASS",
    "LP_DISK_MEMO_WARM",
    "LP_DISK_MEMO_FLUSH",
    "LP_DISK_MEMO_CORRUPT",
    "TABLE_LOOKUP",
    "TABLE_LOOKUP_EDGE",
    "TABLE_LOOKUP_EXTRAPOLATED",
    "AUDIT_SOLVE",
    "TRANSIENT_STEPS",
    "TRANSIENT_DT_SNAPPED",
    "DC_START_FALLBACK",
    "SINGULAR_SYSTEM",
    "LTE_SUBSAMPLED",
    "SOLVER_FACTOR_DENSE",
    "SOLVER_FACTOR_SPARSE",
    "NETLIST_LINT",
    "NETLIST_LINT_FINDING",
    "SERVE_REQUEST",
    "SERVE_CACHE_HIT",
    "SERVE_CACHE_MISS",
    "SERVE_COALESCED",
    "SERVE_REJECTED",
    "SERVE_LATENCY",
    "LOG_RECORD",
    "PROFILER_SAMPLE",
    "SWEEP_RUNNING",
    "SWEEP_POINTS_TOTAL",
    "SWEEP_POINTS_DONE",
    "SWEEP_POINTS_FAILED",
    "SWEEP_POINTS_SKIPPED",
    "SWEEP_POINTS_PER_SECOND",
    "SWEEP_ETA_SECONDS",
    "SWEEP_MEMO_HIT_RATE",
    "SWEEP_SOLVER_CALLS",
    "OBSERVATIONAL_PREFIXES",
    "is_solver_counter",
    "LOOKUP_LATENCY",
    "TABLE_BUILD_POINT",
    "BUILD_CHUNK_SECONDS",
    "FACTOR_SECONDS",
    "DEFAULT_TIME_BUCKETS",
    "HistogramSnapshot",
    "MetricsSnapshot",
    "MetricsRegistry",
    "get_registry",
    "metrics_meter",
]

# ----------------------------------------------------------------------
# canonical metric names
# ----------------------------------------------------------------------
#: Solver-invocation counters (the zero-solve warm-path assertions).
LOOP_SOLVE = "loop_solve"
PARTIAL_SOLVE = "partial_inductance_solve"
FIELD_SOLVE_2D = "field_solve_2d"

#: Kernel-layer counters: Hoer-Love pair evaluations actually performed,
#: the raw same-axis pair count they were deduplicated from, and the
#: memo-cache hit/miss counts.  ``lp_pair_total / lp_pair_eval`` is the
#: measured end-to-end evaluation-reduction (dedup x memo) factor.
LP_PAIR_EVAL = "lp_pair_eval"
LP_PAIR_TOTAL = "lp_pair_total"
LP_MEMO_HIT = "lp_memo_hit"
LP_MEMO_MISS = "lp_memo_miss"

#: Dedup-assembly economics (PR 7): tiny memo-less blocks skip the
#: signature machinery entirely (``lp_dedup_bypass``), and the
#: persistent on-disk memo shard counts entries warmed from / flushed
#: to disk plus files rejected by the integrity check.
LP_DEDUP_BYPASS = "lp_dedup_bypass"
LP_DISK_MEMO_WARM = "lp_disk_memo_warm"
LP_DISK_MEMO_FLUSH = "lp_disk_memo_flush"
LP_DISK_MEMO_CORRUPT = "lp_disk_memo_corrupt"

#: Lookup-domain coverage counters (ticked by every table lookup; see
#: :mod:`repro.quality.coverage`).  Every query classifies as interior,
#: edge-cell or extrapolated; extrapolated lookups additionally tick a
#: per-axis tagged counter ``table_lookup_extrapolated.<axis>.<side>``.
TABLE_LOOKUP = "table_lookup"
TABLE_LOOKUP_EDGE = "table_lookup_edge"
TABLE_LOOKUP_EXTRAPOLATED = "table_lookup_extrapolated"

#: Direct re-solves performed by the table auditor -- never ticked on a
#: plain extraction path (auditing is strictly opt-in).
AUDIT_SOLVE = "audit_direct_solve"

#: Simulation-observability counters (PR 5; see
#: :mod:`repro.circuit.diagnostics` and :mod:`repro.circuit.lint`).
#: These are *observational* -- the instrumentation shim excludes the
#: ``circuit_*`` / ``netlist_lint*`` families from the zero-solve
#: totals, the same way it excludes ``table_lookup*``.
TRANSIENT_STEPS = "circuit_transient_steps"
TRANSIENT_DT_SNAPPED = "circuit_dt_snapped"
DC_START_FALLBACK = "circuit_dc_start_fallback"
SINGULAR_SYSTEM = "circuit_singular_system"
#: Diagnostics capped the LTE probe count on a large system (PR 7).
LTE_SUBSAMPLED = "circuit_lte_subsampled"
#: Which backend the MNA factorization abstraction picked (PR 7).
SOLVER_FACTOR_DENSE = "circuit_solver_dense"
SOLVER_FACTOR_SPARSE = "circuit_solver_sparse"
NETLIST_LINT = "netlist_lint"
NETLIST_LINT_FINDING = "netlist_lint_finding"

#: Serving-layer counters (PR 6; see :mod:`repro.serve`).  Requests are
#: ticked per endpoint as ``serve_request.<endpoint>`` alongside the
#: totals; the cache/coalescing/rejection counters make the daemon's
#: economics (how much work the result cache absorbs) observable on
#: ``/metrics`` and in ``repro report``.
SERVE_REQUEST = "serve_request"
SERVE_CACHE_HIT = "serve_cache_hit"
SERVE_CACHE_MISS = "serve_cache_miss"
SERVE_COALESCED = "serve_coalesced"
SERVE_REJECTED = "serve_rejected"

#: Operational-observability counters (PR 8; see
#: :mod:`repro.telemetry.logs` and :mod:`repro.telemetry.profiler`).
#: Structured log records tick ``log_record`` (+ per-level tag) and the
#: sampling profiler ticks ``profiler_sample`` per captured stack.
LOG_RECORD = "log_record"
PROFILER_SAMPLE = "profiler_sample"

#: Sweep-campaign progress gauges (PR 10; see
#: :mod:`repro.scenarios.sweep`).  The :class:`SweepRunner` publishes
#: live aggregated progress onto these while a campaign runs -- points
#: done/failed/skipped, throughput, ETA and the merged memo-hit-rate /
#: solver-call counters -- so the Prometheus exporter surfaces them as
#: ``repro_sweep_*`` without any sweep-specific export code.
SWEEP_RUNNING = "sweep_running"
SWEEP_POINTS_TOTAL = "sweep_points_total"
SWEEP_POINTS_DONE = "sweep_points_done"
SWEEP_POINTS_FAILED = "sweep_points_failed"
SWEEP_POINTS_SKIPPED = "sweep_points_skipped"
SWEEP_POINTS_PER_SECOND = "sweep_points_per_second"
SWEEP_ETA_SECONDS = "sweep_eta_seconds"
SWEEP_MEMO_HIT_RATE = "sweep_memo_hit_rate"
SWEEP_SOLVER_CALLS = "sweep_solver_calls"

#: Counter-name prefixes that *observe* rather than record solver work:
#: the ``table_lookup*`` coverage family (PR 4), the ``circuit_*`` /
#: ``netlist_lint*`` simulation-observability families (PR 5), the
#: ``serve_*`` daemon families (PR 6) and the ``log_*`` / ``slo_*`` /
#: ``profiler_*`` operational families (PR 8).  Warm lookups, transient
#: step counts, netlist lints, served requests, log lines and profiler
#: samples legitimately tick these, so zero-solve totals must not count
#: them.  ``sweep_*`` (PR 10) is campaign-progress bookkeeping, never
#: solver work.
OBSERVATIONAL_PREFIXES: Tuple[str, ...] = (
    "table_lookup", "circuit_", "netlist_lint", "serve_",
    "log_", "slo_", "profiler_", "sweep_",
)


def is_solver_counter(name: str) -> bool:
    """True when counter *name* records solver work (not observation)."""
    return not name.startswith(OBSERVATIONAL_PREFIXES)

#: Latency histograms of the hot paths.
LOOKUP_LATENCY = "lookup_latency_seconds"
TABLE_BUILD_POINT = "table_build_point_seconds"
BUILD_CHUNK_SECONDS = "build_chunk_seconds"
FACTOR_SECONDS = "circuit_factor_seconds"
SERVE_LATENCY = "serve_latency_seconds"

#: Default histogram bucket upper bounds [s]: 1 us .. 1 min, log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0,
)


def _validated_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise TelemetryError("histogram needs at least one bucket bound")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise TelemetryError("histogram bucket bounds must be strictly increasing")
    return bounds


# ----------------------------------------------------------------------
# snapshots (immutable value objects)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: per-bucket counts, sum and total count.

    ``counts`` has ``len(buckets) + 1`` entries; the last one is the
    overflow (``+Inf``) bucket.  Counts are *per-bucket*, not
    cumulative; exporters cumulate for the Prometheus text format.
    """

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int

    def minus(self, older: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != older.buckets:
            raise TelemetryError("cannot difference histograms with different buckets")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a - b for a, b in zip(self.counts, older.counts)),
            sum=self.sum - older.sum,
            count=self.count - older.count,
        )

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != other.buckets:
            raise TelemetryError("cannot merge histograms with different buckets")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile from the bucket histogram.

        Returns the upper bound of the first *non-empty* bucket whose
        cumulative count reaches the quantile target (so ``q=0`` is the
        bound of the smallest observed bucket, not the smallest bucket
        that exists), the last finite bound when the quantile falls in
        the overflow bucket, and 0.0 when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            if n and running >= target:
                return bound
        return self.buckets[-1]

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSnapshot":
        return cls(
            buckets=tuple(float(b) for b in data["buckets"]),
            counts=tuple(int(c) for c in data["counts"]),
            sum=float(data["sum"]),
            count=int(data["count"]),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """An atomic, picklable copy of every metric in a registry.

    Supports the two operations cross-process aggregation needs:
    ``minus`` (delta between two snapshots of the same registry) and
    ``merged`` (sum of snapshots from different processes).  For gauges,
    ``minus`` keeps the newer value and ``merged`` keeps the other
    snapshot's value (last writer wins).
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        """Value of counter *name* (0 when never ticked)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> Optional[HistogramSnapshot]:
        return self.histograms.get(name)

    @property
    def total_counter_events(self) -> int:
        return sum(self.counters.values())

    @property
    def memo_hit_rate(self) -> float:
        """Memo-cache hit fraction, race-free by construction.

        Hits and misses come from the *same* atomic snapshot, so the
        rate can never pair a fresh hit count with a stale miss count
        (the double-read race the legacy helper had).
        """
        hits = self.counter(LP_MEMO_HIT)
        total = hits + self.counter(LP_MEMO_MISS)
        return hits / total if total else 0.0

    @property
    def dedup_factor(self) -> float:
        """Raw same-axis pairs per Hoer-Love evaluation (1.0 when idle)."""
        evals = self.counter(LP_PAIR_EVAL)
        total = self.counter(LP_PAIR_TOTAL)
        return total / evals if evals else 1.0

    def minus(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """The delta accumulated between *older* and this snapshot."""
        counters = {}
        for name in set(self.counters) | set(older.counters):
            delta = self.counters.get(name, 0) - older.counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, hist in self.histograms.items():
            old = older.histograms.get(name)
            delta_h = hist.minus(old) if old is not None else hist
            if delta_h.count:
                histograms[name] = delta_h
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Element-wise sum with *other* (cross-process aggregation)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merged(hist)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            counters={str(k): int(v)
                      for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v)
                    for k, v in data.get("gauges", {}).items()},
            histograms={
                str(k): HistogramSnapshot.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )


# ----------------------------------------------------------------------
# live metrics (registry-internal, mutated under the registry lock)
# ----------------------------------------------------------------------
class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bucket upper bounds are inclusive: value == bound lands in
        # that bucket (Prometheus `le` semantics).
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            sum=self.sum,
            count=self.count,
        )


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms.

    Metrics are created on first use; a name is permanently bound to its
    first-seen kind (incrementing a name previously used as a gauge
    raises).  Every operation -- including :meth:`snapshot` -- holds one
    internal lock, so snapshots are atomic across all metrics.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # -- writes --------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created at 0 on first use)."""
        with self._lock:
            self._check_kind(name, "counter")
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        with self._lock:
            self._check_kind(name, "gauge")
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record *value* into histogram *name*.

        *buckets* fixes the bucket bounds on first use (default:
        :data:`DEFAULT_TIME_BUCKETS`); later calls must not disagree.
        """
        with self._lock:
            self._check_kind(name, "histogram")
            hist = self._histograms.get(name)
            if hist is None:
                bounds = _validated_buckets(
                    buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                )
                hist = self._histograms[name] = _Histogram(bounds)
            elif buckets is not None and tuple(
                float(b) for b in buckets
            ) != hist.buckets:
                raise TelemetryError(
                    f"histogram {name!r} already registered with different buckets"
                )
            hist.observe(float(value))

    def _check_kind(self, name: str, kind: str) -> None:
        # caller holds the lock
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise TelemetryError(
                    f"metric {name!r} is a {other_kind}, not a {kind}"
                )

    # -- reads ---------------------------------------------------------
    def counter_value(self, name: Optional[str] = None) -> int:
        """Counter *name*'s value, or the sum of every counter when None."""
        with self._lock:
            if name is not None:
                return self._counters.get(name, 0)
            return sum(self._counters.values())

    def counters_snapshot(self) -> Dict[str, int]:
        """A copy of just the counters (one lock acquisition)."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> MetricsSnapshot:
        """An atomic copy of every metric (single lock acquisition)."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            )

    # -- maintenance ---------------------------------------------------
    def reset(self) -> None:
        """Drop every metric (tests call this before a measured region)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented layer writes to.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


class metrics_meter:
    """Context manager measuring registry deltas inside a ``with`` block.

    Differences snapshots instead of resetting the registry, so meters
    nest and co-exist::

        with metrics_meter() as meter:
            extractor.segment_rlc(length)
        assert meter.delta.counter("loop_solve") == 0
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else get_registry()
        self._start: Optional[MetricsSnapshot] = None
        self.delta: MetricsSnapshot = MetricsSnapshot()

    def __enter__(self) -> "metrics_meter":
        self._start = self.registry.snapshot()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.delta = self.registry.snapshot().minus(self._start)

    @property
    def counts(self) -> Dict[str, int]:
        """Nonzero counter deltas observed inside the block."""
        return dict(self.delta.counters)

    @property
    def total(self) -> int:
        """Solver-work counter deltas observed inside the block.

        Purely observational families (:data:`OBSERVATIONAL_PREFIXES`:
        ``table_lookup*``, ``circuit_*``, ``netlist_lint*``) are
        excluded, matching the instrumentation shim's zero-solve
        semantics: a warm lookup or a netlist lint is not solver work.
        """
        return sum(
            v for k, v in self.delta.counters.items()
            if is_solver_counter(k)
        )


def iter_counter_items(snapshot: MetricsSnapshot) -> Iterator[Tuple[str, int]]:
    """Counters of *snapshot* in sorted-name order (exporter helper)."""
    return iter(sorted(snapshot.counters.items()))
