"""Waveform measurement: delays, overshoot, ringing, skew.

These are the quantities the paper reads off its SPICE runs: the 50 %
delay from buffer output to sink (28.01 ps vs 47.6 ps in Figs. 2/3), the
overshoot/undershoot the inductance introduces, and the clock skew
between sinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import CircuitError


@dataclass
class Waveform:
    """A sampled waveform ``values(time)`` with measurement helpers."""

    time: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.time = np.asarray(self.time, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.time.ndim != 1 or self.time.shape != self.values.shape:
            raise CircuitError("time and values must be matching 1-D arrays")
        if self.time.size < 2:
            raise CircuitError("waveform needs at least two samples")
        if not np.all(np.diff(self.time) > 0.0):
            raise CircuitError("time must be strictly increasing")

    @property
    def final_value(self) -> float:
        """Last sampled value (the settled level for long-enough runs)."""
        return float(self.values[-1])

    @property
    def initial_value(self) -> float:
        """First sampled value."""
        return float(self.values[0])

    def at(self, t: float) -> float:
        """Linear interpolation of the waveform at time *t*."""
        return float(np.interp(t, self.time, self.values))

    def threshold_crossing(
        self,
        level: float,
        rising: bool = True,
        occurrence: int = 1,
    ) -> Optional[float]:
        """Time of the *occurrence*-th crossing of *level* (or ``None``).

        Crossing times are linearly interpolated between samples.
        """
        if occurrence < 1:
            raise CircuitError("occurrence must be >= 1")
        v = self.values
        if rising:
            mask = (v[:-1] < level) & (v[1:] >= level)
        else:
            mask = (v[:-1] > level) & (v[1:] <= level)
        indices = np.flatnonzero(mask)
        if indices.size < occurrence:
            return None
        i = indices[occurrence - 1]
        t0, t1 = self.time[i], self.time[i + 1]
        v0, v1 = v[i], v[i + 1]
        if v1 == v0:
            return float(t0)
        return float(t0 + (level - v0) * (t1 - t0) / (v1 - v0))

    def delay_to(
        self,
        other: "Waveform",
        fraction: float = 0.5,
        reference: Optional[float] = None,
    ) -> float:
        """Threshold delay from this waveform to *other* [s].

        Measures the time between the two waveforms crossing
        ``fraction * reference``; *reference* defaults to this waveform's
        final value (a shared swing for driver/sink pairs).
        """
        if not (0.0 < fraction < 1.0):
            raise CircuitError("fraction must be in (0, 1)")
        if reference is None:
            reference = self.final_value
        level = fraction * reference
        t_self = self.threshold_crossing(level, rising=reference > 0)
        t_other = other.threshold_crossing(level, rising=reference > 0)
        if t_self is None or t_other is None:
            raise CircuitError(
                f"waveform never crosses {level:.4g}; extend the simulation"
            )
        return t_other - t_self

    def overshoot(self, reference: Optional[float] = None) -> float:
        """Relative overshoot past the settled value (0 when monotone).

        ``(max - reference) / |reference|`` clamped at zero; *reference*
        defaults to the final value.
        """
        if reference is None:
            reference = self.final_value
        if reference == 0.0:
            raise CircuitError("reference must be non-zero for overshoot")
        peak = float(self.values.max()) if reference > 0 else float(self.values.min())
        return max((peak - reference) / abs(reference) * np.sign(reference), 0.0)

    def undershoot(self, reference: Optional[float] = None) -> float:
        """Relative dip below the initial value after the first rise.

        Quantifies ring-back: how far the waveform swings back below the
        settled level after its first peak.  Returns 0 for monotone
        waveforms.
        """
        if reference is None:
            reference = self.final_value
        if reference == 0.0:
            raise CircuitError("reference must be non-zero for undershoot")
        peak_index = int(np.argmax(self.values * np.sign(reference)))
        if peak_index >= self.values.size - 1:
            return 0.0
        tail = self.values[peak_index:]
        if reference > 0:
            dip = float(tail.min())
            return max((reference - dip) / abs(reference), 0.0)
        dip = float(tail.max())
        return max((dip - reference) / abs(reference), 0.0)

    def settling_time(self, tolerance: float = 0.02) -> Optional[float]:
        """Earliest time after which the waveform stays within
        ``tolerance * |final|`` of the final value (``None`` if never)."""
        reference = self.final_value
        band = tolerance * abs(reference) if reference != 0.0 else tolerance
        outside = np.abs(self.values - reference) > band
        if not outside.any():
            return float(self.time[0])
        last_outside = int(np.flatnonzero(outside)[-1])
        if last_outside >= self.time.size - 1:
            return None
        return float(self.time[last_outside + 1])

    def ringing_periods(self) -> int:
        """Number of times the waveform re-crosses its final value after
        the first crossing -- a count of ring cycles."""
        reference = self.final_value
        v = self.values - reference
        signs = np.sign(v)
        signs = signs[signs != 0]
        if signs.size < 2:
            return 0
        return int(np.count_nonzero(np.diff(signs) != 0) - 1) if np.count_nonzero(np.diff(signs) != 0) > 0 else 0


def write_csv(
    path,
    waveforms: Dict[str, "Waveform"],
    time_unit: float = 1.0,
) -> None:
    """Write named waveforms to a CSV file (shared time base required).

    *time_unit* rescales the time column (e.g. 1e-12 writes picoseconds).
    """
    from pathlib import Path

    if not waveforms:
        raise CircuitError("no waveforms to write")
    names = sorted(waveforms)
    base = waveforms[names[0]].time
    for name in names[1:]:
        other = waveforms[name].time
        # atol=0: the default atol of allclose dwarfs ns-scale samples
        if other.shape != base.shape or not np.allclose(
            other, base, rtol=1e-12, atol=0.0
        ):
            raise CircuitError("waveforms must share one time base")
    lines = ["time," + ",".join(names)]
    for k, t in enumerate(base):
        cells = [f"{t / time_unit:.9g}"]
        cells += [f"{waveforms[name].values[k]:.9g}" for name in names]
        lines.append(",".join(cells))
    Path(path).write_text("\n".join(lines) + "\n")


def skew(
    arrivals: Dict[str, float],
) -> float:
    """Clock skew: max minus min arrival time over the sinks [s]."""
    if not arrivals:
        raise CircuitError("no arrival times given")
    values = list(arrivals.values())
    return max(values) - min(values)


def arrival_times(
    source: Waveform,
    sinks: Dict[str, Waveform],
    fraction: float = 0.5,
    reference: Optional[float] = None,
) -> Dict[str, float]:
    """Delay from *source* to each sink at the given threshold fraction."""
    return {
        name: source.delay_to(sink, fraction=fraction, reference=reference)
        for name, sink in sinks.items()
    }
